//! The NVMe controller: doorbell polling, SQE fetch, payload gathering
//! (PRP / SGL / BandSlim fragments / ByteExpress inline chunks), firmware
//! dispatch, and completion posting.
//!
//! The ByteExpress controller change is localized exactly where the paper
//! puts it (their `get_nvme_cmd(...)` patch, <20 LoC on the OpenSSD): after
//! fetching an SQE, [`Controller`] inspects the repurposed reserved field;
//! if an inline length is present it keeps fetching 64-byte entries **from
//! the same submission queue** — never switching queues mid-transaction —
//! which, combined with the driver holding the SQ lock across the whole
//! train, preserves command/payload ordering (§3.3.2).
//!
//! With [`FetchPolicy::Reassembly`], the queue-local constraint is relaxed:
//! chunks carry `{payload id, chunk no, total}` headers and are accepted
//! out of order through the [`ReassemblyEngine`] — the paper's future-work
//! extension.

use crate::arbiter::Arbitration;
use crate::bus::SystemBus;
use crate::dram::DeviceDram;
use crate::firmware::{CommandOutcome, FirmwareCtx, FirmwareHandler};
use crate::ftl::{Ftl, RecoveryReport};
use crate::nand::{NandArray, NandConfig};
use crate::reassembly::ReassemblyEngine;
use crate::registers::{Register, RegisterFile};
use crate::timing::ControllerTiming;
use bx_hostsim::{DmaRegion, EventQueue, Nanos, PhysAddr};
use bx_nvme::queue::CqProducer;
use bx_nvme::sqe::DataPointerKind;
use bx_nvme::{
    admin, bandslim, inline, prp, sgl, AdminOpcode, CompletionEntry, IdentifyController, IoOpcode,
    QueueId, Status, SubmissionEntry, CQE_BYTES, SQE_BYTES,
};
use bx_pcie::TrafficClass;
use bx_trace::{CmdKey, EventKind};
use std::collections::BTreeMap;

/// How the controller gathers ByteExpress chunk trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchPolicy {
    /// The paper's implemented design: once a ByteExpress SQE is seen, fetch
    /// the following entries of the *same* SQ, in order.
    #[default]
    QueueLocal,
    /// The §3.3.2 extension: chunks are self-describing and may be accepted
    /// out of order (the driver must frame them with reassembly headers).
    Reassembly,
}

/// How the controller accounts virtual time across commands in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionModel {
    /// The historical (and default) model: after every firmware dispatch the
    /// global clock advances through the command's full `complete_at` —
    /// including NAND busy time — before the next SQE is fetched. Simple,
    /// exactly calibrated to Table 1, but *everything* serializes: no
    /// queue-depth or multi-queue throughput scaling can ever show.
    #[default]
    Serial,
    /// Event-driven overlap: firmware dispatch returns as soon as the
    /// command is issued to the media, the completion is scheduled on a
    /// deterministic event queue at `complete_at`, and the controller keeps
    /// fetching. Per-resource busy-until state still serializes same-
    /// resource work (the shared clock covers the PCIe link and controller
    /// core; `NandArray`'s per-die `busy_until` covers channel/die
    /// occupancy; CQE posting serializes through time-ordered delivery), so
    /// commands on different SQs and NAND dies overlap in virtual time
    /// while contended resources still queue.
    Pipelined,
}

/// Controller construction parameters.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Latency constants (defaults calibrated to Table 1).
    pub timing: ControllerTiming,
    /// NAND geometry/timing (use [`NandConfig::disabled`] for the paper's
    /// NAND-off transfer experiments).
    pub nand: NandConfig,
    /// Device DRAM capacity in bytes.
    pub dram_capacity: usize,
    /// FTL over-provisioning ratio.
    pub over_provision: f64,
    /// Chunk-gathering policy.
    pub fetch_policy: FetchPolicy,
    /// How SQE-fetch bandwidth is shared across submission queues.
    pub arbitration: Arbitration,
    /// SRAM budget for the reassembly engine, bytes.
    pub reassembly_sram: usize,
    /// How long a reassembly-mode command may sit parked without its chunk
    /// train completing before the controller evicts it and posts a
    /// [`Status::DataTransferError`] completion (reclaiming tracker SRAM
    /// instead of leaking it until reset).
    pub inline_stall_deadline: Nanos,
    /// Identify data the controller advertises.
    pub identify: IdentifyController,
    /// Whether command completion times serialize the whole device
    /// ([`ExecutionModel::Serial`], the default) or overlap via the
    /// deferred-completion event queue ([`ExecutionModel::Pipelined`]).
    pub execution_model: ExecutionModel,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            timing: ControllerTiming::default(),
            nand: NandConfig::small(),
            dram_capacity: 64 << 20,
            over_provision: 0.25,
            fetch_policy: FetchPolicy::QueueLocal,
            arbitration: Arbitration::default(),
            reassembly_sram: 64 << 10,
            inline_stall_deadline: Nanos::from_ms(1),
            identify: IdentifyController::default(),
            execution_model: ExecutionModel::default(),
        }
    }
}

/// Controller activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Command SQEs fetched (excludes chunk/fragment entries).
    pub sqes_fetched: u64,
    /// Inline chunk entries fetched.
    pub chunks_fetched: u64,
    /// BandSlim fragment commands consumed.
    pub frags_consumed: u64,
    /// Commands completed (CQEs posted).
    pub commands_completed: u64,
    /// Host→device payload bytes delivered inline (ByteExpress).
    pub inline_payload_bytes: u64,
    /// Host→device payload bytes delivered via PRP.
    pub prp_payload_bytes: u64,
    /// Host→device payload bytes delivered via SGL.
    pub sgl_payload_bytes: u64,
    /// Host→device payload bytes delivered via BandSlim embedding.
    pub bandslim_payload_bytes: u64,
    /// Admin commands completed.
    pub admin_commands: u64,
    /// Parked reassembly commands evicted after stalling past the deadline
    /// (each posts a [`Status::DataTransferError`] completion).
    pub stalled_evictions: u64,
}

struct IoQueue {
    id: QueueId,
    sq_base: PhysAddr,
    sq_depth: u16,
    /// The controller's fetch pointer into the SQ.
    fetch_head: u16,
    cq_base: PhysAddr,
    cq_depth: u16,
    cq_prod: CqProducer,
    /// The completion queue this SQ completes into.
    cqid: u16,
    /// In-progress BandSlim assembly (head command + bytes so far).
    bandslim_pending: Option<BandSlimPending>,
    /// A ByteExpress command whose reassembly-mode chunks are still being
    /// fetched (possibly interleaved with other queues).
    inline_pending: Option<PendingInline>,
    /// Weighted-round-robin share (ignored by plain round-robin).
    weight: u8,
}

struct PendingInline {
    sqe: SubmissionEntry,
    remaining: usize,
    /// When the command was parked — the stall clock for eviction.
    parked_at: Nanos,
}

struct BandSlimPending {
    head: SubmissionEntry,
    total: usize,
    buf: Vec<u8>,
    next_frag: u32,
}

/// A completion whose delivery was decoupled from firmware dispatch
/// ([`ExecutionModel::Pipelined`]): scheduled at `complete_at` on the
/// controller's event queue, delivered (response DMA + CQE post, or MMIO
/// status-window push) when virtual time reaches it.
enum DeferredCompletion {
    /// An I/O-queue command. Keyed by queue *id*, not index — queues may be
    /// deleted while a completion is in flight, in which case it is dropped
    /// (matching real hardware: a CQE for a deleted queue pair goes
    /// nowhere).
    Cqe {
        qid: u16,
        sqe: SubmissionEntry,
        outcome: CommandOutcome,
    },
    /// A byte-interface (MMIO window) command: posts a status word, not a
    /// CQE. Carries the submitting queue's id so the status word (and its
    /// trace events) route back to the owner — cids alone are ambiguous
    /// across queues.
    Mmio {
        qid: u16,
        cid: u16,
        status: Status,
        result: u32,
    },
}

/// The simulated NVMe controller.
pub struct Controller {
    bus: SystemBus,
    timing: ControllerTiming,
    fetch_policy: FetchPolicy,
    queues: Vec<IoQueue>,
    firmware: Box<dyn FirmwareHandler>,
    nand: NandArray,
    ftl: Ftl,
    dram: DeviceDram,
    reassembly: ReassemblyEngine,
    stall_deadline: Nanos,
    stats: ControllerStats,
    arbitration: Arbitration,
    rr: usize,
    regs: RegisterFile,
    identify: IdentifyController,
    /// The admin queue pair, latched when CC.EN is set.
    admin: Option<IoQueue>,
    /// CQs created by admin command but not yet bound to an SQ: cqid → (base, depth).
    pending_cqs: BTreeMap<u16, (PhysAddr, u16)>,
    next_io_qid: u16,
    execution: ExecutionModel,
    /// Completions scheduled for future virtual instants (always empty
    /// under [`ExecutionModel::Serial`]).
    deferred: EventQueue<DeferredCompletion>,
    /// Set by a power-cut fault: the device is dark until
    /// [`Controller::power_cycle`] restores it. Every processing entry
    /// point returns immediately while set.
    powered_off: bool,
    /// Reusable host→device payload staging buffer: gather paths take it,
    /// fill it, and `recycle_payload` returns the largest buffer seen so
    /// steady-state command processing performs no heap allocation.
    scratch_payload: Vec<u8>,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("queues", &self.queues.len())
            .field("fetch_policy", &self.fetch_policy)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Controller {
    /// Creates a controller on `bus` with firmware built by `firmware`,
    /// which receives the device DRAM to claim its regions.
    pub fn new(
        bus: SystemBus,
        cfg: ControllerConfig,
        firmware: impl FnOnce(&mut DeviceDram) -> Box<dyn FirmwareHandler>,
    ) -> Self {
        let mut nand = NandArray::new(cfg.nand.clone());
        // Media faults share the platform's one deterministic schedule.
        nand.set_fault_injector(bus.faults.clone());
        nand.set_trace(bus.trace.clone());
        let mut ftl = Ftl::new(&nand, cfg.over_provision);
        ftl.set_trace(bus.trace.clone());
        let mut dram = DeviceDram::new(cfg.dram_capacity);
        let firmware = firmware(&mut dram);
        Controller {
            bus,
            timing: cfg.timing,
            fetch_policy: cfg.fetch_policy,
            queues: Vec::new(),
            firmware,
            nand,
            ftl,
            dram,
            reassembly: ReassemblyEngine::new(cfg.reassembly_sram),
            stall_deadline: cfg.inline_stall_deadline,
            stats: ControllerStats::default(),
            arbitration: cfg.arbitration,
            rr: 0,
            regs: RegisterFile::new(4096),
            identify: cfg.identify,
            admin: None,
            pending_cqs: BTreeMap::new(),
            next_io_qid: 1,
            execution: cfg.execution_model,
            deferred: EventQueue::new(),
            powered_off: false,
            scratch_payload: Vec::new(),
        }
    }

    /// Registers an I/O queue pair directly, bypassing the admin command
    /// path (a shortcut for tests and simple rigs; [`crate::Controller::mmio_write`]
    /// plus admin Create-IO-CQ/SQ commands is the full bring-up). Queue ids
    /// are assigned densely from 1 — id 0 is the admin queue — and index the
    /// doorbell array.
    ///
    /// # Panics
    ///
    /// Panics if the regions do not match `depth` entries or the doorbell
    /// array is too small.
    pub fn register_io_queue(
        &mut self,
        sq_region: DmaRegion,
        cq_region: DmaRegion,
        depth: u16,
    ) -> QueueId {
        assert_eq!(sq_region.len(), depth as usize * SQE_BYTES);
        assert_eq!(cq_region.len(), depth as usize * CQE_BYTES);
        let id = QueueId(self.next_io_qid);
        self.next_io_qid += 1;
        assert!(
            (id.0 as usize) < self.bus.doorbells.borrow().queues(),
            "doorbell array too small for queue {id}"
        );
        // Queue-base registration rides MMIO writes.
        let t = {
            let mut link = self.bus.link.borrow_mut();
            link.host_posted_write(TrafficClass::Mmio, 8)
                + link.host_posted_write(TrafficClass::Mmio, 8)
        };
        self.bus.clock.advance(t);
        self.queues.push(IoQueue {
            id,
            sq_base: sq_region.base(),
            sq_depth: depth,
            fetch_head: 0,
            cq_base: cq_region.base(),
            cq_depth: depth,
            cq_prod: CqProducer::new(depth),
            cqid: id.0,
            bandslim_pending: None,
            inline_pending: None,
            weight: 1,
        });
        id
    }

    /// Sets a queue's weighted-round-robin share (clamped to at least 1 at
    /// grant time). No effect under plain round-robin arbitration.
    ///
    /// # Panics
    ///
    /// Panics on an unknown queue id.
    pub fn set_queue_weight(&mut self, q: QueueId, weight: u8) {
        let queue = self
            .queues
            .iter_mut()
            .find(|io| io.id == q)
            // bx-lint: allow(panic-freedom, reason = "documented panic: configuring a nonexistent queue is a harness bug, not a runtime state")
            .unwrap_or_else(|| panic!("unknown queue {q}"));
        queue.weight = weight;
    }

    /// The arbitration mode in force.
    pub fn arbitration(&self) -> Arbitration {
        self.arbitration
    }

    /// Replaces the arbitration mode (takes effect on the next
    /// [`Controller::process_available`] round).
    pub fn set_arbitration(&mut self, arbitration: Arbitration) {
        self.arbitration = arbitration;
    }

    /// Writes a BAR register (charged as MMIO traffic). Setting CC.EN
    /// latches the admin queue from ASQ/ACQ/AQA and raises CSTS.RDY.
    pub fn mmio_write(&mut self, reg: Register, value: u64) {
        let t = self
            .bus
            .link
            .borrow_mut()
            .host_posted_write(TrafficClass::Mmio, 8);
        self.bus.clock.advance(t);
        let enabled_now = self.regs.write(reg, value);
        if enabled_now {
            let sq_depth = self.regs.admin_sq_depth();
            let cq_depth = self.regs.admin_cq_depth();
            self.admin = Some(IoQueue {
                id: QueueId(0),
                sq_base: self.regs.admin_sq_base(),
                sq_depth,
                fetch_head: 0,
                cq_base: self.regs.admin_cq_base(),
                cq_depth,
                cq_prod: CqProducer::new(cq_depth),
                cqid: 0,
                bandslim_pending: None,
                inline_pending: None,
                weight: 1,
            });
            self.regs.set_ready();
        }
        if reg == Register::Cc && !self.regs.enabled() {
            // Controller reset: tear down every queue and drop any
            // completions still in flight toward them.
            self.admin = None;
            self.queues.clear();
            self.pending_cqs.clear();
            self.deferred.clear();
            self.next_io_qid = 1;
        }
    }

    /// Reads a BAR register (a synchronous MMIO round trip).
    pub fn mmio_read(&mut self, reg: Register) -> u64 {
        let t = self
            .bus
            .link
            .borrow_mut()
            .host_mmio_read(TrafficClass::Mmio, 8);
        self.bus.clock.advance(t);
        self.regs.read(reg)
    }

    /// Whether CSTS.RDY is set.
    pub fn is_ready(&self) -> bool {
        self.regs.ready()
    }

    /// The identify data this controller serves.
    pub fn identify_data(&self) -> &IdentifyController {
        &self.identify
    }

    /// Activity counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// The fetch policy in force.
    pub fn fetch_policy(&self) -> FetchPolicy {
        self.fetch_policy
    }

    /// The execution model in force.
    pub fn execution_model(&self) -> ExecutionModel {
        self.execution
    }

    /// Completions dispatched but not yet delivered (always 0 under
    /// [`ExecutionModel::Serial`]).
    pub fn completions_in_flight(&self) -> usize {
        self.deferred.len()
    }

    /// Immutable view of device DRAM (tests inspect landed payloads).
    pub fn dram(&self) -> &DeviceDram {
        &self.dram
    }

    /// NAND statistics.
    pub fn nand_stats(&self) -> crate::nand::NandStats {
        self.nand.stats()
    }

    /// FTL statistics.
    pub fn ftl_stats(&self) -> crate::ftl::FtlStats {
        self.ftl.stats()
    }

    /// The reassembly engine state (for SRAM accounting tests).
    pub fn reassembly(&self) -> &ReassemblyEngine {
        &self.reassembly
    }

    /// Processes doorbell'd submissions round-robin until every queue is
    /// drained. Returns the number of *commands* completed (chunk entries and
    /// fragments don't count).
    ///
    /// Under [`ExecutionModel::Pipelined`] this is also the event loop:
    /// completions scheduled by earlier dispatches are delivered as their
    /// instants pass, interleaved with SQE fetches; once no fetchable work
    /// remains, virtual time advances to the earliest outstanding completion
    /// instead of idling, so the call returns only when every accepted
    /// command has completed — same contract as `Serial`, but with the NAND
    /// busy windows overlapped instead of summed.
    pub fn process_available(&mut self) -> usize {
        let mut completed = 0;
        loop {
            if self.powered_off {
                return completed;
            }
            let mut progressed = false;
            let delivered = self.deliver_due_completions();
            if delivered > 0 {
                completed += delivered;
                progressed = true;
            }
            if self.powered_off {
                return completed;
            }
            let evicted = self.evict_stalled_inline();
            if evicted > 0 {
                completed += evicted;
                progressed = true;
            }
            while self.admin_has_work() {
                self.process_admin_one();
                if self.powered_off {
                    return completed;
                }
                completed += 1;
                progressed = true;
            }
            while let Some(n) = self.process_mmio_one() {
                completed += n;
                progressed = true;
            }
            if self.powered_off {
                return completed;
            }
            // One arbitration round: every queue gets a credit budget per
            // the configured mode and spends one credit per scheduling
            // unit — a fetched command (with any queue-local chunk train)
            // or one reassembly-mode chunk. At the default
            // `RoundRobin { burst: 1 }` this is the original one-unit-per-
            // queue-per-pass interleave: in reassembly mode a queue fetches
            // ONE chunk then yields — the cross-queue interleaving the
            // queue-local design forbids and §3.3.2 re-enables.
            let n = self.queues.len();
            let start = self.rr;
            for k in 0..n {
                let qi = (start + k) % n;
                let credits = self.arbitration.credits(self.queues[qi].weight);
                let mut served = 0u32;
                while served < credits && self.queue_has_work(qi) {
                    if self.queues[qi].inline_pending.is_some() {
                        completed += self.fetch_reassembly_chunk(qi);
                    } else {
                        completed += self.process_one(qi);
                    }
                    // A power cut clears `queues`, so the round's captured
                    // indices are stale — bail out before touching them.
                    if self.powered_off {
                        return completed;
                    }
                    served += 1;
                    progressed = true;
                }
                if served > 0 {
                    let id = self.queues[qi].id.0;
                    self.bus.trace.emit(None, || EventKind::ArbiterGrant {
                        qid: id,
                        served: served.min(u16::MAX as u32) as u16,
                    });
                }
            }
            if !progressed {
                // Nothing fetchable right now. If completions are still in
                // flight (Pipelined), the controller would really be idle —
                // jump virtual time to the earliest one and deliver it on
                // the next pass rather than returning with work pending.
                match self.deferred.peek_at() {
                    Some(at) => {
                        self.bus.clock.advance_to(at);
                    }
                    None => return completed,
                }
            } else {
                self.sample_gauges();
            }
        }
    }

    /// Emits one instantaneous utilization sample per controller gauge —
    /// per-queue SQ backlog (doorbell'd but unfetched slots), deferred
    /// completions in flight, reassembly-SRAM occupancy, and FTL journal
    /// depth. Gated on [`bx_trace::TraceSink::gauges_enabled`]: in plain
    /// traced runs the closures never evaluate and the event stream is
    /// unchanged, which the serial-identity fingerprint pins. Called at the
    /// end of every `process_available` pass that made progress, so samples
    /// land exactly at processing edges in virtual time.
    fn sample_gauges(&self) {
        if !self.bus.trace.gauges_enabled() {
            return;
        }
        let doorbells = self.bus.doorbells.borrow();
        for q in &self.queues {
            let tail = doorbells.sq_tail(q.id);
            let backlog = if tail >= q.fetch_head {
                tail - q.fetch_head
            } else {
                q.sq_depth - q.fetch_head + tail
            };
            let scope = u32::from(q.id.0);
            self.bus.trace.emit_gauge(|| EventKind::GaugeSample {
                gauge: "ctrl_sq_backlog",
                scope,
                value: u64::from(backlog),
            });
        }
        drop(doorbells);
        self.bus.trace.emit_gauge(|| EventKind::GaugeSample {
            gauge: "completions_in_flight",
            scope: 0,
            value: self.deferred.len() as u64,
        });
        self.bus.trace.emit_gauge(|| EventKind::GaugeSample {
            gauge: "reassembly_sram_bytes",
            scope: 0,
            value: self.reassembly.sram_used() as u64,
        });
        self.bus.trace.emit_gauge(|| EventKind::GaugeSample {
            gauge: "reassembly_inflight",
            scope: 0,
            value: self.reassembly.inflight_count() as u64,
        });
        self.bus.trace.emit_gauge(|| EventKind::GaugeSample {
            gauge: "ftl_journal_depth",
            scope: 0,
            value: self.ftl.journal_depth() as u64,
        });
    }

    /// Delivers every deferred completion due at or before the current
    /// virtual time, in `(complete_at, dispatch order)` order. Returns the
    /// number of commands completed.
    fn deliver_due_completions(&mut self) -> usize {
        let mut delivered = 0;
        let now = self.bus.clock.now();
        while let Some((_, ev)) = self.deferred.pop_due(now) {
            // A completion delivery is a processing event: the power cut may
            // land between the media finishing and the CQE reaching the
            // host. The popped completion dies with the rest of the
            // deferred queue.
            if self.power_tick() {
                return delivered;
            }
            delivered += self.deliver_completion(ev);
        }
        delivered
    }

    /// Finishes one deferred command: response DMA + CQE post (or the MMIO
    /// status-window push). Runs at or after the command's `complete_at`.
    fn deliver_completion(&mut self, ev: DeferredCompletion) -> usize {
        match ev {
            DeferredCompletion::Cqe { qid, sqe, outcome } => {
                let Some(qi) = self.queues.iter().position(|q| q.id.0 == qid) else {
                    // Queue pair deleted while the command was in flight;
                    // the completion has nowhere to land.
                    return 0;
                };
                if let Some(response) = &outcome.response {
                    if !response.is_empty() {
                        self.dma_response(&sqe, response);
                    }
                }
                self.post_completion(qi, sqe.cid(), &outcome);
                1
            }
            DeferredCompletion::Mmio {
                qid,
                cid,
                status,
                result,
            } => {
                self.bus.mmio_window.borrow_mut().completions.push_back(
                    crate::bus::MmioCompletion {
                        qid,
                        cid,
                        status,
                        result,
                    },
                );
                self.bus
                    .trace
                    .emit_cmd(CmdKey::new(qid, cid), || EventKind::CqePost {
                        status: status.to_wire(),
                    });
                self.stats.commands_completed += 1;
                1
            }
        }
    }

    /// Evicts reassembly-mode commands whose chunk train stalled past the
    /// deadline (e.g. truncated in flight): the parked command fails with
    /// [`Status::DataTransferError`] — so the driver can retry — and the
    /// tracker SRAM of every stalled payload is reclaimed instead of leaking
    /// until controller reset. Returns how many commands were failed.
    fn evict_stalled_inline(&mut self) -> usize {
        if self.fetch_policy != FetchPolicy::Reassembly {
            return 0;
        }
        let now = self.bus.clock.now();
        // Phantom payloads (corrupted headers) have no parked command; the
        // engine sweep alone reclaims their SRAM.
        self.reassembly.evict_stalled(now, self.stall_deadline);
        let mut completed = 0;
        for qi in 0..self.queues.len() {
            // Deadline boundary is EXCLUSIVE: a train whose age equals the
            // deadline exactly survives one more pass; eviction requires
            // age strictly greater. Must agree with the engine sweep in
            // `ReassemblyEngine::evict_stalled` (pinned by
            // `stall_eviction_boundary_is_exclusive` tests in both files).
            let expired = self.queues[qi]
                .inline_pending
                .as_ref()
                .is_some_and(|p| now.saturating_sub(p.parked_at) > self.stall_deadline);
            // Never evict a train that still has fetchable entries queued.
            if expired && !self.queue_has_work(qi) {
                // bx-lint: allow(panic-freedom, reason = "is_some_and on the same field two lines up makes take() infallible here")
                let pending = self.queues[qi].inline_pending.take().expect("checked");
                let outcome = CommandOutcome::fail(Status::DataTransferError, now);
                let key = CmdKey::new(self.queues[qi].id.0, pending.sqe.cid());
                self.bus.trace.emit_cmd(key, || EventKind::ReassemblyEvict);
                self.post_completion(qi, pending.sqe.cid(), &outcome);
                self.stats.stalled_evictions += 1;
                completed += 1;
            }
        }
        completed
    }

    /// Consumes one byte-interface submission from the BAR window, if any
    /// (§3.1 baseline: no SQE fetch, no CQE — the buffer monitor hands the
    /// committed bytes straight to the firmware and posts a status word).
    ///
    /// Returns `None` when the window is empty, otherwise the number of
    /// completions posted: 1 under `Serial`, 0 under `Pipelined` (the status
    /// word posts later, when the scheduled completion is delivered).
    fn process_mmio_one(&mut self) -> Option<usize> {
        let sub = self.bus.mmio_window.borrow_mut().submissions.pop_front()?;
        if self.power_tick() {
            // The committed bytes were still in the volatile window.
            return None;
        }
        self.bus.clock.advance(self.timing.mmio_detect);
        // The byte-interface path has no SQ, but the command is still owned
        // by the submitting queue pair — spans carry its real id, matching
        // the driver's submit hook and the qid echoed on the status word.
        let key = CmdKey::new(sub.qid, sub.sqe.cid());
        self.bus.trace.emit_cmd(key, || EventKind::SqeFetch {
            opcode: sub.sqe.opcode_raw(),
        });
        self.bus.trace.emit_cmd(key, || EventKind::DataFetch {
            kind: "mmio",
            bytes: sub.payload.len(),
        });
        let ctx = FirmwareCtx {
            nand: &mut self.nand,
            ftl: &mut self.ftl,
            dram: &mut self.dram,
            now: self.bus.clock.now(),
        };
        let payload = (!sub.payload.is_empty()).then_some(sub.payload.as_slice());
        let outcome = self.firmware.handle(ctx, &sub.sqe, payload);
        if self.execution == ExecutionModel::Pipelined {
            let until = outcome.complete_at.max(self.bus.clock.now());
            self.bus
                .trace
                .emit_cmd(key, || EventKind::CqeDeferred { until });
            self.deferred.push(
                until,
                DeferredCompletion::Mmio {
                    qid: sub.qid,
                    cid: sub.sqe.cid(),
                    status: outcome.status,
                    result: outcome.result,
                },
            );
            return Some(0);
        }
        self.bus.clock.advance_to(outcome.complete_at);
        self.bus
            .mmio_window
            .borrow_mut()
            .completions
            .push_back(crate::bus::MmioCompletion {
                qid: sub.qid,
                cid: sub.sqe.cid(),
                status: outcome.status,
                result: outcome.result,
            });
        self.bus.trace.emit_cmd(key, || EventKind::CqePost {
            status: outcome.status.to_wire(),
        });
        self.stats.commands_completed += 1;
        Some(1)
    }

    fn admin_has_work(&self) -> bool {
        self.admin
            .as_ref()
            .is_some_and(|q| self.bus.doorbells.borrow().sq_tail(q.id) != q.fetch_head)
    }

    /// Fetches and executes one admin command.
    fn process_admin_one(&mut self) {
        if self.power_tick() {
            return;
        }
        self.bus.clock.advance(self.timing.fetch_dispatch_overhead);
        let img = {
            // bx-lint: allow(panic-freedom, reason = "process_admin_one is gated on admin doorbell state, which only exists once the admin queue is latched")
            let q = self.admin.as_mut().expect("admin queue latched");
            fetch_image(&self.bus, q)
        };
        let dma = self
            .bus
            .link
            .borrow_mut()
            .device_read(TrafficClass::SqeFetch, SQE_BYTES);
        self.bus.clock.advance(dma);
        let sqe = SubmissionEntry::from_bytes(&img);

        let outcome = self.handle_admin(&sqe);
        let bus = self.bus.clone();
        let timing = self.timing.clone();
        // bx-lint: allow(panic-freedom, reason = "same gate as the fetch above; the admin queue cannot unlatch mid-command")
        let q = self.admin.as_mut().expect("admin queue latched");
        post_to_queue(&bus, &timing, q, sqe.cid(), &outcome);
        self.stats.admin_commands += 1;
        self.stats.commands_completed += 1;
    }

    fn handle_admin(&mut self, sqe: &SubmissionEntry) -> CommandOutcome {
        let now = self.bus.clock.now();
        match sqe.opcode_raw() {
            op if op == AdminOpcode::Identify as u8 => {
                if sqe.cdw(10) != admin::CNS_CONTROLLER {
                    return CommandOutcome::fail(Status::InvalidField, now);
                }
                let page = self.identify.encode();
                self.dma_response(sqe, &page);
                CommandOutcome::ok(self.bus.clock.now())
            }
            op if op == AdminOpcode::CreateIoCq as u8 => {
                let p = admin::queue_params(sqe);
                if p.qid == 0
                    || p.depth < 2
                    || p.depth > self.regs.max_queue_entries
                    || !p.base.is_page_aligned()
                    || self.pending_cqs.contains_key(&p.qid)
                    || self.queues.iter().any(|q| q.cqid == p.qid)
                {
                    return CommandOutcome::fail(Status::InvalidField, now);
                }
                self.pending_cqs.insert(p.qid, (p.base, p.depth));
                CommandOutcome::ok(now)
            }
            op if op == AdminOpcode::CreateIoSq as u8 => {
                let p = admin::queue_params(sqe);
                let Some(&(cq_base, cq_depth)) = self.pending_cqs.get(&p.cqid) else {
                    return CommandOutcome::fail(Status::InvalidField, now);
                };
                if p.qid == 0
                    || p.depth < 2
                    || p.depth > self.regs.max_queue_entries
                    || !p.base.is_page_aligned()
                    || self.queues.iter().any(|q| q.id.0 == p.qid)
                    || (p.qid as usize) >= self.bus.doorbells.borrow().queues()
                {
                    return CommandOutcome::fail(Status::InvalidField, now);
                }
                self.pending_cqs.remove(&p.cqid);
                self.queues.push(IoQueue {
                    id: QueueId(p.qid),
                    sq_base: p.base,
                    sq_depth: p.depth,
                    fetch_head: 0,
                    cq_base,
                    cq_depth,
                    cq_prod: CqProducer::new(cq_depth),
                    cqid: p.cqid,
                    bandslim_pending: None,
                    inline_pending: None,
                    weight: 1,
                });
                self.next_io_qid = self.next_io_qid.max(p.qid + 1);
                CommandOutcome::ok(now)
            }
            op if op == AdminOpcode::DeleteIoSq as u8 => {
                let qid = admin::delete_target(sqe);
                let Some(pos) = self.queues.iter().position(|q| q.id.0 == qid) else {
                    return CommandOutcome::fail(Status::InvalidField, now);
                };
                let q = self.queues.remove(pos);
                // The CQ outlives its SQ (spec deletes SQ first); return it
                // to the unbound pool so Delete-IO-CQ can find it.
                self.pending_cqs.insert(q.cqid, (q.cq_base, q.cq_depth));
                self.rr = 0;
                CommandOutcome::ok(now)
            }
            op if op == AdminOpcode::DeleteIoCq as u8 => {
                let qid = admin::delete_target(sqe);
                if self.queues.iter().any(|q| q.cqid == qid) {
                    // The paired SQ must be deleted first.
                    return CommandOutcome::fail(Status::InvalidField, now);
                }
                if self.pending_cqs.remove(&qid).is_none() {
                    return CommandOutcome::fail(Status::InvalidField, now);
                }
                CommandOutcome::ok(now)
            }
            _ => CommandOutcome::fail(Status::InvalidOpcode, now),
        }
    }

    fn queue_has_work(&self, qi: usize) -> bool {
        let q = &self.queues[qi];
        self.bus.doorbells.borrow().sq_tail(q.id) != q.fetch_head
    }

    /// Reads one 64-byte SQ entry image at the queue's fetch head, charging
    /// link traffic; advances the fetch head.
    fn fetch_entry_image(&mut self, qi: usize) -> [u8; 64] {
        fetch_image(&self.bus, &mut self.queues[qi])
    }

    /// Processes one command (which may consume multiple SQ entries).
    /// Returns 1 if a command completed, 0 if the entry was absorbed into a
    /// pending BandSlim assembly.
    fn process_one(&mut self, qi: usize) -> usize {
        if self.power_tick() {
            return 0;
        }
        // SQE fetch: firmware dispatch overhead + the 64-byte DMA round trip.
        self.bus.clock.advance(self.timing.fetch_dispatch_overhead);
        let img = self.fetch_entry_image(qi);
        let dma = self
            .bus
            .link
            .borrow_mut()
            .device_read(TrafficClass::SqeFetch, SQE_BYTES);
        self.bus.clock.advance(dma);
        let sqe = SubmissionEntry::from_bytes(&img);

        if bandslim::is_frag(&sqe) {
            return self.absorb_bandslim_frag(qi, &sqe);
        }
        self.stats.sqes_fetched += 1;
        let key = CmdKey::new(self.queues[qi].id.0, sqe.cid());
        self.bus.trace.emit_cmd(key, || EventKind::SqeFetch {
            opcode: sqe.opcode_raw(),
        });

        // Gather the host→device payload per transfer method.
        let payload: Option<Vec<u8>> = if let Some(len) = inline::inline_len(&sqe) {
            match self.fetch_policy {
                FetchPolicy::QueueLocal => {
                    let payload = self.gather_inline(qi, len);
                    self.bus.trace.emit_cmd(key, || EventKind::InlineGather {
                        chunks: inline::chunks_for_len(len) as u16,
                        bytes: payload.len(),
                    });
                    Some(payload)
                }
                FetchPolicy::Reassembly => {
                    // Chunks are self-describing: park the command and let
                    // the main loop fetch its chunks interleaved with other
                    // queues' traffic.
                    self.queues[qi].inline_pending = Some(PendingInline {
                        sqe,
                        remaining: inline::chunks_for_len_reassembly(len),
                        parked_at: self.bus.clock.now(),
                    });
                    return 0;
                }
            }
        } else if let Some(total) = bandslim::head_len(&sqe) {
            match self.begin_bandslim(qi, &sqe, total) {
                Some(p) => {
                    self.bus.trace.emit_cmd(key, || EventKind::DataFetch {
                        kind: "bandslim",
                        bytes: p.len(),
                    });
                    Some(p)
                }
                None => return 0, // fragments still to come
            }
        } else if opcode_moves_data_in(&sqe) {
            let payload = self.gather_dptr(&sqe);
            if let Some(p) = &payload {
                let kind = match sqe.data_pointer_kind() {
                    DataPointerKind::Prp => "prp",
                    DataPointerKind::Sgl => "sgl",
                };
                self.bus.trace.emit_cmd(key, || EventKind::DataFetch {
                    kind,
                    bytes: p.len(),
                });
            }
            payload
        } else {
            None
        };

        let completed = self.dispatch_and_complete(qi, &sqe, payload.as_deref());
        if let Some(buf) = payload {
            self.recycle_payload(buf);
        }
        completed
    }

    /// Fetches a queue-local ByteExpress chunk train following the command.
    ///
    /// Streams each 64-byte chunk straight into the controller's reusable
    /// staging buffer — no per-train `Vec<[u8; 64]>` is ever materialized,
    /// so steady-state gathering is allocation-free once the buffer has
    /// grown to the largest payload seen.
    fn gather_inline(&mut self, qi: usize, len: usize) -> Vec<u8> {
        let n = inline::chunks_for_len(len);
        let mut payload = std::mem::take(&mut self.scratch_payload);
        payload.clear();
        payload.reserve(len);
        for _ in 0..n {
            // Queue-local: the *same* queue's next entry, no switching
            // mid-transaction. Chunk fetches pipeline, so the marginal
            // cost is per-entry processing (Table 1), not a fresh DMA
            // round trip — traffic is still charged in full.
            let img = self.fetch_entry_image(qi);
            self.bus
                .link
                .borrow_mut()
                .device_read(TrafficClass::SqeFetch, SQE_BYTES);
            self.bus
                .clock
                .advance(self.timing.per_chunk_fetch + self.timing.chunk_land);
            let take = (len - payload.len()).min(img.len());
            payload.extend_from_slice(&img[..take]);
            self.stats.chunks_fetched += 1;
        }
        self.stats.inline_payload_bytes += payload.len() as u64;
        payload
    }

    /// Returns a gather buffer after its command dispatched; the largest
    /// buffer seen is kept as the staging scratch for the next gather.
    fn recycle_payload(&mut self, buf: Vec<u8>) {
        if buf.capacity() > self.scratch_payload.capacity() {
            self.scratch_payload = buf;
        }
    }

    /// Fetches one reassembly-mode chunk for a parked command; dispatches
    /// the command once its payload completes. Returns completions (0 or 1).
    fn fetch_reassembly_chunk(&mut self, qi: usize) -> usize {
        if self.power_tick() {
            return 0;
        }
        let mut img = self.fetch_entry_image(qi);
        self.bus
            .link
            .borrow_mut()
            .device_read(TrafficClass::SqeFetch, SQE_BYTES);
        self.bus.clock.advance(
            self.timing.per_chunk_fetch + self.timing.chunk_land + self.timing.reassembly_account,
        );
        self.stats.chunks_fetched += 1;

        if let Some(mask) = self.bus.faults.borrow_mut().corrupt_chunk_header() {
            // Flip bits in the total-count byte: the train then can never
            // complete cleanly, so the fault is always *detectable* (eviction
            // or a failed last chunk) rather than silently cross-writing
            // another payload's buffer. Payload-byte corruption would need an
            // end-to-end CRC to detect — out of scope here.
            img[6] ^= mask;
        }

        let (hdr, data) = inline::split_reassembly_chunk(&img);
        let accepted = self.reassembly.accept_at(hdr, data, self.bus.clock.now());
        let qid = self.queues[qi].id.0;
        let pending = self.queues[qi]
            .inline_pending
            .as_mut()
            // bx-lint: allow(panic-freedom, reason = "chunk slots are only fetched while a head command is parked; queue_has_work enforces this")
            .expect("chunk fetch requires a parked command");
        pending.remaining -= 1;
        let last = pending.remaining == 0;
        let key = CmdKey::new(qid, pending.sqe.cid());
        if accepted.is_ok() {
            self.bus
                .trace
                .emit_cmd(key, || EventKind::ReassemblyAccept { seq: hdr.chunk_no });
        }

        match (accepted, last) {
            (Ok(Some(completed)), true) => {
                // bx-lint: allow(panic-freedom, reason = "the parked command was borrowed above; only this arm consumes it")
                let pending = self.queues[qi].inline_pending.take().expect("parked");
                // bx-lint: allow(panic-freedom, reason = "commands park in inline_pending only after inline_len() succeeded at dispatch")
                let len = inline::inline_len(&pending.sqe).expect("inline command");
                let mut payload = completed.data;
                payload.truncate(len);
                self.stats.inline_payload_bytes += payload.len() as u64;
                let completions = self.dispatch_and_complete(qi, &pending.sqe, Some(&payload));
                // Hand the train buffer back to the engine's pool so the
                // next payload reuses it instead of allocating.
                self.reassembly.recycle(payload);
                completions
            }
            (Ok(_), false) | (Err(_), false) => 0,
            // Last chunk but no completed payload: the train was malformed
            // (duplicate ids, wrong totals). Fail the command visibly.
            (Ok(None), true) | (Err(_), true) => {
                // bx-lint: allow(panic-freedom, reason = "the parked command was borrowed above; only the terminal arms consume it")
                let pending = self.queues[qi].inline_pending.take().expect("parked");
                let outcome = CommandOutcome::fail(Status::DataTransferError, self.bus.clock.now());
                self.post_completion(qi, pending.sqe.cid(), &outcome);
                1
            }
        }
    }

    /// Starts (or finishes, if fully embedded) a BandSlim transfer.
    fn begin_bandslim(
        &mut self,
        qi: usize,
        sqe: &SubmissionEntry,
        total: usize,
    ) -> Option<Vec<u8>> {
        let embedded = bandslim::head_embedded(sqe).min(total);
        let buf = bandslim::decode_head(sqe, embedded);
        self.stats.bandslim_payload_bytes += embedded as u64;
        if embedded >= total {
            return Some(buf);
        }
        self.queues[qi].bandslim_pending = Some(BandSlimPending {
            head: *sqe,
            total,
            buf,
            next_frag: 0,
        });
        None
    }

    /// Consumes one BandSlim fragment; dispatches the head command when the
    /// payload is complete.
    fn absorb_bandslim_frag(&mut self, qi: usize, sqe: &SubmissionEntry) -> usize {
        self.bus.clock.advance(self.timing.bandslim_frag_decode);
        self.stats.frags_consumed += 1;

        let Some(mut pending) = self.queues[qi].bandslim_pending.take() else {
            // Orphan fragment: fail it visibly.
            let out = CommandOutcome::fail(Status::InvalidField, self.bus.clock.now());
            self.post_completion(qi, sqe.cid(), &out);
            return 1;
        };
        let remaining = pending.total - pending.buf.len();
        let take = remaining.min(bandslim::FRAG_CAPACITY);
        let (frag_no, data) = bandslim::decode_frag(sqe, take);
        if frag_no != pending.next_frag || sqe.cid() != pending.head.cid() {
            // Out-of-order or cross-command fragment — the serialization
            // BandSlim requires was violated.
            let out = CommandOutcome::fail(Status::InvalidField, self.bus.clock.now());
            let cid = pending.head.cid();
            self.post_completion(qi, cid, &out);
            return 1;
        }
        pending.next_frag += 1;
        pending.buf.extend_from_slice(&data);
        self.stats.bandslim_payload_bytes += data.len() as u64;

        if pending.buf.len() >= pending.total {
            let head = pending.head;
            let payload = pending.buf;
            let key = CmdKey::new(self.queues[qi].id.0, head.cid());
            self.bus.trace.emit_cmd(key, || EventKind::DataFetch {
                kind: "bandslim",
                bytes: payload.len(),
            });
            return self.dispatch_and_complete(qi, &head, Some(&payload));
        }
        self.queues[qi].bandslim_pending = Some(pending);
        0
    }

    /// Gathers payload via the command's data pointer (PRP or SGL).
    fn gather_dptr(&mut self, sqe: &SubmissionEntry) -> Option<Vec<u8>> {
        let len = sqe.data_len() as usize;
        if len == 0 {
            return None;
        }
        self.bus.clock.advance(self.timing.prp_setup);
        match sqe.data_pointer_kind() {
            DataPointerKind::Prp => {
                let mem = self.bus.mem.borrow();
                let link = &self.bus.link;
                let clock = &self.bus.clock;
                let segments = prp::walk(&mem, sqe.prp1(), sqe.prp2(), len, |_, bytes| {
                    let t = link.borrow_mut().device_read(TrafficClass::PrpList, bytes);
                    clock.advance(t);
                })
                .ok()?;
                let mut out = Vec::with_capacity(len);
                for seg in segments {
                    // PRP moves whole pages over the wire regardless of how
                    // few bytes the host cares about — the paper's Fig 1
                    // amplification. We charge the page-granular traffic and
                    // copy the segment bytes.
                    let wire_len = seg.len.max(page_granular_len(seg.len));
                    let t = self
                        .bus
                        .link
                        .borrow_mut()
                        .device_read(TrafficClass::PrpData, wire_len);
                    self.bus.clock.advance(t);
                    out.extend_from_slice(mem.slice(seg.addr, seg.len).ok()?);
                }
                self.stats.prp_payload_bytes += out.len() as u64;
                Some(out)
            }
            DataPointerKind::Sgl => {
                let mem = self.bus.mem.borrow();
                let link = &self.bus.link;
                let clock = &self.bus.clock;
                let first = sgl::SglDescriptor::from_bytes(&sqe.sgl_bytes()).ok()?;
                let extents = sgl::walk(&mem, first, len, |_, bytes| {
                    let t = link
                        .borrow_mut()
                        .device_read(TrafficClass::SglDescriptor, bytes);
                    clock.advance(t);
                })
                .ok()?;
                let mut out = Vec::with_capacity(len);
                for ext in extents {
                    let t = self
                        .bus
                        .link
                        .borrow_mut()
                        .device_read(TrafficClass::SglData, ext.len);
                    self.bus.clock.advance(t);
                    match ext.addr {
                        Some(addr) => out.extend_from_slice(mem.slice(addr, ext.len).ok()?),
                        None => out.extend(std::iter::repeat_n(0u8, ext.len)),
                    }
                }
                self.stats.sgl_payload_bytes += out.len() as u64;
                Some(out)
            }
        }
    }

    /// Runs firmware and posts the completion (including any device→host
    /// response DMA). Returns the number of completions posted *now*.
    ///
    /// Under `Serial` the clock advances through the command's full
    /// `complete_at` — the controller is frozen until the media finishes.
    /// Under `Pipelined` the dispatch returns immediately (the firmware has
    /// issued the program/read; per-die busy-until state in [`NandArray`]
    /// keeps same-die work queued) and the completion — response DMA
    /// included, since the data only exists once the media op finishes — is
    /// scheduled for `complete_at` on the deferred-event queue.
    fn dispatch_and_complete(
        &mut self,
        qi: usize,
        sqe: &SubmissionEntry,
        payload: Option<&[u8]>,
    ) -> usize {
        let ctx = FirmwareCtx {
            nand: &mut self.nand,
            ftl: &mut self.ftl,
            dram: &mut self.dram,
            now: self.bus.clock.now(),
        };
        let outcome = self.firmware.handle(ctx, sqe, payload);
        // The juiciest tear point: the media op is issued but the ack is
        // not yet posted. A cut here must leave the write invisible to the
        // host (no CQE) while recovery decides its fate from the journal.
        if self.power_tick() {
            return 0;
        }
        if self.execution == ExecutionModel::Pipelined {
            let qid = self.queues[qi].id.0;
            let until = outcome.complete_at.max(self.bus.clock.now());
            self.bus
                .trace
                .emit_cmd(CmdKey::new(qid, sqe.cid()), || EventKind::CqeDeferred {
                    until,
                });
            self.deferred.push(
                until,
                DeferredCompletion::Cqe {
                    qid,
                    sqe: *sqe,
                    outcome,
                },
            );
            return 0;
        }
        self.bus.clock.advance_to(outcome.complete_at);

        // Device→host response: DMA into the command's PRP-described buffer.
        if let Some(response) = &outcome.response {
            if !response.is_empty() {
                self.dma_response(sqe, response);
            }
        }
        self.post_completion(qi, sqe.cid(), &outcome);
        1
    }

    fn dma_response(&mut self, sqe: &SubmissionEntry, response: &[u8]) {
        // The PRP entries describe the *host buffer* the command allotted
        // (`data_len`); interpreting PRP2 depends on that length, not on how
        // many bytes the firmware actually returned. Walk the full buffer,
        // then write only the response bytes into its leading segments.
        let buffer_len = (sqe.data_len() as usize).max(response.len());
        let Ok(segments) = ({
            let mem = self.bus.mem.borrow();
            prp::walk(&mem, sqe.prp1(), sqe.prp2(), buffer_len, |_, bytes| {
                let t = self
                    .bus
                    .link
                    .borrow_mut()
                    .device_read(TrafficClass::PrpList, bytes);
                self.bus.clock.advance(t);
            })
        }) else {
            return;
        };
        let mut off = 0usize;
        for seg in segments {
            if off >= response.len() {
                break;
            }
            let end = (off + seg.len).min(response.len());
            self.bus
                .mem
                .borrow_mut()
                .write(seg.addr, &response[off..end])
                // bx-lint: allow(panic-freedom, reason = "segment extents were validated by the SGL/PRP walk that produced them")
                .expect("response buffer in bounds");
            let t = self
                .bus
                .link
                .borrow_mut()
                .device_posted_write(TrafficClass::DeviceToHostData, end - off);
            self.bus.clock.advance(t);
            off = end;
        }
    }

    fn post_completion(&mut self, qi: usize, cid: u16, outcome: &CommandOutcome) {
        let bus = self.bus.clone();
        let timing = self.timing.clone();
        post_to_queue(&bus, &timing, &mut self.queues[qi], cid, outcome);
        self.stats.commands_completed += 1;
    }

    /// Whether a power cut has fired and [`Controller::power_cycle`] has not
    /// yet restored the device.
    pub fn is_powered_off(&self) -> bool {
        self.powered_off
    }

    /// Checks the fault injector's power-cut countdown at one processing
    /// event; freezes the device if it fires. Returns whether the device is
    /// (now) dark.
    fn power_tick(&mut self) -> bool {
        if self.powered_off {
            return true;
        }
        let fired = self.bus.faults.borrow_mut().power_cut_tick();
        if fired {
            self.power_fail();
        }
        self.powered_off
    }

    /// Cuts power immediately, regardless of the fault injector's countdown
    /// (harness hook for crash-schedule sweeps that pick the cut point
    /// externally). No-op if already dark.
    pub fn force_power_cut(&mut self) {
        if !self.powered_off {
            self.power_fail();
        }
    }

    /// The power cut itself: durable state (programmed NAND pages, journal
    /// records already on media) survives; everything volatile — SQ/CQ
    /// rings, doorbells, BAR registers, device DRAM, reassembly buffers,
    /// in-flight NAND programs and completions — is lost at this instant.
    fn power_fail(&mut self) {
        let at = self.bus.clock.now();
        let torn_pages = self.nand.power_cut(at) as u32;
        self.ftl.power_fail(at);
        self.dram.wipe();
        let dropped_trains = self.reassembly.power_cut() as u32;
        self.queues.clear();
        self.admin = None;
        self.pending_cqs.clear();
        self.deferred.clear();
        self.next_io_qid = 1;
        self.rr = 0;
        {
            let mut w = self.bus.mmio_window.borrow_mut();
            w.submissions.clear();
            w.completions.clear();
        }
        self.bus.doorbells.borrow_mut().power_cut();
        self.regs.power_cut();
        self.bus.trace.emit(None, || EventKind::PowerCut {
            torn_pages,
            dropped_trains,
        });
        self.powered_off = true;
    }

    /// Restores power after a cut: rebuilds the FTL from NAND and the
    /// mapping journal ([`Ftl::recover`]), lets firmware re-derive its
    /// volatile state, and clears the dark flag. The *host* side (admin
    /// queue, I/O queues, identify) is gone — the driver must re-run its
    /// bring-up sequence afterwards, exactly as after a real power cycle.
    ///
    /// Cuts power first if the device was still live (a deliberate hard
    /// cycle).
    pub fn power_cycle(&mut self) -> RecoveryReport {
        if !self.powered_off {
            self.power_fail();
        }
        // Power-on reset of BAR space. MMIO writes aimed at a dark device go
        // nowhere on real hardware, but the simulated doorbell array and MMIO
        // window live on the bus and still record writes from a host retrying
        // against the dead controller — without this reset those stale tails
        // would make bring-up chase phantom SQ entries around the ring.
        self.bus.doorbells.borrow_mut().power_cut();
        {
            let mut w = self.bus.mmio_window.borrow_mut();
            w.submissions.clear();
            w.completions.clear();
        }
        self.regs.power_cut();
        let report = self.ftl.recover(&self.nand);
        let ctx = FirmwareCtx {
            nand: &mut self.nand,
            ftl: &mut self.ftl,
            dram: &mut self.dram,
            now: self.bus.clock.now(),
        };
        self.firmware.on_power_cycle(ctx);
        self.powered_off = false;
        report
    }
}

/// Reads one SQ entry at the queue's fetch head and advances it.
fn fetch_image(bus: &SystemBus, q: &mut IoQueue) -> [u8; 64] {
    let addr = q.sq_base.offset(q.fetch_head as u64 * SQE_BYTES as u64);
    q.fetch_head = (q.fetch_head + 1) % q.sq_depth;
    let mut img = [0u8; 64];
    bus.mem
        .borrow()
        .read(addr, &mut img)
        // bx-lint: allow(panic-freedom, reason = "ring geometry is asserted at queue creation; slot math cannot escape the region")
        .expect("SQ ring must be in bounds");
    img
}

/// Builds and posts one CQE (+ MSI) into a queue's completion ring.
fn post_to_queue(
    bus: &SystemBus,
    timing: &ControllerTiming,
    q: &mut IoQueue,
    cid: u16,
    outcome: &CommandOutcome,
) {
    // Injected completion loss: the CQE (and its MSI) is never posted — no
    // ring slot is consumed, no traffic charged — leaving the host to time
    // out and resubmit. The admin queue is exempt so bring-up can't wedge.
    if q.id.0 != 0 && bus.faults.borrow_mut().drop_completion() {
        return;
    }
    bus.clock.advance(timing.cqe_post_overhead);
    let (slot, phase) = q.cq_prod.produce();
    let mut cqe = CompletionEntry::new(cid, q.id.0, q.fetch_head, outcome.status, phase);
    cqe.set_result(outcome.result);
    let addr = q.cq_base.offset(slot as u64 * CQE_BYTES as u64);
    bus.mem
        .borrow_mut()
        .write(addr, &cqe.to_bytes())
        // bx-lint: allow(panic-freedom, reason = "ring geometry is asserted at queue creation; slot math cannot escape the region")
        .expect("CQ ring in bounds");
    let t = {
        let mut link = bus.link.borrow_mut();
        link.device_posted_write(TrafficClass::Cqe, CQE_BYTES)
            + link.device_posted_write(TrafficClass::Interrupt, 4)
    };
    bus.clock.advance(t);
    bus.trace
        .emit_cmd(CmdKey::new(q.id.0, cid), || EventKind::CqePost {
            status: outcome.status.to_wire(),
        });
}

/// Whether this command's data phase is host→device via the data pointer.
fn opcode_moves_data_in(sqe: &SubmissionEntry) -> bool {
    sqe.io_opcode().is_some_and(IoOpcode::is_host_to_device)
}

/// PRP transfers are page-granular on the wire: the device fetches whole
/// pages even for sub-page payloads (§2.3, Fig 1).
fn page_granular_len(len: usize) -> usize {
    use bx_hostsim::PAGE_SIZE;
    len.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::BlockFirmware;
    use bx_pcie::LinkConfig;

    /// A minimal hand-rolled driver for controller unit tests: writes SQEs
    /// and chunks straight into SQ memory and rings doorbells. The real
    /// driver lives in `bx-driver`; these tests isolate controller behaviour.
    struct MiniDriver {
        bus: SystemBus,
        sq_base: PhysAddr,
        cq_base: PhysAddr,
        depth: u16,
        tail: u16,
        cq_head: u16,
        phase: bool,
        qid: QueueId,
    }

    impl MiniDriver {
        fn new(bus: &SystemBus, ctrl: &mut Controller, depth: u16) -> Self {
            let (sq_region, cq_region) = {
                let mut mem = bus.mem.borrow_mut();
                let sq = mem
                    .alloc_contiguous((depth as usize * SQE_BYTES).div_ceil(bx_hostsim::PAGE_SIZE))
                    .unwrap();
                let cq_pages = (depth as usize * CQE_BYTES).div_ceil(bx_hostsim::PAGE_SIZE);
                let cq = mem.alloc_contiguous(cq_pages).unwrap();
                (
                    DmaRegion::new(sq.base(), depth as usize * SQE_BYTES),
                    DmaRegion::new(cq.base(), depth as usize * CQE_BYTES),
                )
            };
            let qid = ctrl.register_io_queue(sq_region, cq_region, depth);
            MiniDriver {
                bus: bus.clone(),
                sq_base: sq_region.base(),
                cq_base: cq_region.base(),
                depth,
                tail: 0,
                cq_head: 0,
                phase: true,
                qid,
            }
        }

        fn push_raw(&mut self, img: &[u8; 64]) {
            let addr = self.sq_base.offset(self.tail as u64 * 64);
            self.bus.mem.borrow_mut().write(addr, img).unwrap();
            self.tail = (self.tail + 1) % self.depth;
        }

        fn ring(&mut self) {
            self.bus
                .doorbells
                .borrow_mut()
                .ring_sq_tail(self.qid, self.tail);
        }

        fn pop_cqe(&mut self) -> Option<CompletionEntry> {
            let addr = self.cq_base.offset(self.cq_head as u64 * 16);
            let mut img = [0u8; 16];
            self.bus.mem.borrow().read(addr, &mut img).unwrap();
            let cqe = CompletionEntry::from_bytes(&img);
            if cqe.phase() != self.phase {
                return None;
            }
            self.cq_head = (self.cq_head + 1) % self.depth;
            if self.cq_head == 0 {
                self.phase = !self.phase;
            }
            Some(cqe)
        }
    }

    fn setup(nand_io: bool) -> (SystemBus, Controller) {
        let bus = SystemBus::new(LinkConfig::gen2_x8(), 32 << 20, 8);
        let cfg = ControllerConfig {
            nand: if nand_io {
                NandConfig::small()
            } else {
                NandConfig::disabled()
            },
            ..ControllerConfig::default()
        };
        let ctrl = Controller::new(bus.clone(), cfg, |dram| {
            Box::new(BlockFirmware::new(dram, nand_io))
        });
        (bus, ctrl)
    }

    #[test]
    fn byteexpress_write_lands_payload() {
        let (bus, mut ctrl) = setup(true);
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        let payload: Vec<u8> = (0..100u32).map(|i| i as u8).collect();
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 7, 1);
        sqe.set_slba(3);
        sqe.set_data_len(payload.len() as u32);
        inline::set_inline_len(&mut sqe, payload.len());
        drv.push_raw(&sqe.to_bytes());
        for chunk in inline::encode_chunks(&payload) {
            drv.push_raw(&chunk);
        }
        drv.ring();

        assert_eq!(ctrl.process_available(), 1);
        let cqe = drv.pop_cqe().expect("completion posted");
        assert_eq!(cqe.cid(), 7);
        assert_eq!(cqe.status(), Status::Success);
        // SQ head advanced past command + 2 chunks.
        assert_eq!(cqe.sq_head(), 3);
        assert_eq!(ctrl.stats().chunks_fetched, 2);
        assert_eq!(ctrl.stats().inline_payload_bytes, 100);

        // Read it back via PRP to verify the bytes reached NAND.
        let buf_page = bus.mem.borrow_mut().alloc_page().unwrap().addr();
        let mut rd = SubmissionEntry::io(IoOpcode::Read, 8, 1);
        rd.set_slba(3);
        rd.set_data_len(100);
        rd.set_prp1(buf_page);
        drv.push_raw(&rd.to_bytes());
        drv.ring();
        ctrl.process_available();
        let cqe = drv.pop_cqe().unwrap();
        assert_eq!(cqe.status(), Status::Success);
        assert_eq!(bus.mem.borrow().read_vec(buf_page, 100).unwrap(), payload);
    }

    #[test]
    fn prp_write_moves_whole_page_traffic() {
        let (bus, mut ctrl) = setup(false);
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        let page = bus.mem.borrow_mut().alloc_page().unwrap().addr();
        bus.mem.borrow_mut().write(page, &[9u8; 32]).unwrap();
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        sqe.set_data_len(32);
        sqe.set_prp1(page);
        drv.push_raw(&sqe.to_bytes());
        drv.ring();

        let before = bus.traffic();
        ctrl.process_available();
        let delta = bus.traffic().since(&before);
        // 32 payload bytes cost a whole page of PRP traffic: >130x (Fig 1c).
        let amp = delta.total_bytes() as f64 / 32.0;
        assert!(amp > 130.0, "amplification {amp}");
        assert_eq!(delta.class(TrafficClass::PrpData).payload_bytes, 4096);
    }

    #[test]
    fn byteexpress_vs_prp_traffic_for_64_bytes() {
        // The headline claim: ~96% traffic reduction at 64 B (§4.2).
        let (bus, mut ctrl) = setup(false);
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        // PRP first.
        let page = bus.mem.borrow_mut().alloc_page().unwrap().addr();
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        sqe.set_data_len(64);
        sqe.set_prp1(page);
        drv.push_raw(&sqe.to_bytes());
        drv.ring();
        let before = bus.traffic();
        ctrl.process_available();
        let prp_bytes = bus.traffic().since(&before).total_bytes();

        // ByteExpress.
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 2, 1);
        sqe.set_data_len(64);
        inline::set_inline_len(&mut sqe, 64);
        drv.push_raw(&sqe.to_bytes());
        drv.push_raw(&inline::encode_chunks(&[5u8; 64])[0]);
        drv.ring();
        let before = bus.traffic();
        ctrl.process_available();
        let bx_bytes = bus.traffic().since(&before).total_bytes();

        let reduction = 1.0 - bx_bytes as f64 / prp_bytes as f64;
        assert!(
            reduction > 0.9,
            "ByteExpress should cut >90% of PRP traffic at 64 B, got {:.1}% ({bx_bytes} vs {prp_bytes})",
            reduction * 100.0
        );
    }

    #[test]
    fn bandslim_head_embedding_single_cmd() {
        let (bus, mut ctrl) = setup(false);
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        let payload = [3u8; 20];
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 5, 1);
        sqe.set_data_len(20);
        bandslim::encode_head(&mut sqe, &payload, bandslim::HEAD_CAPACITY);
        drv.push_raw(&sqe.to_bytes());
        drv.ring();

        assert_eq!(ctrl.process_available(), 1);
        assert_eq!(drv.pop_cqe().unwrap().status(), Status::Success);
        assert_eq!(ctrl.stats().frags_consumed, 0);
        assert_eq!(ctrl.stats().bandslim_payload_bytes, 20);
    }

    #[test]
    fn bandslim_fragmented_transfer() {
        let (bus, mut ctrl) = setup(false);
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        let payload: Vec<u8> = (0..128u32).map(|i| i as u8).collect();
        let mut head = SubmissionEntry::io(IoOpcode::Write, 6, 1);
        head.set_data_len(128);
        let embedded = bandslim::encode_head(&mut head, &payload, bandslim::HEAD_CAPACITY);
        drv.push_raw(&head.to_bytes());
        let mut off = embedded;
        let mut frag_no = 0u32;
        while off < payload.len() {
            let take = (payload.len() - off).min(bandslim::FRAG_CAPACITY);
            let frag = bandslim::encode_frag(6, 1, frag_no, &payload[off..off + take]);
            drv.push_raw(&frag.to_bytes());
            off += take;
            frag_no += 1;
        }
        drv.ring();

        assert_eq!(ctrl.process_available(), 1, "one logical command");
        assert_eq!(drv.pop_cqe().unwrap().status(), Status::Success);
        assert_eq!(ctrl.stats().frags_consumed, 2); // 32 + 48 + 48
        assert_eq!(ctrl.stats().bandslim_payload_bytes, 128);
    }

    #[test]
    fn orphan_fragment_fails_visibly() {
        let (bus, mut ctrl) = setup(false);
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);
        let frag = bandslim::encode_frag(9, 1, 0, &[1; 16]);
        drv.push_raw(&frag.to_bytes());
        drv.ring();
        ctrl.process_available();
        let cqe = drv.pop_cqe().unwrap();
        assert_eq!(cqe.status(), Status::InvalidField);
    }

    #[test]
    fn reassembly_policy_accepts_headered_chunks() {
        let bus = SystemBus::new(LinkConfig::gen2_x8(), 32 << 20, 8);
        let cfg = ControllerConfig {
            nand: NandConfig::small(),
            fetch_policy: FetchPolicy::Reassembly,
            ..ControllerConfig::default()
        };
        let mut ctrl = Controller::new(bus.clone(), cfg, |dram| {
            Box::new(BlockFirmware::new(dram, true))
        });
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        let payload: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 11, 1);
        sqe.set_slba(1);
        sqe.set_data_len(200);
        inline::set_inline_len(&mut sqe, 200);
        sqe.set_cdw3(42); // payload id
        drv.push_raw(&sqe.to_bytes());
        for chunk in inline::encode_reassembly_chunks(42, &payload) {
            drv.push_raw(&chunk);
        }
        drv.ring();

        assert_eq!(ctrl.process_available(), 1);
        assert_eq!(drv.pop_cqe().unwrap().status(), Status::Success);
        assert_eq!(ctrl.reassembly().completed_count(), 1);
        assert_eq!(ctrl.reassembly().sram_used(), 0);

        // Verify integrity through a read-back.
        let buf_page = bus.mem.borrow_mut().alloc_page().unwrap().addr();
        let mut rd = SubmissionEntry::io(IoOpcode::Read, 12, 1);
        rd.set_slba(1);
        rd.set_data_len(200);
        rd.set_prp1(buf_page);
        drv.push_raw(&rd.to_bytes());
        drv.ring();
        ctrl.process_available();
        assert_eq!(bus.mem.borrow().read_vec(buf_page, 200).unwrap(), payload);
    }

    #[test]
    fn truncated_reassembly_train_evicted_after_deadline() {
        let bus = SystemBus::new(LinkConfig::gen2_x8(), 32 << 20, 8);
        let cfg = ControllerConfig {
            nand: NandConfig::small(),
            fetch_policy: FetchPolicy::Reassembly,
            inline_stall_deadline: Nanos::from_us(100),
            ..ControllerConfig::default()
        };
        let mut ctrl = Controller::new(bus.clone(), cfg, |dram| {
            Box::new(BlockFirmware::new(dram, true))
        });
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        // A 200-byte payload needs 4 reassembly chunks; deliver only 3.
        let payload: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 21, 1);
        sqe.set_slba(1);
        sqe.set_data_len(200);
        inline::set_inline_len(&mut sqe, 200);
        sqe.set_cdw3(77);
        drv.push_raw(&sqe.to_bytes());
        let chunks = inline::encode_reassembly_chunks(77, &payload);
        assert_eq!(chunks.len(), 4);
        for chunk in &chunks[..3] {
            drv.push_raw(chunk);
        }
        drv.ring();

        // The train stalls: no completion, SRAM still held.
        assert_eq!(ctrl.process_available(), 0);
        assert!(drv.pop_cqe().is_none());
        assert!(ctrl.reassembly().sram_used() > 0);

        // Past the deadline the command fails visibly and SRAM is reclaimed.
        bus.clock.advance(Nanos::from_us(200));
        assert_eq!(ctrl.process_available(), 1);
        let cqe = drv.pop_cqe().expect("eviction posts a completion");
        assert_eq!(cqe.cid(), 21);
        assert_eq!(cqe.status(), Status::DataTransferError);
        assert_eq!(ctrl.reassembly().sram_used(), 0);
        assert_eq!(ctrl.reassembly().evicted_count(), 1);
        assert_eq!(ctrl.stats().stalled_evictions, 1);

        // The queue is usable again: a complete train succeeds.
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 22, 1);
        sqe.set_slba(1);
        sqe.set_data_len(200);
        inline::set_inline_len(&mut sqe, 200);
        sqe.set_cdw3(78);
        drv.push_raw(&sqe.to_bytes());
        for chunk in inline::encode_reassembly_chunks(78, &payload) {
            drv.push_raw(&chunk);
        }
        drv.ring();
        assert_eq!(ctrl.process_available(), 1);
        assert_eq!(drv.pop_cqe().unwrap().status(), Status::Success);
    }

    #[test]
    fn multi_queue_round_robin() {
        let (bus, mut ctrl) = setup(false);
        let mut d1 = MiniDriver::new(&bus, &mut ctrl, 16);
        let mut d2 = MiniDriver::new(&bus, &mut ctrl, 16);
        for (i, d) in [&mut d1, &mut d2].into_iter().enumerate() {
            let mut sqe = SubmissionEntry::io(IoOpcode::Write, i as u16, 1);
            sqe.set_data_len(32);
            inline::set_inline_len(&mut sqe, 32);
            d.push_raw(&sqe.to_bytes());
            d.push_raw(&inline::encode_chunks(&[7u8; 32])[0]);
            d.ring();
        }
        assert_eq!(ctrl.process_available(), 2);
        assert!(d1.pop_cqe().is_some());
        assert!(d2.pop_cqe().is_some());
    }

    #[test]
    fn fetch_latency_matches_table1_slope() {
        let (bus, mut ctrl) = setup(false);
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        let measure = |drv: &mut MiniDriver, ctrl: &mut Controller, len: usize| {
            let payload = vec![1u8; len];
            let mut sqe = SubmissionEntry::io(IoOpcode::Write, 1, 1);
            sqe.set_data_len(len as u32);
            inline::set_inline_len(&mut sqe, len);
            drv.push_raw(&sqe.to_bytes());
            for c in inline::encode_chunks(&payload) {
                drv.push_raw(&c);
            }
            drv.ring();
            let t0 = drv.bus.clock.now();
            ctrl.process_available();
            drv.pop_cqe().unwrap();
            (drv.bus.clock.now() - t0).as_ns()
        };

        let t64 = measure(&mut drv, &mut ctrl, 64);
        let t128 = measure(&mut drv, &mut ctrl, 128);
        let t256 = measure(&mut drv, &mut ctrl, 256);
        // Each extra chunk adds per_chunk_fetch + chunk_land = 440 ns.
        assert_eq!(t128 - t64, 440);
        assert_eq!(t256 - t128, 880);
    }

    #[test]
    fn power_cut_freezes_device_and_recovery_keeps_only_acked_writes() {
        use bx_hostsim::FaultConfig;

        let (bus, mut ctrl) = setup(true);
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);

        // First write is fully acked before the cut is armed.
        let acked: Vec<u8> = (0..100u32).map(|i| i as u8).collect();
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        sqe.set_slba(0);
        sqe.set_data_len(acked.len() as u32);
        inline::set_inline_len(&mut sqe, acked.len());
        drv.push_raw(&sqe.to_bytes());
        for chunk in inline::encode_chunks(&acked) {
            drv.push_raw(&chunk);
        }
        drv.ring();
        assert_eq!(ctrl.process_available(), 1);
        assert_eq!(drv.pop_cqe().unwrap().status(), Status::Success);

        // Arm the countdown so the cut lands *after* firmware dispatch of
        // the second write (tick 1: process_one entry; tick 2: post-handle)
        // — the media op is issued but the ack is never posted.
        bus.install_faults(FaultConfig {
            power_cut_after_events: Some(1),
            ..FaultConfig::disabled()
        });
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 2, 1);
        sqe.set_slba(1);
        sqe.set_data_len(acked.len() as u32);
        inline::set_inline_len(&mut sqe, acked.len());
        drv.push_raw(&sqe.to_bytes());
        for chunk in inline::encode_chunks(&acked) {
            drv.push_raw(&chunk);
        }
        drv.ring();

        assert_eq!(ctrl.process_available(), 0, "no ack for the torn write");
        assert!(ctrl.is_powered_off());
        assert!(!ctrl.is_ready(), "CSTS.RDY lost with power");
        assert!(drv.pop_cqe().is_none(), "no CQE reached the host");
        assert_eq!(ctrl.process_available(), 0, "device is dark until cycled");

        let report = ctrl.power_cycle();
        assert!(!ctrl.is_powered_off());
        assert_eq!(report.recovered_mappings, 1, "only the acked write");

        // Host must re-create queues from scratch, then the acked write
        // reads back bit-exact and the torn one is invisible.
        let mut drv = MiniDriver::new(&bus, &mut ctrl, 64);
        let buf_page = bus.mem.borrow_mut().alloc_page().unwrap().addr();
        let mut rd = SubmissionEntry::io(IoOpcode::Read, 3, 1);
        rd.set_slba(0);
        rd.set_data_len(100);
        rd.set_prp1(buf_page);
        drv.push_raw(&rd.to_bytes());
        drv.ring();
        ctrl.process_available();
        assert_eq!(drv.pop_cqe().unwrap().status(), Status::Success);
        assert_eq!(bus.mem.borrow().read_vec(buf_page, 100).unwrap(), acked);

        let mut rd = SubmissionEntry::io(IoOpcode::Read, 4, 1);
        rd.set_slba(1);
        rd.set_data_len(100);
        rd.set_prp1(buf_page);
        drv.push_raw(&rd.to_bytes());
        drv.ring();
        ctrl.process_available();
        assert_eq!(
            drv.pop_cqe().unwrap().status(),
            Status::LbaOutOfRange,
            "unacked write must not be half-visible"
        );
    }

    #[test]
    fn force_power_cut_clears_volatile_state() {
        let (bus, mut ctrl) = setup(true);
        let _drv = MiniDriver::new(&bus, &mut ctrl, 64);
        ctrl.force_power_cut();
        assert!(ctrl.is_powered_off());
        assert_eq!(bus.doorbells.borrow().sq_tail(QueueId(1)), 0);
        ctrl.power_cycle();
        assert!(!ctrl.is_powered_off());
        assert_eq!(ctrl.completions_in_flight(), 0);
    }

    #[test]
    fn empty_controller_is_idle() {
        let (_bus, mut ctrl) = setup(false);
        assert_eq!(ctrl.process_available(), 0);
    }
}
