//! Append-only FTL mapping-table journal with bounded checkpoints.
//!
//! Every mapping-table mutation (host write, GC/migration relocation, TRIM,
//! block retirement) is recorded here *before* the command is acknowledged:
//! the FTL acks at `max(nand_program_done, record_durable_at)`, the
//! write-ahead ordering NVLog (arXiv 2408.02911) uses for its NVMe-backed
//! log. On restart after a power cut the map is rebuilt from the newest
//! durable checkpoint plus an in-order replay of the surviving record tail —
//! the redo side of the durable-linearizability contract from "Durable
//! Queues: The Second Amendment" (arXiv 2105.08706): an acked update must
//! survive any crash point, an unacked one may vanish but never half-apply.
//!
//! The journal models a reserved SLC metadata region (OpenSSD firmware
//! convention) *outside* the FTL's exported block space: records are small
//! (48 B) and appended with partial-page SLC programs whose latency rides a
//! private busy chain, so journaling never contends with host-data dies and
//! — under the Serial execution model — never moves a command's completion
//! time (`record_durable_at` ≪ `nand_program_done` for every append that
//! shares a dispatch). No trace events and no wire traffic are emitted on
//! the append path, keeping no-fault runs bit-identical to the pre-journal
//! baseline.
//!
//! Torn tails are first-class: a cut mid-append leaves exactly one record
//! with a broken checksum; replay stops there and discards it (the update it
//! described was never acked — its ack would have waited for `durable_at`).

use crate::nand::Ppa;
use bx_hostsim::Nanos;

/// Amortized SLC program latency charged per appended record: 85 × 48 B
/// records pack into one 4 KB metadata page, and a ~170 µs SLC page program
/// spread across them is ~2 µs per record on the journal's busy chain.
pub const JOURNAL_APPEND_LATENCY: Nanos = Nanos::from_us(2);

/// Latency of persisting one checkpoint snapshot to the metadata region.
pub const CHECKPOINT_LATENCY: Nanos = Nanos::from_us(100);

/// Encoded record size on the journal medium.
pub const RECORD_BYTES: usize = 48;

/// Live-record threshold beyond which [`MapJournal::needs_checkpoint`]
/// asks the FTL to bound the replay tail.
pub const DEFAULT_CHECKPOINT_THRESHOLD: usize = 16 * 1024;

/// One journaled mapping-table mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// `lpn` now maps to `ppa`; it previously mapped to `prev` (if any).
    /// Replay falls back to `prev` when `ppa`'s program was torn by the cut
    /// — the record is durable before the data, so the last *acked* version
    /// is always reachable.
    MapUpdate {
        /// Logical page whose mapping changed.
        lpn: u64,
        /// New physical location.
        ppa: Ppa,
        /// Previous physical location, if the page was mapped before.
        prev: Option<Ppa>,
    },
    /// `lpn` was unmapped by TRIM.
    Trim {
        /// Logical page deallocated.
        lpn: u64,
    },
    /// The block was retired (grown bad) and must stay out of the free pool.
    Retire {
        /// Physical channel of the retired block.
        channel: u16,
        /// Die within the channel.
        die: u16,
        /// Block index within the die.
        block: u32,
    },
}

/// A decoded record: the op plus its monotonic sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotonic append sequence number.
    pub seq: u32,
    /// The journaled mutation.
    pub op: JournalOp,
}

const KIND_MAP_UPDATE: u8 = 1;
const KIND_TRIM: u8 = 2;
const KIND_RETIRE: u8 = 3;
const FLAG_HAS_PREV: u8 = 1;

/// Bitwise CRC-32 (IEEE 802.3 polynomial, reflected). Slow but dependency-
/// free; journal volumes are tiny.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn encode(rec: &JournalRecord) -> [u8; RECORD_BYTES] {
    let mut buf = [0u8; RECORD_BYTES];
    let (kind, flags, target, lpn, prev) = match rec.op {
        JournalOp::MapUpdate { lpn, ppa, prev } => (
            KIND_MAP_UPDATE,
            if prev.is_some() { FLAG_HAS_PREV } else { 0 },
            Some(ppa),
            lpn,
            prev,
        ),
        JournalOp::Trim { lpn } => (KIND_TRIM, 0, None, lpn, None),
        JournalOp::Retire {
            channel,
            die,
            block,
        } => (
            KIND_RETIRE,
            0,
            Some(Ppa {
                channel,
                die,
                block,
                page: 0,
            }),
            0,
            None,
        ),
    };
    buf[0] = kind;
    buf[1] = flags;
    if let Some(t) = target {
        buf[2..4].copy_from_slice(&t.channel.to_le_bytes());
        buf[4..6].copy_from_slice(&t.die.to_le_bytes());
        buf[6..10].copy_from_slice(&t.block.to_le_bytes());
        buf[10..14].copy_from_slice(&t.page.to_le_bytes());
    }
    buf[14..22].copy_from_slice(&lpn.to_le_bytes());
    if let Some(p) = prev {
        buf[22..24].copy_from_slice(&p.channel.to_le_bytes());
        buf[24..26].copy_from_slice(&p.die.to_le_bytes());
        buf[26..30].copy_from_slice(&p.block.to_le_bytes());
        buf[30..34].copy_from_slice(&p.page.to_le_bytes());
    }
    buf[34..38].copy_from_slice(&rec.seq.to_le_bytes());
    let crc = crc32(&buf[..RECORD_BYTES - 4]);
    buf[RECORD_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn u16_at(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

fn decode(buf: &[u8; RECORD_BYTES]) -> Option<JournalRecord> {
    let stored = u32_at(buf, RECORD_BYTES - 4);
    if crc32(&buf[..RECORD_BYTES - 4]) != stored {
        return None;
    }
    let target = Ppa {
        channel: u16_at(buf, 2),
        die: u16_at(buf, 4),
        block: u32_at(buf, 6),
        page: u32_at(buf, 10),
    };
    let lpn = u64::from_le_bytes([
        buf[14], buf[15], buf[16], buf[17], buf[18], buf[19], buf[20], buf[21],
    ]);
    let seq = u32_at(buf, 34);
    let op = match buf[0] {
        KIND_MAP_UPDATE => {
            let prev = (buf[1] & FLAG_HAS_PREV != 0).then(|| Ppa {
                channel: u16_at(buf, 22),
                die: u16_at(buf, 24),
                block: u32_at(buf, 26),
                page: u32_at(buf, 30),
            });
            JournalOp::MapUpdate {
                lpn,
                ppa: target,
                prev,
            }
        }
        KIND_TRIM => JournalOp::Trim { lpn },
        KIND_RETIRE => JournalOp::Retire {
            channel: target.channel,
            die: target.die,
            block: target.block,
        },
        _ => return None,
    };
    Some(JournalRecord { seq, op })
}

/// One record as it sits in the journal region, plus the volatile side
/// metadata the durability model needs (neither field is on the medium).
#[derive(Debug, Clone)]
struct StoredRecord {
    bytes: [u8; RECORD_BYTES],
    seq: u32,
    /// When the journal program for this record completes — acks wait for
    /// this; a cut before it tears the record.
    durable_at: Nanos,
    /// When the NAND program of the record's *target* page completes
    /// (`Nanos::ZERO` for Trim/Retire). Checkpoints only absorb records
    /// whose targets are already durable.
    target_done: Nanos,
}

/// A persisted map snapshot: replaces every record with `seq < covers_below`.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// All records with `seq < covers_below` are folded into `map`/`bad`
    /// (exclusive bound, so `0` means "covers nothing").
    pub covers_below: u32,
    /// Snapshot of the logical-to-physical map.
    pub map: Vec<Option<Ppa>>,
    /// Snapshot of the grown-bad block set.
    pub bad: Vec<(u16, u16, u32)>,
    /// When the snapshot program completed; a cut before this discards it.
    durable_at: Nanos,
}

/// Journal activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended.
    pub appends: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Records pruned after being absorbed by a durable checkpoint.
    pub pruned: u64,
    /// Records discarded as torn (broken checksum) during recovery.
    pub torn_records: u64,
}

/// The append-only mapping journal (reserved SLC metadata region).
#[derive(Debug)]
pub struct MapJournal {
    records: Vec<StoredRecord>,
    checkpoints: Vec<Checkpoint>,
    next_seq: u32,
    /// The journal region's program busy chain.
    busy_until: Nanos,
    checkpoint_threshold: usize,
    stats: JournalStats,
}

impl MapJournal {
    /// An empty journal with the default checkpoint threshold.
    pub fn new() -> Self {
        MapJournal {
            records: Vec::new(),
            checkpoints: Vec::new(),
            next_seq: 0,
            busy_until: Nanos::ZERO,
            checkpoint_threshold: DEFAULT_CHECKPOINT_THRESHOLD,
            stats: JournalStats::default(),
        }
    }

    /// Overrides the live-record count that triggers a checkpoint request
    /// (tests use small values to exercise the checkpoint path quickly).
    pub fn set_checkpoint_threshold(&mut self, records: usize) {
        self.checkpoint_threshold = records.max(1);
    }

    /// Activity counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Records currently live (not yet absorbed by a durable checkpoint).
    pub fn live_records(&self) -> usize {
        self.records.len()
    }

    /// The instant the last journal program completes. The FTL waits through
    /// this horizon before erasing blocks that hold superseded copies:
    /// destroying an old version is only safe once the record naming its
    /// replacement is on the medium.
    pub fn durable_horizon(&self) -> Nanos {
        self.busy_until
    }

    /// Appends one record; returns the instant it becomes durable. The
    /// caller must not ack the corresponding update before that instant.
    pub fn append(&mut self, op: JournalOp, target_done: Nanos, now: Nanos) -> Nanos {
        self.prune_covered(now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let rec = JournalRecord { seq, op };
        self.busy_until = self.busy_until.max(now) + JOURNAL_APPEND_LATENCY;
        self.records.push(StoredRecord {
            bytes: encode(&rec),
            seq,
            durable_at: self.busy_until,
            target_done,
        });
        self.stats.appends += 1;
        self.busy_until
    }

    /// Whether the live tail is long enough that the FTL should write a
    /// checkpoint on its next opportunity.
    pub fn needs_checkpoint(&self) -> bool {
        self.records.len() >= self.checkpoint_threshold
    }

    /// Persists a snapshot of the current map and bad-block set, absorbing
    /// every record whose *target* is already durable at `now`. Records with
    /// in-flight targets stay live: their map entries in the snapshot may
    /// point at pages a later cut tears, and only their journal records (with
    /// the prev-PPA fallback) can repair that on replay.
    pub fn write_checkpoint(
        &mut self,
        map: &[Option<Ppa>],
        bad: impl IntoIterator<Item = (u16, u16, u32)>,
        now: Nanos,
    ) {
        // Longest prefix of the live tail whose targets are durable.
        let mut covers_below = self.checkpoints.last().map(|c| c.covers_below).unwrap_or(0);
        for rec in &self.records {
            if rec.target_done <= now {
                covers_below = rec.seq + 1;
            } else {
                break;
            }
        }
        self.busy_until = self.busy_until.max(now) + CHECKPOINT_LATENCY;
        self.checkpoints.push(Checkpoint {
            covers_below,
            map: map.to_vec(),
            bad: bad.into_iter().collect(),
            durable_at: self.busy_until,
        });
        // Keep at most two snapshots: the newest may not be durable yet when
        // a cut lands, in which case recovery falls back to its predecessor.
        if self.checkpoints.len() > 2 {
            self.checkpoints.remove(0);
        }
        self.stats.checkpoints += 1;
        self.prune_covered(now);
    }

    /// Drops records absorbed by a checkpoint that is already durable.
    fn prune_covered(&mut self, now: Nanos) {
        let Some(covers) = self
            .checkpoints
            .iter()
            .filter(|c| c.durable_at <= now)
            .map(|c| c.covers_below)
            .max()
        else {
            return;
        };
        let before = self.records.len();
        self.records.retain(|r| r.seq >= covers);
        self.stats.pruned += (before - self.records.len()) as u64;
    }

    /// A power cut at instant `at`: checkpoints and records that had not
    /// finished programming are lost. The first in-flight record is kept
    /// with its tail zeroed — the torn-append signature replay must detect
    /// via the checksum — and everything after it never reached the medium.
    pub fn power_cut(&mut self, at: Nanos) {
        self.checkpoints.retain(|c| c.durable_at <= at);
        if let Some(first_torn) = self.records.iter().position(|r| r.durable_at > at) {
            self.records.truncate(first_torn + 1);
            let torn = &mut self.records[first_torn];
            for b in &mut torn.bytes[RECORD_BYTES - 8..] {
                *b = 0;
            }
        }
        self.busy_until = at;
    }

    /// The newest durable checkpoint (recovery's base state), if any.
    pub fn recovery_base(&self) -> Option<&Checkpoint> {
        self.checkpoints.last()
    }

    /// Decodes the surviving record tail from `from_seq` on (inclusive), in
    /// append order, stopping at the first checksum failure (the torn
    /// append). Returns the replayable records and whether a torn tail was
    /// found.
    pub fn replayable(&self, from_seq: u32) -> (Vec<JournalRecord>, bool) {
        let mut out = Vec::new();
        for rec in &self.records {
            match decode(&rec.bytes) {
                Some(r) => {
                    if r.seq >= from_seq {
                        out.push(r);
                    }
                }
                None => return (out, true),
            }
        }
        (out, false)
    }

    /// [`MapJournal::replayable`] from the first surviving record (the
    /// no-checkpoint recovery path).
    pub fn replayable_from_start(&self) -> (Vec<JournalRecord>, bool) {
        self.replayable(0)
    }

    /// Discards the torn tail record (if any) after recovery has replayed
    /// the durable prefix, leaving the journal clean for new appends.
    pub fn truncate_torn(&mut self) {
        if let Some(pos) = self.records.iter().position(|r| decode(&r.bytes).is_none()) {
            self.stats.torn_records += (self.records.len() - pos) as u64;
            self.records.truncate(pos);
        }
    }
}

impl Default for MapJournal {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ppa(channel: u16, die: u16, block: u32, page: u32) -> Ppa {
        Ppa {
            channel,
            die,
            block,
            page,
        }
    }

    #[test]
    fn record_round_trip_all_kinds() {
        for op in [
            JournalOp::MapUpdate {
                lpn: 7,
                ppa: ppa(1, 2, 3, 4),
                prev: Some(ppa(5, 6, 7, 8)),
            },
            JournalOp::MapUpdate {
                lpn: u64::MAX,
                ppa: ppa(0, 0, 0, 0),
                prev: None,
            },
            JournalOp::Trim { lpn: 42 },
            JournalOp::Retire {
                channel: 3,
                die: 1,
                block: 60,
            },
        ] {
            let rec = JournalRecord { seq: 9, op };
            let buf = encode(&rec);
            assert_eq!(decode(&buf), Some(rec));
        }
    }

    #[test]
    fn corrupted_record_fails_checksum() {
        let rec = JournalRecord {
            seq: 1,
            op: JournalOp::Trim { lpn: 5 },
        };
        let mut buf = encode(&rec);
        buf[14] ^= 0x40;
        assert_eq!(decode(&buf), None);
    }

    #[test]
    fn append_is_sequenced_and_durable_on_the_busy_chain() {
        let mut j = MapJournal::new();
        let t0 = Nanos::from_us(10);
        let d1 = j.append(JournalOp::Trim { lpn: 1 }, Nanos::ZERO, t0);
        let d2 = j.append(JournalOp::Trim { lpn: 2 }, Nanos::ZERO, t0);
        assert_eq!(d1, t0 + JOURNAL_APPEND_LATENCY);
        assert_eq!(d2, d1 + JOURNAL_APPEND_LATENCY, "appends serialize");
        assert_eq!(j.live_records(), 2);
        let (recs, torn) = j.replayable(1);
        assert!(!torn);
        assert_eq!(recs.len(), 1, "from_seq is inclusive");
        let (all, _) = j.replayable_from_start();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn power_cut_tears_exactly_the_in_flight_append() {
        let mut j = MapJournal::new();
        let t0 = Nanos::ZERO;
        let d1 = j.append(JournalOp::Trim { lpn: 1 }, Nanos::ZERO, t0);
        let _d2 = j.append(JournalOp::Trim { lpn: 2 }, Nanos::ZERO, t0);
        let _d3 = j.append(JournalOp::Trim { lpn: 3 }, Nanos::ZERO, t0);
        // Cut lands while record 2's program is in flight.
        j.power_cut(d1);
        let (recs, torn) = j.replayable_from_start();
        assert!(torn, "in-flight append must read back torn");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].op, JournalOp::Trim { lpn: 1 });
        j.truncate_torn();
        assert_eq!(j.live_records(), 1);
        assert_eq!(j.stats().torn_records, 1);
        let (recs, torn) = j.replayable_from_start();
        assert!(!torn);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn checkpoint_absorbs_only_durable_targets() {
        let mut j = MapJournal::new();
        let now = Nanos::from_ms(1);
        // Record 0's target finished; record 1's target is still in flight.
        j.append(
            JournalOp::MapUpdate {
                lpn: 0,
                ppa: ppa(0, 0, 0, 0),
                prev: None,
            },
            Nanos::from_us(500),
            now,
        );
        j.append(
            JournalOp::MapUpdate {
                lpn: 1,
                ppa: ppa(0, 0, 0, 1),
                prev: None,
            },
            Nanos::from_ms(2),
            now,
        );
        let map = vec![Some(ppa(0, 0, 0, 0)), Some(ppa(0, 0, 0, 1))];
        j.write_checkpoint(&map, [], now);
        // Once the checkpoint is durable, an append prunes the covered
        // record but keeps the in-flight-target one.
        let later = j.durable_horizon() + Nanos::from_us(1);
        j.append(JournalOp::Trim { lpn: 9 }, Nanos::ZERO, later);
        assert_eq!(j.live_records(), 2, "in-flight-target record stays live");
        let base = j.recovery_base().expect("checkpoint exists");
        assert_eq!(base.covers_below, 1);
        let (recs, _) = j.replayable(base.covers_below);
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0].op, JournalOp::MapUpdate { lpn: 1, .. }));
    }

    #[test]
    fn cut_before_checkpoint_durable_discards_it() {
        let mut j = MapJournal::new();
        let now = Nanos::ZERO;
        j.append(JournalOp::Trim { lpn: 1 }, Nanos::ZERO, now);
        let before = j.durable_horizon();
        j.write_checkpoint(&[], [], before);
        j.power_cut(before); // checkpoint program still in flight
        assert!(j.recovery_base().is_none());
        let (recs, torn) = j.replayable_from_start();
        assert!(!torn);
        assert_eq!(recs.len(), 1, "records survive even when snapshot dies");
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let mut a = MapJournal::new();
        let mut b = MapJournal::new();
        for i in 0..20u64 {
            let now = Nanos::from_us(i * 40);
            a.append(JournalOp::Trim { lpn: i }, Nanos::ZERO, now);
            b.append(JournalOp::Trim { lpn: i }, Nanos::ZERO, now);
        }
        let cut = Nanos::from_us(300);
        a.power_cut(cut);
        b.power_cut(cut);
        let ra = a.replayable_from_start();
        let rb = b.replayable_from_start();
        assert_eq!(ra, rb);
    }
}
