//! Controller-side timing model, calibrated to the paper's Table 1.
//!
//! Table 1 of the paper measures the controller's SQ-fetch cost on the real
//! OpenSSD:
//!
//! | System             | Controller SQ fetch |
//! |--------------------|---------------------|
//! | NVMe PRP (all)     | ≈ 2400 ns           |
//! | ByteExpress (64 B) | ≈ 2800 ns           |
//! | ByteExpress (128 B)| ≈ 3200 ns           |
//! | ByteExpress (256 B)| ≈ 4000 ns           |
//!
//! i.e. a ≈2400 ns base (poll detection + 64 B DMA fetch + decode/dispatch)
//! plus ≈400 ns per additional SQ entry fetched. The defaults below reproduce
//! those numbers: `fetch_dispatch_overhead` is chosen so that base + the
//! link-model's 64-byte DMA round trip (≈480 ns on Gen2 ×8) ≈ 2400 ns, and
//! `per_chunk_fetch` is the paper's ≈400 ns marginal cost (chunk fetches are
//! pipelined, so the marginal cost is firmware per-entry processing, not a
//! fresh DMA round trip).

use bx_hostsim::Nanos;

/// Tunable controller latency constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerTiming {
    /// Firmware cost to notice a doorbell, fetch-dispatch one SQE, and route
    /// it (excludes the 64-byte DMA itself, which the link model times).
    pub fetch_dispatch_overhead: Nanos,
    /// Marginal cost per additional SQ entry fetched in a ByteExpress chunk
    /// train (Table 1's ≈400 ns slope).
    pub per_chunk_fetch: Nanos,
    /// Cost to land one chunk in device DRAM and update offsets.
    pub chunk_land: Nanos,
    /// Firmware cost to parse PRPs and set up the data DMA engine.
    pub prp_setup: Nanos,
    /// Marginal cost to decode one BandSlim fragment command beyond the SQE
    /// fetch (field extraction + reorder bookkeeping).
    pub bandslim_frag_decode: Nanos,
    /// Firmware cost to build and post one CQE.
    pub cqe_post_overhead: Nanos,
    /// Reassembly-engine bookkeeping per chunk (bitmap update, offset math).
    pub reassembly_account: Nanos,
    /// Buffer-monitor detection cost for the MMIO byte-interface window
    /// (§3.1 baseline): noticing a committed write landed in the BAR buffer.
    pub mmio_detect: Nanos,
}

impl Default for ControllerTiming {
    fn default() -> Self {
        ControllerTiming {
            fetch_dispatch_overhead: Nanos::from_ns(1920),
            per_chunk_fetch: Nanos::from_ns(400),
            chunk_land: Nanos::from_ns(40),
            prp_setup: Nanos::from_ns(500),
            bandslim_frag_decode: Nanos::from_ns(60),
            cqe_post_overhead: Nanos::from_ns(100),
            reassembly_account: Nanos::from_ns(50),
            mmio_detect: Nanos::from_ns(300),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_pcie::{LinkConfig, PcieLink, TrafficClass};

    /// Reproduces Table 1's controller column from the composition of the
    /// timing model and the link model.
    #[test]
    fn table1_controller_fetch_calibration() {
        let t = ControllerTiming::default();
        let mut link = PcieLink::new(LinkConfig::gen2_x8());
        let sqe_dma = link.device_read(TrafficClass::SqeFetch, 64);
        let base = (t.fetch_dispatch_overhead + sqe_dma).as_ns();
        assert!(
            (2300..=2500).contains(&base),
            "PRP base fetch {base} ns outside Table 1 band (~2400)"
        );
        for (chunks, expected) in [(1u64, 2800u64), (2, 3200), (4, 4000)] {
            let total = base + t.per_chunk_fetch.as_ns() * chunks;
            let err = (total as f64 - expected as f64).abs() / expected as f64;
            assert!(
                err < 0.05,
                "{chunks}-chunk fetch {total} ns deviates >5% from Table 1's {expected}"
            );
        }
    }
}
