//! SQ arbitration: how the controller shares its SQE-fetch bandwidth
//! across submission queues.
//!
//! The NVMe spec's CC.AMS field selects between round-robin and weighted
//! round-robin command arbitration, with an arbitration burst bounding how
//! many commands a queue may surrender per turn. The simulated controller
//! honours the same shape: each pass over the queues grants every queue a
//! credit budget, and a queue consumes one credit per *scheduling unit* —
//! one fetched command (including a queue-local chunk train, which is
//! indivisible by design) or one reassembly-mode chunk fetch.
//!
//! `RoundRobin { burst: 1 }` reproduces the pre-arbiter controller
//! exactly: one unit per queue per pass, which is what makes §3.3.2's
//! cross-queue chunk interleaving visible in the first place. Larger
//! bursts trade fairness granularity for fetch locality; weighted mode
//! lets a hot queue drain faster without starving the rest.

/// SQ arbitration mode (the spec's CC.AMS plus arbitration burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arbitration {
    /// Every queue gets up to `burst` scheduling units per round.
    RoundRobin {
        /// Units granted per queue per round (clamped to at least 1).
        burst: u16,
    },
    /// A queue of weight `w` gets up to `w * burst` units per round.
    /// Weights default to 1 and are set per queue via
    /// [`crate::Controller::set_queue_weight`].
    WeightedRoundRobin {
        /// Units granted per weight unit per round (clamped to at least 1).
        burst: u16,
    },
}

impl Arbitration {
    /// The credit budget a queue of `weight` receives this round.
    pub fn credits(self, weight: u8) -> u32 {
        let credits = match self {
            Arbitration::RoundRobin { burst } => burst.max(1) as u32,
            Arbitration::WeightedRoundRobin { burst } => burst.max(1) as u32 * weight.max(1) as u32,
        };
        debug_assert!(credits > 0, "a zero grant would starve the queue forever");
        credits
    }
}

impl Default for Arbitration {
    fn default() -> Self {
        Arbitration::RoundRobin { burst: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_ignores_weight() {
        let a = Arbitration::RoundRobin { burst: 2 };
        assert_eq!(a.credits(1), 2);
        assert_eq!(a.credits(5), 2);
    }

    #[test]
    fn weighted_scales_by_weight() {
        let a = Arbitration::WeightedRoundRobin { burst: 2 };
        assert_eq!(a.credits(1), 2);
        assert_eq!(a.credits(3), 6);
    }

    #[test]
    fn zero_burst_and_weight_clamp_to_one() {
        assert_eq!(Arbitration::RoundRobin { burst: 0 }.credits(1), 1);
        assert_eq!(Arbitration::WeightedRoundRobin { burst: 0 }.credits(0), 1);
    }

    #[test]
    fn default_matches_pre_arbiter_controller() {
        assert_eq!(Arbitration::default(), Arbitration::RoundRobin { burst: 1 });
    }
}
