//! Controller BAR registers: CAP, CC, CSTS, AQA, ASQ, ACQ.
//!
//! The subset of the NVMe register map the bring-up sequence touches. The
//! driver reaches these through [`crate::Controller::mmio_write`] /
//! [`crate::Controller::mmio_read`], which charge PCIe traffic like any
//! other BAR access, so initialization costs show up in the measurements.

use bx_hostsim::PhysAddr;

/// Named controller registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Register {
    /// Controller capabilities (read-only).
    Cap,
    /// Controller configuration.
    Cc,
    /// Controller status (read-only).
    Csts,
    /// Admin queue attributes: SQ depth (11:0) and CQ depth (27:16), 0-based.
    Aqa,
    /// Admin submission queue base address.
    Asq,
    /// Admin completion queue base address.
    Acq,
}

/// CC.EN — controller enable.
pub const CC_ENABLE: u64 = 1;
/// CSTS.RDY — controller ready.
pub const CSTS_READY: u64 = 1;

/// The register file plus the capabilities the device advertises.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    /// Maximum queue entries supported (0-based in CAP.MQES).
    pub max_queue_entries: u16,
    cc: u64,
    csts: u64,
    aqa: u64,
    asq: u64,
    acq: u64,
}

impl RegisterFile {
    /// A register file advertising `max_queue_entries` per queue.
    pub fn new(max_queue_entries: u16) -> Self {
        RegisterFile {
            max_queue_entries,
            cc: 0,
            csts: 0,
            aqa: 0,
            asq: 0,
            acq: 0,
        }
    }

    /// Reads a register value.
    pub fn read(&self, reg: Register) -> u64 {
        match reg {
            // CAP: MQES in bits 15:0 (0-based), DSTRD 0, TO small.
            Register::Cap => (self.max_queue_entries as u64 - 1) | (1 << 24),
            Register::Cc => self.cc,
            Register::Csts => self.csts,
            Register::Aqa => self.aqa,
            Register::Asq => self.asq,
            Register::Acq => self.acq,
        }
    }

    /// Writes a register; read-only registers ignore writes (as hardware
    /// does). Returns whether the enable bit transitioned 0→1.
    pub fn write(&mut self, reg: Register, value: u64) -> bool {
        match reg {
            Register::Cap | Register::Csts => false,
            Register::Cc => {
                let was_enabled = self.cc & CC_ENABLE != 0;
                self.cc = value;
                let now_enabled = self.cc & CC_ENABLE != 0;
                if !now_enabled {
                    self.csts = 0; // disable clears ready
                }
                !was_enabled && now_enabled
            }
            Register::Aqa => {
                self.aqa = value;
                false
            }
            Register::Asq => {
                self.asq = value;
                false
            }
            Register::Acq => {
                self.acq = value;
                false
            }
        }
    }

    /// Marks the controller ready (set by the controller model once the
    /// admin queue is latched).
    pub fn set_ready(&mut self) {
        self.csts |= CSTS_READY;
    }

    /// A power cut: every writable register returns to its power-on value
    /// (CAP is derived from construction parameters and survives).
    pub fn power_cut(&mut self) {
        self.cc = 0;
        self.csts = 0;
        self.aqa = 0;
        self.asq = 0;
        self.acq = 0;
    }

    /// Whether CC.EN is set.
    pub fn enabled(&self) -> bool {
        self.cc & CC_ENABLE != 0
    }

    /// Whether CSTS.RDY is set.
    pub fn ready(&self) -> bool {
        self.csts & CSTS_READY != 0
    }

    /// Admin SQ depth from AQA (1-based).
    pub fn admin_sq_depth(&self) -> u16 {
        (self.aqa & 0xFFF) as u16 + 1
    }

    /// Admin CQ depth from AQA (1-based).
    pub fn admin_cq_depth(&self) -> u16 {
        ((self.aqa >> 16) & 0xFFF) as u16 + 1
    }

    /// Admin SQ base.
    pub fn admin_sq_base(&self) -> PhysAddr {
        PhysAddr(self.asq)
    }

    /// Admin CQ base.
    pub fn admin_cq_base(&self) -> PhysAddr {
        PhysAddr(self.acq)
    }

    /// Packs admin queue depths into an AQA value.
    pub fn aqa_value(sq_depth: u16, cq_depth: u16) -> u64 {
        (sq_depth as u64 - 1) | ((cq_depth as u64 - 1) << 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_reports_mqes() {
        let r = RegisterFile::new(1024);
        assert_eq!(r.read(Register::Cap) & 0xFFFF, 1023);
    }

    #[test]
    fn enable_transition_detected() {
        let mut r = RegisterFile::new(64);
        assert!(r.write(Register::Cc, CC_ENABLE));
        assert!(r.enabled());
        assert!(!r.write(Register::Cc, CC_ENABLE), "no 0->1 transition");
        assert!(!r.write(Register::Cc, 0));
        assert!(!r.enabled());
    }

    #[test]
    fn disable_clears_ready() {
        let mut r = RegisterFile::new(64);
        r.write(Register::Cc, CC_ENABLE);
        r.set_ready();
        assert!(r.ready());
        r.write(Register::Cc, 0);
        assert!(!r.ready());
    }

    #[test]
    fn read_only_registers_ignore_writes() {
        let mut r = RegisterFile::new(64);
        let cap = r.read(Register::Cap);
        r.write(Register::Cap, 0xFFFF_FFFF);
        assert_eq!(r.read(Register::Cap), cap);
        r.write(Register::Csts, 1);
        assert!(!r.ready());
    }

    #[test]
    fn aqa_round_trip() {
        let mut r = RegisterFile::new(64);
        r.write(Register::Aqa, RegisterFile::aqa_value(32, 32));
        assert_eq!(r.admin_sq_depth(), 32);
        assert_eq!(r.admin_cq_depth(), 32);
        r.write(Register::Asq, 0x1000);
        r.write(Register::Acq, 0x2000);
        assert_eq!(r.admin_sq_base(), PhysAddr(0x1000));
        assert_eq!(r.admin_cq_base(), PhysAddr(0x2000));
    }
}
