//! Device-internal DRAM.
//!
//! The landing zone for inline payloads: "a key-value log of KV-SSDs, a
//! workspace for filter processing in CSDs, or even a NAND page buffer entry
//! of normal block SSDs" (§3.3.1). A simple bump-allocated byte store with
//! named regions, sized like the OpenSSD's 1 GB DRAM by default (scaled down
//! for tests).

use std::collections::BTreeMap;
use std::fmt;

/// Errors from device DRAM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// Allocation exceeds remaining capacity.
    OutOfMemory {
        /// Requested bytes.
        requested: usize,
        /// Remaining bytes.
        remaining: usize,
    },
    /// Access outside an allocated region.
    OutOfBounds {
        /// Offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Capacity of the store.
        capacity: usize,
    },
    /// Duplicate region name.
    RegionExists(String),
    /// Unknown region name.
    NoSuchRegion(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::OutOfMemory {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "device dram exhausted: requested {requested}, remaining {remaining}"
                )
            }
            DramError::OutOfBounds {
                offset,
                len,
                capacity,
            } => {
                write!(f, "device dram access out of bounds: {len} bytes at {offset} (capacity {capacity})")
            }
            DramError::RegionExists(n) => write!(f, "region already exists: {n}"),
            DramError::NoSuchRegion(n) => write!(f, "no such region: {n}"),
        }
    }
}

impl std::error::Error for DramError {}

/// A named, fixed-size region of device DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRegion {
    /// Byte offset of the region within the DRAM.
    pub offset: usize,
    /// Region length in bytes.
    pub len: usize,
}

/// Byte-addressable device DRAM with named region allocation.
#[derive(Debug)]
pub struct DeviceDram {
    bytes: Vec<u8>,
    next_free: usize,
    /// Ordered by name so any future traversal (debug dumps, telemetry) is
    /// deterministic; lookups here are cold-path firmware configuration.
    regions: BTreeMap<String, DramRegion>,
}

impl DeviceDram {
    /// Creates a DRAM of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        DeviceDram {
            bytes: vec![0; capacity],
            next_free: 0,
            regions: BTreeMap::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Bytes not yet claimed by a region.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.next_free
    }

    /// Allocates a named region of `len` bytes.
    ///
    /// # Errors
    ///
    /// * [`DramError::RegionExists`] on duplicate names.
    /// * [`DramError::OutOfMemory`] when capacity is exhausted.
    pub fn alloc_region(&mut self, name: &str, len: usize) -> Result<DramRegion, DramError> {
        if self.regions.contains_key(name) {
            return Err(DramError::RegionExists(name.to_string()));
        }
        if len > self.remaining() {
            return Err(DramError::OutOfMemory {
                requested: len,
                remaining: self.remaining(),
            });
        }
        let region = DramRegion {
            offset: self.next_free,
            len,
        };
        self.next_free += len;
        self.regions.insert(name.to_string(), region);
        Ok(region)
    }

    /// Looks up a region by name.
    ///
    /// # Errors
    ///
    /// [`DramError::NoSuchRegion`] if absent.
    pub fn region(&self, name: &str) -> Result<DramRegion, DramError> {
        self.regions
            .get(name)
            .copied()
            .ok_or_else(|| DramError::NoSuchRegion(name.to_string()))
    }

    fn check(&self, offset: usize, len: usize) -> Result<(), DramError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.bytes.len())
        {
            return Err(DramError::OutOfBounds {
                offset,
                len,
                capacity: self.bytes.len(),
            });
        }
        Ok(())
    }

    /// Writes bytes at an absolute DRAM offset.
    ///
    /// # Errors
    ///
    /// [`DramError::OutOfBounds`] beyond capacity.
    pub fn write(&mut self, offset: usize, data: &[u8]) -> Result<(), DramError> {
        self.check(offset, data.len())?;
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads bytes from an absolute DRAM offset.
    ///
    /// # Errors
    ///
    /// [`DramError::OutOfBounds`] beyond capacity.
    pub fn read(&self, offset: usize, len: usize) -> Result<&[u8], DramError> {
        self.check(offset, len)?;
        Ok(&self.bytes[offset..offset + len])
    }

    /// A power cut: DRAM contents are gone. The region *layout* survives —
    /// it is firmware configuration re-derived identically at startup, and
    /// keeping it lets recovery code reuse region handles — but every byte
    /// reads back as zero.
    pub fn wipe(&mut self) {
        self.bytes.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_allocation_and_rw() {
        let mut d = DeviceDram::new(1024);
        let r = d.alloc_region("kv-log", 256).unwrap();
        d.write(r.offset, b"value").unwrap();
        assert_eq!(d.read(r.offset, 5).unwrap(), b"value");
        assert_eq!(d.region("kv-log").unwrap(), r);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut d = DeviceDram::new(1024);
        let a = d.alloc_region("a", 100).unwrap();
        let b = d.alloc_region("b", 100).unwrap();
        assert!(a.offset + a.len <= b.offset);
    }

    #[test]
    fn duplicate_region_rejected() {
        let mut d = DeviceDram::new(1024);
        d.alloc_region("x", 10).unwrap();
        assert_eq!(
            d.alloc_region("x", 10).unwrap_err(),
            DramError::RegionExists("x".into())
        );
    }

    #[test]
    fn oom_detected() {
        let mut d = DeviceDram::new(100);
        assert!(matches!(
            d.alloc_region("big", 101),
            Err(DramError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn oob_detected() {
        let mut d = DeviceDram::new(100);
        assert!(matches!(
            d.write(99, &[1, 2]),
            Err(DramError::OutOfBounds { .. })
        ));
        assert!(matches!(
            d.read(usize::MAX, 1),
            Err(DramError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn wipe_zeroes_bytes_but_keeps_layout() {
        let mut d = DeviceDram::new(256);
        let r = d.alloc_region("staging", 64).unwrap();
        d.write(r.offset, b"volatile").unwrap();
        d.wipe();
        assert_eq!(d.read(r.offset, 8).unwrap(), &[0u8; 8]);
        assert_eq!(d.region("staging").unwrap(), r, "layout survives");
        assert_eq!(d.remaining(), 256 - 64);
    }

    #[test]
    fn unknown_region_rejected() {
        let d = DeviceDram::new(100);
        assert_eq!(
            d.region("nope").unwrap_err(),
            DramError::NoSuchRegion("nope".into())
        );
    }
}
