//! NAND flash array model.
//!
//! Models the Cosmos+ OpenSSD's flash subsystem at the granularity the paper
//! needs: channels × dies × blocks × pages, with per-die busy windows so
//! programs/reads on different dies overlap, erase-before-program
//! discipline, and a dense page store so reads return exactly the bytes
//! programmed (end-to-end integrity, not just timing). The store is indexed
//! by a deterministic die-major page index — never by hashed keys — so no
//! randomized-hash iteration order can influence traces or timing.
//!
//! The controller can disable NAND I/O entirely (`NandConfig::disabled`) to
//! reproduce the paper's transfer-latency-only experiments ("with NAND I/O
//! disabled on the OpenSSD", §4.2).

use crate::bus::FaultHandle;
use bx_hostsim::Nanos;
use bx_trace::{EventKind, TraceSink};
use std::fmt;

/// Physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ppa {
    /// Channel index.
    pub channel: u16,
    /// Die (way) index within the channel.
    pub die: u16,
    /// Block index within the die.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/d{}/b{}/p{}",
            self.channel, self.die, self.block, self.page
        )
    }
}

/// NAND geometry and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct NandConfig {
    /// Number of channels.
    pub channels: u16,
    /// Dies per channel.
    pub dies_per_channel: u16,
    /// Blocks per die.
    pub blocks_per_die: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_size: usize,
    /// Page read (tR) latency.
    pub read_latency: Nanos,
    /// Page program (tPROG) latency.
    pub program_latency: Nanos,
    /// Block erase (tBERS) latency.
    pub erase_latency: Nanos,
    /// Channel transfer rate in bytes per nanosecond (flash bus).
    pub channel_bytes_per_ns: f64,
    /// When false, program/read return immediately with zero latency and no
    /// data is stored — the paper's "NAND off" mode for isolating transfer
    /// latency.
    pub enabled: bool,
}

impl NandConfig {
    /// A small OpenSSD-like array: 8 channels × 4 dies, 4 KB pages.
    ///
    /// Block/die counts are kept small so FTL tests exercise GC quickly; the
    /// capacity is configurable for larger runs.
    pub fn small() -> Self {
        NandConfig {
            channels: 8,
            dies_per_channel: 4,
            blocks_per_die: 64,
            pages_per_block: 64,
            page_size: 4096,
            read_latency: Nanos::from_us(50),
            program_latency: Nanos::from_us(300),
            erase_latency: Nanos::from_ms(3),
            channel_bytes_per_ns: 0.4, // 400 MB/s flash bus
            enabled: true,
        }
    }

    /// NAND disabled: the paper's transfer-latency measurement mode.
    pub fn disabled() -> Self {
        NandConfig {
            enabled: false,
            ..Self::small()
        }
    }

    /// Total pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.channels as u64
            * self.dies_per_channel as u64
            * self.blocks_per_die as u64
            * self.pages_per_block as u64
    }

    /// Total dies.
    pub fn total_dies(&self) -> usize {
        self.channels as usize * self.dies_per_channel as usize
    }

    fn die_index(&self, ppa: Ppa) -> usize {
        ppa.channel as usize * self.dies_per_channel as usize + ppa.die as usize
    }

    /// Dense die-major global page index: pages of one block are contiguous,
    /// blocks of one die are contiguous. Keys the page-data and page-state
    /// arrays — a deterministic dense structure, unlike the hash maps an
    /// earlier version used (and cheaper to address than hashing a `Ppa`).
    fn page_index(&self, ppa: Ppa) -> usize {
        (self.die_index(ppa) * self.blocks_per_die as usize + ppa.block as usize)
            * self.pages_per_block as usize
            + ppa.page as usize
    }

    fn transfer_time(&self, bytes: usize) -> Nanos {
        Nanos::from_ns((bytes as f64 / self.channel_bytes_per_ns).ceil() as u64)
    }
}

/// Errors from NAND operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// Address outside the configured geometry.
    BadAddress(Ppa),
    /// Program issued to a page that was not erased (or programmed twice).
    ProgramWithoutErase(Ppa),
    /// Read of a page that was never programmed.
    ReadUnwritten(Ppa),
    /// Data length does not match the page size.
    BadLength {
        /// Bytes provided.
        got: usize,
        /// Page size expected.
        want: usize,
    },
    /// Injected transient program failure; the page is burned and the FTL
    /// should retire the block and remap the write.
    ProgramFailed(Ppa),
    /// Read returned more flipped bits than the ECC can correct.
    Uncorrectable(Ppa),
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::BadAddress(p) => write!(f, "ppa out of range: {p}"),
            NandError::ProgramWithoutErase(p) => write!(f, "program without erase at {p}"),
            NandError::ReadUnwritten(p) => write!(f, "read of unwritten page {p}"),
            NandError::BadLength { got, want } => {
                write!(f, "bad page data length: got {got}, want {want}")
            }
            NandError::ProgramFailed(p) => write!(f, "page program failed at {p}"),
            NandError::Uncorrectable(p) => write!(f, "uncorrectable read at {p}"),
        }
    }
}

impl std::error::Error for NandError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Erased,
    Programmed,
}

/// Spare page buffers retained across erase cycles, capping steady-state
/// allocation: GC erase → reprogram loops reuse the same page-sized buffers
/// instead of freeing and reallocating them. 256 × 4 KB ≈ 1 MB worst case.
const SPARE_PAGE_POOL: usize = 256;

/// The NAND array: data store plus per-die timing state.
#[derive(Debug)]
pub struct NandArray {
    cfg: NandConfig,
    /// Dense page store keyed by [`NandConfig::page_index`], grown lazily to
    /// the highest page touched. Dense indexing keeps every traversal (and
    /// therefore every trace/wire consequence) deterministic — no
    /// randomized-hash iteration order can leak out of the media model.
    data: Vec<Option<Vec<u8>>>,
    /// Page program state, dense by the same global page index; pages beyond
    /// the vector's current length are implicitly `Erased`.
    page_state: Vec<PageState>,
    /// Page buffers recovered by `erase`, reused by later programs.
    spare_pages: Vec<Vec<u8>>,
    /// Per-die "busy until" instants, enabling inter-die parallelism.
    die_busy_until: Vec<Nanos>,
    /// Per-page program-complete marks: programs whose completion instant may
    /// still lie in the future. The data is inserted at issue time (the
    /// simulation is single-threaded), so these marks are what distinguishes
    /// a durable page from a half-programmed one when a power cut lands
    /// mid-pulse. Pruned lazily as programs finish.
    pending_programs: Vec<(Ppa, Nanos)>,
    /// Statistics.
    stats: NandStats,
    /// Shared fault injector (media faults fire only when installed).
    faults: Option<FaultHandle>,
    /// Flight-recorder sink (inert unless recording).
    trace: TraceSink,
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NandStats {
    /// Pages programmed.
    pub programs: u64,
    /// Pages read.
    pub reads: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Page programs that failed (injected media faults).
    pub program_failures: u64,
    /// Reads whose bit flips the ECC corrected transparently.
    pub ecc_corrected_reads: u64,
    /// Reads with more flipped bits than the ECC could correct.
    pub uncorrectable_reads: u64,
}

impl NandArray {
    /// Creates an array with all blocks in the erased state.
    pub fn new(cfg: NandConfig) -> Self {
        let dies = cfg.total_dies();
        NandArray {
            cfg,
            data: Vec::new(),
            page_state: Vec::new(),
            spare_pages: Vec::new(),
            die_busy_until: vec![Nanos::ZERO; dies],
            pending_programs: Vec::new(),
            stats: NandStats::default(),
            faults: None,
            trace: TraceSink::disabled(),
        }
    }

    /// Installs the platform's shared fault injector; media faults (program
    /// failures, read bit flips) fire only once this is set.
    pub fn set_fault_injector(&mut self, faults: FaultHandle) {
        self.faults = Some(faults);
    }

    /// Installs a flight-recorder sink; program/read/erase operations emit
    /// [`EventKind::NandOp`] events. Disabled sinks cost nothing.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    fn trace_op(&self, op: &'static str, ppa: Ppa, start: Nanos, done: Nanos) {
        self.trace.emit(None, || EventKind::NandOp {
            op,
            channel: ppa.channel as u32,
            die: ppa.die as u32,
            start,
            busy: done.saturating_sub(start),
        });
    }

    /// The configuration.
    pub fn config(&self) -> &NandConfig {
        &self.cfg
    }

    /// Operation counters.
    pub fn stats(&self) -> NandStats {
        self.stats
    }

    fn check(&self, ppa: Ppa) -> Result<(), NandError> {
        if ppa.channel < self.cfg.channels
            && ppa.die < self.cfg.dies_per_channel
            && ppa.block < self.cfg.blocks_per_die
            && ppa.page < self.cfg.pages_per_block
        {
            Ok(())
        } else {
            Err(NandError::BadAddress(ppa))
        }
    }

    /// The page-state slot for `ppa`, growing the dense array on first touch.
    fn state_slot(&mut self, idx: usize) -> &mut PageState {
        if idx >= self.page_state.len() {
            self.page_state.resize(idx + 1, PageState::Erased);
        }
        // bx-lint: allow(panic-freedom, reason = "index resized into range above")
        &mut self.page_state[idx]
    }

    /// Programs a page with `data`, starting no earlier than `now`.
    ///
    /// Returns the instant the program completes (the die is busy until
    /// then). With NAND disabled, returns `now` and stores nothing.
    ///
    /// # Errors
    ///
    /// * [`NandError::BadAddress`] outside the geometry.
    /// * [`NandError::BadLength`] if `data` is not exactly one page.
    /// * [`NandError::ProgramWithoutErase`] when overwriting in place.
    pub fn program(&mut self, ppa: Ppa, data: &[u8], now: Nanos) -> Result<Nanos, NandError> {
        self.check(ppa)?;
        if !self.cfg.enabled {
            return Ok(now);
        }
        if data.len() != self.cfg.page_size {
            return Err(NandError::BadLength {
                got: data.len(),
                want: self.cfg.page_size,
            });
        }
        let idx = self.cfg.page_index(ppa);
        let state = self.state_slot(idx);
        match *state {
            PageState::Erased => *state = PageState::Programmed,
            PageState::Programmed => return Err(NandError::ProgramWithoutErase(ppa)),
        }
        // Injected program failure: the program pulse still burns die time and
        // the page (it stays Programmed-but-empty until the block is erased),
        // but no data lands — the FTL retires the block and remaps.
        let failed = match &self.faults {
            Some(f) => f.borrow_mut().nand_program_fail(),
            None => false,
        };
        if failed {
            self.stats.program_failures += 1;
            let die = self.cfg.die_index(ppa);
            let start = self.die_busy_until[die].max(now);
            self.die_busy_until[die] =
                start + self.cfg.transfer_time(self.cfg.page_size) + self.cfg.program_latency;
            return Err(NandError::ProgramFailed(ppa));
        }
        // Land the bytes without allocating in steady state: reuse the slot's
        // previous buffer or a spare recovered by an earlier erase.
        if idx >= self.data.len() {
            self.data.resize_with(idx + 1, || None);
        }
        // bx-lint: allow(panic-freedom, reason = "index resized into range above")
        match &mut self.data[idx] {
            Some(buf) => {
                buf.clear();
                buf.extend_from_slice(data);
            }
            slot => {
                let mut buf = self.spare_pages.pop().unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(data);
                *slot = Some(buf);
            }
        }
        self.stats.programs += 1;

        let die = self.cfg.die_index(ppa);
        let start = self.die_busy_until[die].max(now);
        let done = start + self.cfg.transfer_time(self.cfg.page_size) + self.cfg.program_latency;
        self.die_busy_until[die] = done;
        self.pending_programs.retain(|&(_, d)| d > now);
        self.pending_programs.push((ppa, done));
        self.trace_op("program", ppa, start, done);
        Ok(done)
    }

    /// Reads a page, starting no earlier than `now`. Returns the data and
    /// the completion instant.
    ///
    /// # Errors
    ///
    /// * [`NandError::BadAddress`] outside the geometry.
    /// * [`NandError::ReadUnwritten`] for never-programmed pages.
    pub fn read(&mut self, ppa: Ppa, now: Nanos) -> Result<(Vec<u8>, Nanos), NandError> {
        self.check(ppa)?;
        if !self.cfg.enabled {
            return Ok((vec![0; self.cfg.page_size], now));
        }
        let idx = self.cfg.page_index(ppa);
        let data = self
            .data
            .get(idx)
            .and_then(|slot| slot.clone())
            .ok_or(NandError::ReadUnwritten(ppa))?;
        self.stats.reads += 1;
        let die = self.cfg.die_index(ppa);
        let start = self.die_busy_until[die].max(now);
        let done = start + self.cfg.read_latency + self.cfg.transfer_time(self.cfg.page_size);
        self.die_busy_until[die] = done;
        // Injected read disturb: a correctable flip count is fixed by the ECC
        // (the caller still gets clean data); past the ECC strength the read
        // fails. Flips are transient — a retry re-draws the schedule.
        if let Some(f) = &self.faults {
            let mut f = f.borrow_mut();
            if let Some(flips) = f.nand_read_flips() {
                if flips <= f.ecc_correctable_bits() {
                    self.stats.ecc_corrected_reads += 1;
                } else {
                    self.stats.uncorrectable_reads += 1;
                    return Err(NandError::Uncorrectable(ppa));
                }
            }
        }
        self.trace_op("read", ppa, start, done);
        Ok((data, done))
    }

    /// Erases a block, returning the completion instant.
    ///
    /// # Errors
    ///
    /// [`NandError::BadAddress`] outside the geometry.
    pub fn erase(
        &mut self,
        channel: u16,
        die: u16,
        block: u32,
        now: Nanos,
    ) -> Result<Nanos, NandError> {
        let probe = Ppa {
            channel,
            die,
            block,
            page: 0,
        };
        self.check(probe)?;
        if !self.cfg.enabled {
            return Ok(now);
        }
        let pages = self.cfg.pages_per_block;
        // Pages of a block are contiguous in the dense index, so the erase is
        // one linear sweep: recover data buffers into the spare pool and reset
        // page states. Slots beyond the arrays' current length were never
        // touched and are already (implicitly) erased.
        let base = self.cfg.page_index(probe);
        for idx in base..base + pages as usize {
            if let Some(slot) = self.data.get_mut(idx) {
                if let Some(buf) = slot.take() {
                    if self.spare_pages.len() < SPARE_PAGE_POOL {
                        self.spare_pages.push(buf);
                    }
                }
            }
            if let Some(state) = self.page_state.get_mut(idx) {
                *state = PageState::Erased;
            }
        }
        self.stats.erases += 1;
        let die_idx = self.cfg.die_index(probe);
        let start = self.die_busy_until[die_idx].max(now);
        let done = start + self.cfg.erase_latency;
        self.die_busy_until[die_idx] = done;
        self.trace_op("erase", probe, start, done);
        Ok(done)
    }

    /// The earliest instant at which the die holding `ppa` is idle.
    pub fn die_ready_at(&self, ppa: Ppa) -> Nanos {
        self.die_busy_until[self.cfg.die_index(ppa)]
    }

    /// Whether `ppa` holds durable data (programmed *and* the program pulse
    /// finished before any power cut destroyed it). Recovery uses this to
    /// validate journal records against the media.
    pub fn has_data(&self, ppa: Ppa) -> bool {
        self.data
            .get(self.cfg.page_index(ppa))
            .is_some_and(|slot| slot.is_some())
    }

    /// The completion instant of the latest still-in-flight program, or
    /// `Nanos::ZERO` when nothing is pending. The FTL waits through this
    /// horizon before destroying superseded copies (erase) so a power cut
    /// can never lose both the old and the new version of an acked page.
    pub fn program_horizon(&self) -> Nanos {
        self.pending_programs
            .iter()
            .map(|&(_, done)| done)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Whether every page of the block is in the erased state (never
    /// programmed since the last erase). Recovery rebuilds the free-block
    /// list from this. Erases are modeled atomic at issue: a cut mid-erase
    /// leaves the block erased, never half-erased.
    pub fn is_block_erased(&self, channel: u16, die: u16, block: u32) -> bool {
        let base = self.cfg.page_index(Ppa {
            channel,
            die,
            block,
            page: 0,
        });
        (base..base + self.cfg.pages_per_block as usize).all(|idx| {
            self.page_state
                .get(idx)
                .is_none_or(|&s| s == PageState::Erased)
        })
    }

    /// A whole-system power cut at instant `at`: every program whose pulse
    /// had not completed loses its data (the page stays burned —
    /// programmed-but-unreadable — until its block is erased, the classic
    /// half-programmed torn page), and all volatile die-busy windows
    /// collapse. Returns the number of torn pages.
    pub fn power_cut(&mut self, at: Nanos) -> usize {
        let mut torn = 0;
        for &(ppa, done) in &self.pending_programs {
            if done <= at {
                continue;
            }
            let idx = self.cfg.page_index(ppa);
            if let Some(slot) = self.data.get_mut(idx) {
                if slot.take().is_some() {
                    torn += 1;
                }
            }
        }
        self.pending_programs.clear();
        for busy in &mut self.die_busy_until {
            *busy = at;
        }
        torn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> NandArray {
        NandArray::new(NandConfig::small())
    }

    fn ppa(channel: u16, die: u16, block: u32, page: u32) -> Ppa {
        Ppa {
            channel,
            die,
            block,
            page,
        }
    }

    #[test]
    fn program_then_read_round_trip() {
        let mut n = array();
        let data = vec![0xAB; 4096];
        let done = n.program(ppa(0, 0, 0, 0), &data, Nanos::ZERO).unwrap();
        assert!(done >= Nanos::from_us(300));
        let (back, _) = n.read(ppa(0, 0, 0, 0), done).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn program_without_erase_rejected() {
        let mut n = array();
        let data = vec![1; 4096];
        n.program(ppa(0, 0, 0, 0), &data, Nanos::ZERO).unwrap();
        assert_eq!(
            n.program(ppa(0, 0, 0, 0), &data, Nanos::ZERO).unwrap_err(),
            NandError::ProgramWithoutErase(ppa(0, 0, 0, 0))
        );
    }

    #[test]
    fn erase_enables_reprogram() {
        let mut n = array();
        let data = vec![1; 4096];
        n.program(ppa(0, 0, 0, 0), &data, Nanos::ZERO).unwrap();
        let t = n.erase(0, 0, 0, Nanos::ZERO).unwrap();
        assert!(t >= Nanos::from_ms(3));
        n.program(ppa(0, 0, 0, 0), &data, t).unwrap();
        // Erase wiped the old data state; read returns the new program.
        let (back, _) = n.read(ppa(0, 0, 0, 0), t).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn erase_wipes_data() {
        let mut n = array();
        n.program(ppa(0, 0, 1, 3), &vec![7; 4096], Nanos::ZERO)
            .unwrap();
        n.erase(0, 0, 1, Nanos::ZERO).unwrap();
        assert_eq!(
            n.read(ppa(0, 0, 1, 3), Nanos::ZERO).unwrap_err(),
            NandError::ReadUnwritten(ppa(0, 0, 1, 3))
        );
    }

    #[test]
    fn read_unwritten_is_error() {
        let mut n = array();
        assert!(matches!(
            n.read(ppa(1, 1, 1, 1), Nanos::ZERO),
            Err(NandError::ReadUnwritten(_))
        ));
    }

    #[test]
    fn bad_address_rejected() {
        let mut n = array();
        assert!(matches!(
            n.program(ppa(99, 0, 0, 0), &vec![0; 4096], Nanos::ZERO),
            Err(NandError::BadAddress(_))
        ));
        assert!(matches!(
            n.erase(0, 0, 9999, Nanos::ZERO),
            Err(NandError::BadAddress(_))
        ));
    }

    #[test]
    fn bad_length_rejected() {
        let mut n = array();
        assert_eq!(
            n.program(ppa(0, 0, 0, 0), &[1, 2, 3], Nanos::ZERO)
                .unwrap_err(),
            NandError::BadLength { got: 3, want: 4096 }
        );
    }

    #[test]
    fn same_die_serializes() {
        let mut n = array();
        let d = vec![0; 4096];
        let t1 = n.program(ppa(0, 0, 0, 0), &d, Nanos::ZERO).unwrap();
        let t2 = n.program(ppa(0, 0, 0, 1), &d, Nanos::ZERO).unwrap();
        assert!(t2 >= t1 + n.config().program_latency);
    }

    #[test]
    fn different_dies_parallel() {
        let mut n = array();
        let d = vec![0; 4096];
        let t1 = n.program(ppa(0, 0, 0, 0), &d, Nanos::ZERO).unwrap();
        let t2 = n.program(ppa(1, 0, 0, 0), &d, Nanos::ZERO).unwrap();
        assert_eq!(t1, t2, "programs on different channels should overlap");
    }

    #[test]
    fn disabled_nand_is_free_and_stateless() {
        let mut n = NandArray::new(NandConfig::disabled());
        let t = n
            .program(ppa(0, 0, 0, 0), &[1, 2, 3], Nanos::from_ns(5))
            .unwrap();
        assert_eq!(t, Nanos::from_ns(5));
        let (data, t2) = n.read(ppa(0, 0, 0, 0), t).unwrap();
        assert_eq!(t2, t);
        assert_eq!(data.len(), 4096);
        assert_eq!(n.stats().programs, 0);
    }

    #[test]
    fn stats_count_operations() {
        let mut n = array();
        let d = vec![0; 4096];
        n.program(ppa(0, 0, 0, 0), &d, Nanos::ZERO).unwrap();
        n.read(ppa(0, 0, 0, 0), Nanos::ZERO).unwrap();
        n.erase(0, 0, 0, Nanos::ZERO).unwrap();
        let s = n.stats();
        assert_eq!((s.programs, s.reads, s.erases), (1, 1, 1));
    }

    #[test]
    fn power_cut_tears_in_flight_programs_only() {
        let mut n = array();
        let d = vec![0xCD; 4096];
        // First program completes (cut lands after its `done`); the second,
        // queued behind it on the same die, is still mid-pulse at the cut.
        let t1 = n.program(ppa(0, 0, 0, 0), &d, Nanos::ZERO).unwrap();
        let t2 = n.program(ppa(0, 0, 0, 1), &d, Nanos::ZERO).unwrap();
        assert!(t2 > t1);
        let torn = n.power_cut(t1);
        assert_eq!(torn, 1);
        assert!(n.has_data(ppa(0, 0, 0, 0)), "completed program survives");
        assert!(!n.has_data(ppa(0, 0, 0, 1)), "in-flight program is torn");
        // The torn page stays burned: reprogramming without erase fails.
        assert_eq!(
            n.program(ppa(0, 0, 0, 1), &d, t1).unwrap_err(),
            NandError::ProgramWithoutErase(ppa(0, 0, 0, 1))
        );
        // But its block is reclaimable through the normal erase path.
        let t = n.erase(0, 0, 0, t1).unwrap();
        n.program(ppa(0, 0, 0, 1), &d, t).unwrap();
    }

    #[test]
    fn power_cut_resets_die_busy_windows() {
        let mut n = array();
        let d = vec![1; 4096];
        n.program(ppa(0, 0, 0, 0), &d, Nanos::ZERO).unwrap();
        let at = Nanos::from_us(5);
        n.power_cut(at);
        assert_eq!(n.die_ready_at(ppa(0, 0, 0, 0)), at);
        assert_eq!(n.program_horizon(), Nanos::ZERO);
    }

    #[test]
    fn program_horizon_tracks_latest_pending_pulse() {
        let mut n = array();
        let d = vec![2; 4096];
        assert_eq!(n.program_horizon(), Nanos::ZERO);
        let t1 = n.program(ppa(0, 0, 0, 0), &d, Nanos::ZERO).unwrap();
        let t2 = n.program(ppa(1, 0, 0, 0), &d, Nanos::ZERO).unwrap();
        assert_eq!(n.program_horizon(), t1.max(t2));
        // Issuing a program later than the horizon prunes finished entries.
        let t3 = n.program(ppa(2, 0, 0, 0), &d, t1.max(t2)).unwrap();
        assert_eq!(n.program_horizon(), t3);
    }

    #[test]
    fn block_erased_query_reflects_program_state() {
        let mut n = array();
        assert!(n.is_block_erased(0, 0, 5));
        n.program(ppa(0, 0, 5, 0), &vec![3; 4096], Nanos::ZERO)
            .unwrap();
        assert!(!n.is_block_erased(0, 0, 5));
        n.erase(0, 0, 5, Nanos::ZERO).unwrap();
        assert!(n.is_block_erased(0, 0, 5));
        // A torn page still counts as programmed (burned) until erased.
        let t = n
            .program(ppa(0, 0, 6, 0), &vec![4; 4096], Nanos::ZERO)
            .unwrap();
        n.power_cut(t.saturating_sub(Nanos::from_ns(1)));
        assert!(!n.is_block_erased(0, 0, 6));
    }

    #[test]
    fn erase_recycles_page_buffers() {
        let mut n = array();
        let mut t = Nanos::ZERO;
        // GC-like loop: program, erase, reprogram the same block. After the
        // first cycle the erase-recovered buffers are reused, so the spare
        // pool never grows past one block's worth of pages.
        for round in 0..3u8 {
            for page in 0..4 {
                t = n
                    .program(ppa(0, 0, 0, page), &vec![round; 4096], t)
                    .unwrap();
            }
            let (back, _) = n.read(ppa(0, 0, 0, 3), t).unwrap();
            assert_eq!(back, vec![round; 4096]);
            t = n.erase(0, 0, 0, t).unwrap();
        }
        assert!(n.spare_pages.len() <= 4);
        assert!(n.spare_pages.iter().all(|b| b.capacity() >= 4096));
    }

    #[test]
    fn geometry_totals() {
        let cfg = NandConfig::small();
        assert_eq!(cfg.total_dies(), 32);
        assert_eq!(cfg.total_pages(), 8 * 4 * 64 * 64);
    }
}
