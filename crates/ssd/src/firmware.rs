//! The firmware extension point.
//!
//! The controller handles everything protocol-side (fetching SQEs, gathering
//! payloads via PRP/SGL/BandSlim/ByteExpress, posting completions); what a
//! command *means* is delegated to a [`FirmwareHandler`]. The block firmware
//! here serves ordinary read/write; the KV-SSD and CSD crates plug in their
//! own handlers — mirroring how ByteExpress's controller change (fetch the
//! chunk train) is independent of what the device does with the payload.

use crate::dram::DeviceDram;
use crate::ftl::{Ftl, FtlError};
use crate::nand::NandArray;
use bx_hostsim::{Nanos, PAGE_SIZE};
use bx_nvme::{IoOpcode, Status, SubmissionEntry};

/// Mutable device state handed to firmware for one command.
pub struct FirmwareCtx<'a> {
    /// The NAND array.
    pub nand: &'a mut NandArray,
    /// The FTL over it.
    pub ftl: &'a mut Ftl,
    /// Device DRAM.
    pub dram: &'a mut DeviceDram,
    /// Virtual time at dispatch.
    pub now: Nanos,
}

/// What the firmware decided about one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutcome {
    /// Completion status.
    pub status: Status,
    /// CQE DW0 (command-specific result, e.g. value length).
    pub result: u32,
    /// Data to DMA back to the host (from-device commands).
    pub response: Option<Vec<u8>>,
    /// Instant at which device-side processing finishes (≥ dispatch time).
    pub complete_at: Nanos,
}

impl CommandOutcome {
    /// A success with no response data, completing at `at`.
    pub fn ok(at: Nanos) -> Self {
        CommandOutcome {
            status: Status::Success,
            result: 0,
            response: None,
            complete_at: at,
        }
    }

    /// A failure with `status`, completing at `at`.
    pub fn fail(status: Status, at: Nanos) -> Self {
        CommandOutcome {
            status,
            result: 0,
            response: None,
            complete_at: at,
        }
    }
}

/// Device personality: interprets commands once the controller has gathered
/// their payloads.
pub trait FirmwareHandler {
    /// Handles one command. `payload` is the gathered host→device data
    /// (inline chunks, PRP data, SGL data or BandSlim fragments — the
    /// firmware does not know or care which transfer method delivered it).
    fn handle(
        &mut self,
        ctx: FirmwareCtx<'_>,
        sqe: &SubmissionEntry,
        payload: Option<&[u8]>,
    ) -> CommandOutcome;

    /// Called once after a power cut, when the controller has already
    /// rebuilt the FTL from its journal ([`Ftl::recover`]) and wiped DRAM.
    /// Firmware re-derives its volatile state (indexes, staging cursors)
    /// from the recovered durable state. The default is a no-op — stateless
    /// firmware like [`BlockFirmware`] needs nothing.
    fn on_power_cycle(&mut self, ctx: FirmwareCtx<'_>) {
        let _ = ctx;
    }
}

/// Plain block-SSD firmware: `Write`/`Read`/`Flush` against the FTL, one
/// 4 KB logical block per LBA.
///
/// With `nand_io` disabled the payload is landed in a DRAM page buffer and
/// acknowledged without touching NAND — the paper's configuration for
/// measuring pure transfer latency (§4.2: "with NAND I/O disabled").
#[derive(Debug)]
pub struct BlockFirmware {
    nand_io: bool,
    /// Device-DRAM page buffer offset (landing zone in NAND-off mode).
    page_buffer: usize,
}

impl BlockFirmware {
    /// Creates block firmware; `nand_io = false` reproduces the paper's
    /// NAND-off transfer benchmarks.
    pub fn new(dram: &mut DeviceDram, nand_io: bool) -> Self {
        let region = dram
            .alloc_region("block-page-buffer", 4 * PAGE_SIZE)
            // bx-lint: allow(panic-freedom, reason = "construction-time sizing bug, not a runtime state; DRAM capacity is a build parameter")
            .expect("device DRAM too small for page buffer");
        BlockFirmware {
            nand_io,
            page_buffer: region.offset,
        }
    }

    /// Whether NAND I/O is enabled.
    pub fn nand_io(&self) -> bool {
        self.nand_io
    }
}

impl FirmwareHandler for BlockFirmware {
    fn handle(
        &mut self,
        ctx: FirmwareCtx<'_>,
        sqe: &SubmissionEntry,
        payload: Option<&[u8]>,
    ) -> CommandOutcome {
        let Some(op) = sqe.io_opcode() else {
            return CommandOutcome::fail(Status::InvalidOpcode, ctx.now);
        };
        match op {
            IoOpcode::Flush => CommandOutcome::ok(ctx.now),
            IoOpcode::Write => {
                let Some(data) = payload else {
                    return CommandOutcome::fail(Status::InvalidField, ctx.now);
                };
                if data.is_empty() {
                    return CommandOutcome::fail(Status::InvalidField, ctx.now);
                }
                if !self.nand_io {
                    // Land in the DRAM page buffer; no NAND.
                    let take = data.len().min(4 * PAGE_SIZE);
                    if ctx.dram.write(self.page_buffer, &data[..take]).is_err() {
                        return CommandOutcome::fail(Status::InternalError, ctx.now);
                    }
                    return CommandOutcome::ok(ctx.now);
                }
                // Page-at-a-time through the FTL; sub-page tails are padded.
                let mut t = ctx.now;
                let base_lpn = sqe.slba();
                for (i, chunk) in data.chunks(PAGE_SIZE).enumerate() {
                    let mut page = vec![0u8; PAGE_SIZE];
                    page[..chunk.len()].copy_from_slice(chunk);
                    match ctx.ftl.write(base_lpn + i as u64, &page, ctx.nand, t) {
                        Ok(done) => t = done,
                        Err(e) => return CommandOutcome::fail(ftl_status(&e), ctx.now),
                    }
                }
                CommandOutcome::ok(t)
            }
            IoOpcode::Read => {
                let len = sqe.data_len() as usize;
                if len == 0 {
                    return CommandOutcome::fail(Status::InvalidField, ctx.now);
                }
                if !self.nand_io {
                    return CommandOutcome {
                        status: Status::Success,
                        result: len as u32,
                        response: Some(vec![0; len]),
                        complete_at: ctx.now,
                    };
                }
                let mut t = ctx.now;
                let mut out = Vec::with_capacity(len);
                let base_lpn = sqe.slba();
                let pages = len.div_ceil(PAGE_SIZE);
                for i in 0..pages {
                    match ctx.ftl.read(base_lpn + i as u64, ctx.nand, t) {
                        Ok((data, done)) => {
                            t = done;
                            let take = (len - out.len()).min(PAGE_SIZE);
                            out.extend_from_slice(&data[..take]);
                        }
                        Err(e) => return CommandOutcome::fail(ftl_status(&e), ctx.now),
                    }
                }
                CommandOutcome {
                    status: Status::Success,
                    result: len as u32,
                    response: Some(out),
                    complete_at: t,
                }
            }
            _ => CommandOutcome::fail(Status::InvalidOpcode, ctx.now),
        }
    }
}

fn ftl_status(e: &FtlError) -> Status {
    match e {
        FtlError::LpnOutOfRange { .. } => Status::LbaOutOfRange,
        FtlError::Unmapped(_) => Status::LbaOutOfRange,
        FtlError::NoFreeBlocks => Status::CapacityExceeded,
        FtlError::Nand(_) => Status::InternalError,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nand::NandConfig;

    struct Rig {
        nand: NandArray,
        ftl: Ftl,
        dram: DeviceDram,
        fw: BlockFirmware,
    }

    fn rig(nand_io: bool) -> Rig {
        let nand = NandArray::new(NandConfig::small());
        let ftl = Ftl::new(&nand, 0.25);
        let mut dram = DeviceDram::new(1 << 20);
        let fw = BlockFirmware::new(&mut dram, nand_io);
        Rig {
            nand,
            ftl,
            dram,
            fw,
        }
    }

    fn handle(r: &mut Rig, sqe: &SubmissionEntry, payload: Option<&[u8]>) -> CommandOutcome {
        r.fw.handle(
            FirmwareCtx {
                nand: &mut r.nand,
                ftl: &mut r.ftl,
                dram: &mut r.dram,
                now: Nanos::ZERO,
            },
            sqe,
            payload,
        )
    }

    #[test]
    fn write_then_read_with_nand() {
        let mut r = rig(true);
        let mut w = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        w.set_slba(5);
        w.set_data_len(100);
        let data = vec![0x42; 100];
        let out = handle(&mut r, &w, Some(&data));
        assert_eq!(out.status, Status::Success);
        assert!(out.complete_at >= Nanos::from_us(300), "NAND program time");

        let mut rd = SubmissionEntry::io(IoOpcode::Read, 2, 1);
        rd.set_slba(5);
        rd.set_data_len(100);
        let out = handle(&mut r, &rd, None);
        assert_eq!(out.status, Status::Success);
        assert_eq!(out.response.unwrap(), data);
    }

    #[test]
    fn multi_page_write_read() {
        let mut r = rig(true);
        let data: Vec<u8> = (0..2 * PAGE_SIZE + 17).map(|i| (i % 256) as u8).collect();
        let mut w = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        w.set_slba(10);
        w.set_data_len(data.len() as u32);
        assert_eq!(handle(&mut r, &w, Some(&data)).status, Status::Success);

        let mut rd = SubmissionEntry::io(IoOpcode::Read, 2, 1);
        rd.set_slba(10);
        rd.set_data_len(data.len() as u32);
        assert_eq!(handle(&mut r, &rd, None).response.unwrap(), data);
    }

    #[test]
    fn nand_off_write_is_instant() {
        let mut r = rig(false);
        let mut w = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        w.set_data_len(64);
        let out = handle(&mut r, &w, Some(&[1u8; 64]));
        assert_eq!(out.status, Status::Success);
        assert_eq!(out.complete_at, Nanos::ZERO, "NAND off: no program time");
        assert_eq!(r.nand.stats().programs, 0);
    }

    #[test]
    fn read_unwritten_lba_fails() {
        let mut r = rig(true);
        let mut rd = SubmissionEntry::io(IoOpcode::Read, 1, 1);
        rd.set_slba(77);
        rd.set_data_len(10);
        assert_eq!(handle(&mut r, &rd, None).status, Status::LbaOutOfRange);
    }

    #[test]
    fn write_without_payload_fails() {
        let mut r = rig(true);
        let w = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        assert_eq!(handle(&mut r, &w, None).status, Status::InvalidField);
    }

    #[test]
    fn vendor_opcode_rejected_by_block_firmware() {
        let mut r = rig(true);
        let sqe = SubmissionEntry::io(IoOpcode::KvPut, 1, 1);
        assert_eq!(
            handle(&mut r, &sqe, Some(&[1])).status,
            Status::InvalidOpcode
        );
    }

    #[test]
    fn flush_succeeds() {
        let mut r = rig(true);
        let sqe = SubmissionEntry::io(IoOpcode::Flush, 1, 1);
        assert_eq!(handle(&mut r, &sqe, None).status, Status::Success);
    }
}
