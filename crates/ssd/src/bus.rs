//! The shared host↔device fabric: memory, link, doorbells, clock.
//!
//! The driver and the controller each hold a clone of [`SystemBus`]; clones
//! share state, so a doorbell the driver rings is visible to the controller
//! on its next poll, and every DMA flows through one set of traffic counters.
//! The simulation is single-threaded (deterministic virtual time), so shared
//! ownership is `Rc<RefCell<_>>`; the multi-threaded ordering stress harness
//! lives separately in the driver crate.

use bx_hostsim::{FaultConfig, FaultCounters, FaultInjector, HostMemory, SimClock};
use bx_nvme::{DoorbellArray, Status, SubmissionEntry};
use bx_pcie::{LinkConfig, PcieLink, TrafficCounters};
use bx_trace::TraceSink;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Shared handle to the platform's fault injector.
pub type FaultHandle = Rc<RefCell<FaultInjector>>;

/// A BAR-window submission for the PCIe-MMIO byte-interface path (§3.1 of
/// the paper — the 2B-SSD / ByteFS approach): the host writes the command
/// image and payload straight into a device buffer with cacheline MMIO
/// writes, bypassing the submission queue entirely.
#[derive(Debug, Clone)]
pub struct MmioSubmission {
    /// The I/O queue pair that logically owns this command. The byte
    /// interface bypasses the submission queue, but the host still issues
    /// the command *on behalf of* a queue pair (cids are allocated per
    /// queue), so the device must echo the id back on the completion for
    /// the host to route it to the right submitter.
    pub qid: u16,
    /// The command image the host wrote into the window.
    pub sqe: SubmissionEntry,
    /// The payload bytes following it.
    pub payload: Vec<u8>,
}

/// A completion the device posts into the BAR status area for the host to
/// poll (no CQE, no interrupt — part of why the MMIO path is fast, and why
/// it breaks the NVMe completion model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmioCompletion {
    /// The submitting queue pair's id, echoed from the [`MmioSubmission`].
    /// Cids are only unique *per queue*, and the status area is shared by
    /// every queue on the device — without the qid the host cannot tell
    /// whose command finished, and a poll on one queue would consume (and
    /// mis-time) completions belonging to another.
    pub qid: u16,
    /// Command identifier.
    pub cid: u16,
    /// Completion status.
    pub status: Status,
    /// Command-specific result.
    pub result: u32,
}

/// The shared BAR window state.
#[derive(Debug, Default)]
pub struct MmioWindow {
    /// Host→device submissions awaiting the device's buffer monitor.
    pub submissions: VecDeque<MmioSubmission>,
    /// Device→host completions awaiting the host's status poll.
    pub completions: VecDeque<MmioCompletion>,
}

/// Shared handles to the simulated platform.
#[derive(Debug, Clone)]
pub struct SystemBus {
    /// Simulated host DRAM.
    pub mem: Rc<RefCell<HostMemory>>,
    /// The PCIe link (traffic + timing).
    pub link: Rc<RefCell<PcieLink>>,
    /// BAR doorbell registers.
    pub doorbells: Rc<RefCell<DoorbellArray>>,
    /// The byte-interface BAR window (the §3.1 MMIO baseline).
    pub mmio_window: Rc<RefCell<MmioWindow>>,
    /// The shared virtual clock.
    pub clock: SimClock,
    /// The shared fault injector (disabled by default; see
    /// [`SystemBus::install_faults`]).
    pub faults: FaultHandle,
    /// The flight-recorder sink (disabled by default; see
    /// [`SystemBus::enable_trace`]). Clones share the event buffer.
    pub trace: TraceSink,
}

impl SystemBus {
    /// Creates a platform with `mem_capacity` bytes of host memory,
    /// `queue_pairs` doorbell pairs, and the given link configuration.
    pub fn new(link: LinkConfig, mem_capacity: usize, queue_pairs: usize) -> Self {
        SystemBus {
            mem: Rc::new(RefCell::new(HostMemory::with_capacity(mem_capacity))),
            link: Rc::new(RefCell::new(PcieLink::new(link))),
            doorbells: Rc::new(RefCell::new(DoorbellArray::new(queue_pairs))),
            mmio_window: Rc::new(RefCell::new(MmioWindow::default())),
            clock: SimClock::new(),
            faults: Rc::new(RefCell::new(FaultInjector::disabled())),
            trace: TraceSink::disabled(),
        }
    }

    /// Turns on the flight recorder for every component built from this bus,
    /// stamping events with the shared clock. Must be called **before** the
    /// driver/controller are constructed (they copy the sink handle); the
    /// [`PcieLink`] hook is installed here. Returns the sink for reading
    /// events back.
    pub fn enable_trace(&mut self) -> TraceSink {
        let sink = TraceSink::recording(self.clock.clone());
        self.trace = sink.clone();
        self.link.borrow_mut().set_trace(sink.clone());
        sink
    }

    /// Replaces the fault schedule for every component sharing this bus
    /// (driver, controller, NAND). Pass [`FaultConfig::disabled`] to turn
    /// injection off, e.g. for a chaos test's verification phase.
    pub fn install_faults(&self, cfg: FaultConfig) {
        self.faults.borrow_mut().reconfigure(cfg);
    }

    /// Snapshot of how many faults each class has injected so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.borrow().counters()
    }

    /// A snapshot of the link's traffic counters.
    pub fn traffic(&self) -> TrafficCounters {
        self.link.borrow().counters().clone()
    }

    /// Resets traffic counters and the clock (for back-to-back benchmark
    /// configurations on one platform).
    pub fn reset_measurements(&self) {
        self.link.borrow_mut().reset_counters();
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_hostsim::Nanos;
    use bx_pcie::TrafficClass;

    #[test]
    fn clones_share_state() {
        let bus = SystemBus::new(LinkConfig::gen2_x8(), 1 << 20, 4);
        let view = bus.clone();
        bus.link
            .borrow_mut()
            .host_posted_write(TrafficClass::Doorbell, 4);
        assert_eq!(view.traffic().total_bytes(), 28);
        bus.clock.advance(Nanos::from_ns(10));
        assert_eq!(view.clock.now(), Nanos::from_ns(10));
    }

    #[test]
    fn reset_measurements_clears_both() {
        let bus = SystemBus::new(LinkConfig::gen2_x8(), 1 << 20, 4);
        bus.link
            .borrow_mut()
            .host_posted_write(TrafficClass::Doorbell, 4);
        bus.clock.advance(Nanos::from_ns(100));
        bus.reset_measurements();
        assert_eq!(bus.traffic().total_bytes(), 0);
        assert_eq!(bus.clock.now(), Nanos::ZERO);
    }
}
