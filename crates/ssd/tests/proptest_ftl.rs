//! Model-based property testing of the FTL: under arbitrary interleavings
//! of writes, overwrites, trims and the GC they trigger, reads always return
//! the most recent write and space accounting never lies.

use bx_hostsim::{Nanos, PAGE_SIZE};
use bx_ssd::{Ftl, FtlError, NandArray, NandConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn tiny_nand() -> NandArray {
    NandArray::new(NandConfig {
        channels: 2,
        dies_per_channel: 2,
        blocks_per_die: 8,
        pages_per_block: 8,
        ..NandConfig::small()
    })
}

fn page(tag: u64) -> Vec<u8> {
    let mut p = vec![0u8; PAGE_SIZE];
    p[..8].copy_from_slice(&tag.to_le_bytes());
    p[PAGE_SIZE - 8..].copy_from_slice(&tag.to_le_bytes());
    p
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Trim(u64),
    Read(u64),
}

fn op_strategy(lpns: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..lpns).prop_map(Op::Write),
        1 => (0..lpns).prop_map(Op::Trim),
        2 => (0..lpns).prop_map(Op::Read),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FTL vs a HashMap reference model over arbitrary op sequences on a
    /// working set small enough that GC churns constantly.
    #[test]
    fn ftl_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(12), 1..400),
    ) {
        let mut nand = tiny_nand();
        let mut ftl = Ftl::new(&nand, 0.25);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut t = Nanos::ZERO;
        let mut seq = 0u64;

        for op in ops {
            match op {
                Op::Write(lpn) => {
                    seq += 1;
                    t = ftl.write(lpn, &page(seq), &mut nand, t).unwrap();
                    model.insert(lpn, seq);
                }
                Op::Trim(lpn) => {
                    ftl.trim(lpn, t).unwrap();
                    model.remove(&lpn);
                }
                Op::Read(lpn) => match (ftl.read(lpn, &mut nand, t), model.get(&lpn)) {
                    (Ok((data, t2)), Some(&tag)) => {
                        t = t2;
                        prop_assert_eq!(&data[..8], &tag.to_le_bytes());
                        prop_assert_eq!(&data[PAGE_SIZE - 8..], &tag.to_le_bytes());
                    }
                    (Err(FtlError::Unmapped(_)), None) => {}
                    (got, want) => {
                        return Err(TestCaseError::fail(format!(
                            "lpn {lpn}: ftl {:?} vs model {want:?}",
                            got.map(|(d, _)| u64::from_le_bytes(d[..8].try_into().unwrap()))
                        )));
                    }
                },
            }
        }
        // Final sweep: every model entry is readable and correct.
        for (lpn, tag) in model {
            let (data, t2) = ftl.read(lpn, &mut nand, t).unwrap();
            t = t2;
            prop_assert_eq!(&data[..8], &tag.to_le_bytes());
        }
    }

    /// Write amplification is finite and bounded under pure overwrite churn,
    /// and GC keeps the device writable indefinitely.
    #[test]
    fn gc_sustains_overwrite_churn(seed_lpns in 2u64..10, rounds in 50usize..200) {
        let mut nand = tiny_nand();
        let mut ftl = Ftl::new(&nand, 0.25);
        let mut t = Nanos::ZERO;
        for i in 0..rounds {
            let lpn = i as u64 % seed_lpns;
            t = ftl.write(lpn, &page(i as u64), &mut nand, t).unwrap();
        }
        let stats = ftl.stats();
        prop_assert_eq!(stats.host_writes, rounds as u64);
        // With a tiny hot set, WA stays modest (victims are mostly garbage).
        prop_assert!(
            stats.write_amplification() < 3.0,
            "write amplification {}",
            stats.write_amplification()
        );
        // Wear is tracked once GC has run.
        if stats.gc_erases > 0 {
            let (min, max, mean) = ftl.wear_spread();
            prop_assert!(min <= max);
            prop_assert!(mean >= min as f64 && mean <= max as f64);
        }
    }
}
