//! Fig 7 — SQL predicate pushdown for CSD: (a) PCIe traffic and (b) average
//! throughput per query, transferring the full SQL string vs only the
//! table+predicate segment, across PRP / BandSlim / ByteExpress.
//!
//! `cargo run -p bx-bench --release --bin fig7 [-- tasks_per_config]`

use bx_bench::{bench_args, section, JsonReport};
use bx_csd::session::CsdConfig;
use bx_csd::{corpus, CorpusQuery, CsdSession, TaskEncoding};
use byteexpress::TransferMethod;
use serde::Value;

// Tables are small and DRAM-resident (NAND off) so per-task costs are
// transfer-visible, as in the paper's throughput comparison; fig7's traffic
// numbers are NAND-independent either way.
const ROWS_PER_TABLE: usize = 256;

/// CSD-style BandSlim: the task command's fields are spoken for, so payload
/// rides entirely in fragment commands (no head embedding).
fn methods() -> [TransferMethod; 3] {
    [
        TransferMethod::Prp,
        TransferMethod::BandSlim { embed_first: false },
        TransferMethod::ByteExpress,
    ]
}

struct Cell {
    traffic_per_task: u64,
    ktasks_per_sec: f64,
}

fn run(q: &CorpusQuery, encoding: TaskEncoding, method: TransferMethod, tasks: usize) -> Cell {
    let mut session = CsdSession::open(CsdConfig {
        nand_io: false,
        ..CsdConfig::default()
    });
    session.create_table(&q.schema).unwrap();
    session
        .load_rows(&q.schema, &q.generate_rows(ROWS_PER_TABLE, 42))
        .unwrap();

    let before = session.device().traffic();
    let t0 = session.device().now();
    for _ in 0..tasks {
        session
            .pushdown(&q.full_sql, q.table, &q.predicate, encoding, method)
            .unwrap();
    }
    let traffic = session.device().traffic().since(&before).total_bytes();
    let elapsed = session.device().now() - t0;
    Cell {
        traffic_per_task: traffic / tasks as u64,
        ktasks_per_sec: tasks as f64 / elapsed.as_secs_f64() / 1e3,
    }
}

fn main() {
    let args = bench_args();
    let tasks = args.ops.unwrap_or(500);
    let mut json = JsonReport::new("fig7");

    for (title, pick) in [
        ("Fig 7(a): PCIe traffic per pushdown task (bytes)", 0usize),
        ("Fig 7(b): average pushdown throughput (Ktasks/s, incl. DRAM-resident filter over 256 rows)", 1),
    ] {
        section(title);
        println!(
            "{:>10} | {:>9} {:>9} {:>12} | {:>9} {:>9} {:>12}",
            "query", "PRP", "BandSlim", "ByteExpress", "PRP", "BandSlim", "ByteExpress"
        );
        println!(
            "{:>10} | {:^33} | {:^33}",
            "", "---- full SQL string ----", "---- table+predicate ----"
        );
        for q in corpus() {
            let mut cells = Vec::new();
            for encoding in [TaskEncoding::FullSql, TaskEncoding::Segment] {
                for method in methods() {
                    let cell = run(&q, encoding, method, tasks);
                    if pick == 0 {
                        let enc = match encoding {
                            TaskEncoding::FullSql => "full_sql",
                            TaskEncoding::Segment => "segment",
                        };
                        json.push(
                            format!("{}_{enc}_{}", q.name, method.label()),
                            Value::object([
                                ("wire_bytes_per_task", Value::U64(cell.traffic_per_task)),
                                ("ktasks_per_sec", Value::F64(cell.ktasks_per_sec)),
                            ]),
                        );
                    }
                    cells.push(cell);
                }
            }
            let v = |c: &Cell| -> String {
                if pick == 0 {
                    c.traffic_per_task.to_string()
                } else {
                    format!("{:.1}", c.ktasks_per_sec)
                }
            };
            println!(
                "{:>10} | {:>9} {:>9} {:>12} | {:>9} {:>9} {:>12}",
                q.name,
                v(&cells[0]),
                v(&cells[1]),
                v(&cells[2]),
                v(&cells[3]),
                v(&cells[4]),
                v(&cells[5])
            );
        }
    }

    println!(
        "\nShape checks (paper §4.3): both inline methods cut ~98% of PRP's \
         task-transfer traffic;\nByteExpress posts the best throughput for \
         every query in segment mode and also wins in\nfull-string mode for \
         the sub-100-byte scientific queries; CSD-style BandSlim (no head\n\
         embedding, per-fragment commands) hovers at or below PRP throughput."
    );
    json.finish(args.json);
}
