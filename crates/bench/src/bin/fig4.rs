//! Fig 4 — example queries used in CSD works: lengths of the full SQL
//! string and of the table-identifier + predicate segment.
//!
//! `cargo run -p bx-bench --release --bin fig4`

use bx_bench::{bench_args, JsonReport};
use bx_csd::corpus;
use serde::Value;

fn main() {
    let args = bench_args();
    let mut report = JsonReport::new("fig4");
    println!("Fig 4: query lengths (bytes)\n");
    println!(
        "{:>10} {:>12} {:>18} {:>10}",
        "query", "full string", "table+predicate", "table"
    );
    for q in corpus() {
        println!(
            "{:>10} {:>10} B {:>16} B {:>10}",
            q.name,
            q.full_sql.len(),
            q.segment_payload().len(),
            q.table
        );
        report.push(
            q.name,
            Value::object([
                ("full_sql_len", Value::U64(q.full_sql.len() as u64)),
                ("segment_len", Value::U64(q.segment_payload().len() as u64)),
            ]),
        );
    }
    println!(
        "\nScientific workloads (VPIC/Laghos/Asteroid) stay under 100 bytes \
         even as full strings;\nTPC-H full strings run to a couple hundred \
         bytes while their single-table filter\nsegments stay under 100 — \
         the paper's Fig 4 length bands."
    );
    report.finish(args.json);
}
