//! Link-energy comparison — quantifying the paper's §1 power motivation
//! ("traffic bloating can lead to increased latency and unnecessary power
//! consumption"): PCIe link energy per operation and per payload byte for
//! each transfer method.
//!
//! `cargo run -p bx-bench --release --bin energy [-- n_ops]`

use bx_bench::{bench_args, section, JsonReport};
use byteexpress::pcie::EnergyModel;
use byteexpress::{Device, TransferMethod};
use serde::Value;

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(10_000);
    let mut json = JsonReport::new("energy");
    let model = EnergyModel::default();
    let mut dev = Device::builder().nand_io(false).build();

    section("PCIe link energy per write (pJ/byte = 40, pJ/TLP = 15000)");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>16}",
        "payload", "PRP", "BandSlim", "ByteExpress", "BX savings vs PRP"
    );
    for size in [32usize, 64, 128, 256, 1024, 4096] {
        let mut per_op = Vec::new();
        for method in [
            TransferMethod::Prp,
            TransferMethod::BandSlim { embed_first: true },
            TransferMethod::ByteExpress,
        ] {
            let r = dev.measure_writes(n, size, method).unwrap();
            dev.reset_measurements();
            let pj = model.total(&r.traffic).0 / n as f64;
            json.push(
                format!("{}_{size}b_pj_per_op", method.label()),
                Value::F64(pj),
            );
            per_op.push(pj);
        }
        println!(
            "{:>7}B {:>12.0}nJ {:>12.0}nJ {:>12.0}nJ {:>15.1}%",
            size,
            per_op[0] / 1e3,
            per_op[1] / 1e3,
            per_op[2] / 1e3,
            100.0 * (1.0 - per_op[2] / per_op[0])
        );
    }

    section("Energy per application payload byte (link efficiency)");
    println!("{:>8} {:>14} {:>14}", "payload", "PRP", "ByteExpress");
    for size in [32usize, 256, 4096] {
        let mut eff = Vec::new();
        for method in [TransferMethod::Prp, TransferMethod::ByteExpress] {
            let r = dev.measure_writes(n, size, method).unwrap();
            dev.reset_measurements();
            eff.push(model.total(&r.traffic).0 / r.payload_bytes as f64);
        }
        println!("{:>7}B {:>11.0}pJ/B {:>11.0}pJ/B", size, eff[0], eff[1]);
    }
    println!(
        "\nLink energy tracks wire traffic: the >130x amplification of tiny \
         PRP writes is also >100x\nwasted link energy per payload byte, which \
         ByteExpress reclaims for sub-page payloads."
    );
    json.finish(args.json);
}
