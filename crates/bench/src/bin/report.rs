//! `bx-report` — terminal dashboard and baseline regression gate.
//!
//! Two modes:
//!
//! ```text
//! report <run.json>                     # dashboard: render one bench report
//! report --diff <old.json> <new.json>   # gate: diff two baselines
//!        [--tolerance 0.10] [--json]
//! ```
//!
//! A "report" is the final-stdout-line JSON any bench binary emits with
//! `--json` (e.g. the committed `BENCH_pipeline.json`). Dashboard mode
//! pretty-prints the result tree and renders any embedded time-series as
//! sparklines. Diff mode classifies every numeric metric by key path
//! (throughput gates downward, latency/doorbells/wire-bytes gate upward,
//! failure counts gate on any increase) and **exits nonzero when a metric
//! regressed beyond tolerance** — the CI baseline gate.

use bx_bench::report::{diff_reports, render_timeseries, DiffReport};
use bx_bench::section;
use serde::Value;
use std::process::ExitCode;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Accept both a bare report document and full bench stdout: the report
    // is always the last non-empty line.
    let line = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{path} is empty"))?;
    Value::parse_json(line.trim()).map_err(|e| format!("{path}: not a bench report: {e}"))
}

fn print_tree(v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    match v {
        Value::Object(pairs) => {
            for (k, inner) in pairs {
                match inner {
                    Value::Object(_) | Value::Array(_) => {
                        println!("{pad}{k}:");
                        print_tree(inner, indent + 1);
                    }
                    _ => println!("{pad}{k} = {}", inner.to_json()),
                }
            }
        }
        Value::Array(items) => {
            for (i, inner) in items.iter().enumerate() {
                match inner {
                    Value::Object(_) | Value::Array(_) => {
                        println!("{pad}[{i}]:");
                        print_tree(inner, indent + 1);
                    }
                    _ => println!("{pad}[{i}] = {}", inner.to_json()),
                }
            }
        }
        _ => println!("{pad}{}", v.to_json()),
    }
}

fn dashboard(doc: &Value) {
    let bin = doc.get("bin").and_then(|b| b.as_str()).unwrap_or("?");
    section(&format!("bx-report dashboard: {bin}"));
    if let Some(Value::Object(pairs)) = doc.get("results") {
        for (k, v) in pairs {
            if k == "timeseries" {
                continue; // rendered as sparklines below
            }
            println!("\n[{k}]");
            print_tree(v, 1);
        }
    }
    if let Some(rendered) = render_timeseries(doc) {
        println!();
        print!("{rendered}");
    }
}

fn print_diff(diff: &DiffReport, tolerance: f64) {
    section(&format!(
        "baseline diff ({} metrics, tolerance {:.0}%)",
        diff.compared,
        tolerance * 100.0
    ));
    for r in &diff.regressions {
        println!("REGRESSION  {r}");
    }
    for r in &diff.improvements {
        println!("improved    {r}");
    }
    for p in &diff.only_in_old {
        println!("removed     {p}");
    }
    for p in &diff.only_in_new {
        println!("added       {p}");
    }
    if diff.passes() {
        println!(
            "OK: no regressions ({} improvements)",
            diff.improvements.len()
        );
    } else {
        println!("FAIL: {} metric(s) regressed", diff.regressions.len());
    }
}

fn diff_value(diff: &DiffReport) -> Value {
    let reg = |r: &bx_bench::report::Regression| {
        Value::object([
            ("path", Value::Str(r.path.clone())),
            ("old", Value::F64(r.old)),
            ("new", Value::F64(r.new)),
            ("change", Value::F64(r.change)),
        ])
    };
    Value::object([
        ("compared", Value::U64(diff.compared as u64)),
        (
            "regressions",
            Value::array(diff.regressions.iter().map(reg)),
        ),
        (
            "improvements",
            Value::array(diff.improvements.iter().map(reg)),
        ),
        ("failures", Value::U64(diff.regressions.len() as u64)),
    ])
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut diff_mode = false;
    let mut tolerance = 0.10;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--diff" => diff_mode = true,
            "--tolerance" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--tolerance needs a value".to_string())?;
                tolerance = v.parse().map_err(|_| format!("bad tolerance {v:?}"))?;
            }
            f => files.push(f),
        }
    }

    if diff_mode {
        let [old_path, new_path] = files.as_slice() else {
            return Err(
                "usage: report --diff <old.json> <new.json> [--tolerance f] [--json]".to_string(),
            );
        };
        let old = load(old_path)?;
        let new = load(new_path)?;
        let diff = diff_reports(&old, &new, tolerance);
        print_diff(&diff, tolerance);
        let ok = diff.passes();
        if json {
            let doc = Value::object([
                ("bin", Value::Str("report".to_string())),
                ("results", diff_value(&diff)),
            ]);
            println!("{}", doc.to_json());
        }
        Ok(ok)
    } else {
        let [path] = files.as_slice() else {
            return Err(
                "usage: report <run.json> | report --diff <old.json> <new.json>".to_string(),
            );
        };
        let doc = load(path)?;
        dashboard(&doc);
        if json {
            println!("{}", doc.to_json());
        }
        Ok(true)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("report: {e}");
            ExitCode::FAILURE
        }
    }
}
