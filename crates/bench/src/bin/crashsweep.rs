//! crashsweep — the power-fail robustness gate.
//!
//! Sweeps a virtual-time power cut across every event index of a fixed PUT
//! workload (Serial/queue-local and Pipelined/reassembly), recovers each
//! crashed device, and checks durable linearizability: every acked PUT reads
//! back bit-exact, the in-flight PUT is old-value/new-value/absent but never
//! torn, and re-running a schedule reproduces the identical recovered store.
//! Any violation exits nonzero, which makes this binary the CI crash tier.
//!
//! `cargo run -p bx-bench --release --bin crashsweep [-- puts] [--json]`

use bx_bench::{bench_args, section, JsonReport};
use bx_kvssd::{KvStore, KvStoreConfig};
use byteexpress::{
    derive_timeseries, sparkline, Device, ExecutionModel, FaultConfig, FetchPolicy, Nanos,
    RecoveryReport, RetryPolicy, TransferMethod,
};
use serde::Value;
use std::collections::BTreeMap;

/// Distinct keys the workload cycles through.
const KEYS: usize = 5;

fn key(i: usize) -> Vec<u8> {
    format!("crash-key-{:02}", i % KEYS).into_bytes()
}

fn value(seed: u64, i: usize) -> Vec<u8> {
    let len = 180 + ((seed as usize).wrapping_mul(31).wrapping_add(i * 97)) % 200;
    (0..len)
        .map(|j| (seed as usize).wrapping_add(i * 131 + j * 7) as u8)
        .collect()
}

/// One crash schedule's outcome.
#[derive(PartialEq)]
struct CrashRun {
    acked: BTreeMap<Vec<u8>, Vec<u8>>,
    in_flight: Option<(Vec<u8>, Vec<u8>)>,
    cut_fired: bool,
    report: RecoveryReport,
    recovered: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
}

fn run_schedule(
    seed: u64,
    cut_after: u64,
    execution: ExecutionModel,
    fetch: FetchPolicy,
    puts: usize,
) -> CrashRun {
    let mut store = KvStore::open(KvStoreConfig {
        method: TransferMethod::ByteExpress,
        execution,
        fetch,
        retry: Some(RetryPolicy::default()),
        durable_puts: true,
        ..Default::default()
    });
    store.device().install_faults(FaultConfig {
        power_cut_after_events: Some(cut_after),
        ..FaultConfig::disabled()
    });
    let mut acked = BTreeMap::new();
    let mut in_flight = None;
    for i in 0..puts {
        let (k, v) = (key(i), value(seed, i));
        match store.put(&k, &v) {
            Ok(_) => {
                acked.insert(k, v);
            }
            Err(_) => {
                in_flight = Some((k, v));
                break;
            }
        }
    }
    let cut_fired = store.device().fault_counters().power_cuts > 0;
    store.device().disable_faults();
    let report = store
        .hard_power_cycle()
        .expect("bring-up after power cut must succeed");
    let mut recovered = BTreeMap::new();
    for i in 0..KEYS {
        let k = key(i);
        let got = store.get(&k).expect("post-recovery read must succeed");
        recovered.insert(k, got);
    }
    CrashRun {
        acked,
        in_flight,
        cut_fired,
        report,
        recovered,
    }
}

/// Counts (acked-write violations, torn-value visibilities) in one run.
fn check(run: &CrashRun, label: &str) -> (u64, u64) {
    let mut acked_violations = 0;
    let mut torn_visible = 0;
    for (k, v) in &run.acked {
        let got = run.recovered.get(k).cloned().flatten();
        if let Some((ik, iv)) = &run.in_flight {
            if ik == k {
                if got.as_ref() != Some(v) && got.as_ref() != Some(iv) {
                    eprintln!("FAIL [{label}]: in-flight overwrite torn");
                    torn_visible += 1;
                }
                continue;
            }
        }
        if got.as_ref() != Some(v) {
            eprintln!(
                "FAIL [{label}]: acked key {:?} lost or corrupted",
                String::from_utf8_lossy(k)
            );
            acked_violations += 1;
        }
    }
    if let Some((ik, iv)) = &run.in_flight {
        if !run.acked.contains_key(ik) {
            let got = run.recovered.get(ik).cloned().flatten();
            if got.is_some() && got.as_ref() != Some(iv) {
                eprintln!("FAIL [{label}]: never-acked key visible torn");
                torn_visible += 1;
            }
        }
    }
    (acked_violations, torn_visible)
}

/// Sweeps one configuration until the countdown stops firing; re-runs every
/// fifth schedule to check determinism. Returns per-config counters.
fn sweep(
    seed: u64,
    execution: ExecutionModel,
    fetch: FetchPolicy,
    puts: usize,
    cap: u64,
) -> (u64, u64, u64, u64) {
    let label = format!("{execution:?}/{fetch:?}");
    let mut schedules = 0;
    let mut acked_violations = 0;
    let mut torn_visible = 0;
    let mut determinism_failures = 0;
    for cut in 0..cap {
        let run = run_schedule(seed, cut, execution, fetch, puts);
        let (a, t) = check(&run, &format!("{label} cut={cut}"));
        acked_violations += a;
        torn_visible += t;
        schedules += 1;
        if cut % 5 == 0 {
            let again = run_schedule(seed, cut, execution, fetch, puts);
            if run != again {
                eprintln!("FAIL [{label} cut={cut}]: replay diverged");
                determinism_failures += 1;
            }
        }
        if !run.cut_fired {
            println!(
                "  {label}: {schedules} schedules ({} crashed), quiescent at cut={cut}",
                schedules - 1
            );
            return (
                schedules,
                acked_violations,
                torn_visible,
                determinism_failures,
            );
        }
    }
    eprintln!("FAIL [{label}]: sweep never reached quiescence within {cap} schedules");
    (
        schedules,
        acked_violations + 1,
        torn_visible,
        determinism_failures,
    )
}

fn main() {
    let args = bench_args();
    let puts = args.ops.unwrap_or(14);
    let mut report = JsonReport::new("crashsweep");

    section(&format!(
        "power-cut sweep: {puts} durable PUTs per schedule, cut at every event index"
    ));
    let configs = [
        (ExecutionModel::Serial, FetchPolicy::QueueLocal, 1u64),
        (ExecutionModel::Pipelined, FetchPolicy::Reassembly, 2u64),
    ];
    let mut schedules = 0;
    let mut acked_violations = 0;
    let mut torn_visible = 0;
    let mut determinism_failures = 0;
    for (execution, fetch, seed) in configs {
        // Generous cap: ~2 events per PUT serial, ~12 with chunk fetches.
        let cap = 40 * puts as u64;
        let (s, a, t, d) = sweep(seed, execution, fetch, puts, cap);
        schedules += s;
        acked_violations += a;
        torn_visible += t;
        determinism_failures += d;
    }

    let failures = acked_violations + torn_visible + determinism_failures;
    println!(
        "  total: {schedules} schedules, {acked_violations} acked violations, \
         {torn_visible} torn reads, {determinism_failures} divergent replays"
    );
    report.push(
        "schedules",
        Value::object([
            ("schedules", Value::U64(schedules)),
            ("acked_violations", Value::U64(acked_violations)),
            ("torn_visible", Value::U64(torn_visible)),
            ("determinism_failures", Value::U64(determinism_failures)),
        ]),
    );
    // A gauged reference fill (no cut) showing the FTL journal pressure the
    // sweep exercises: the journal-depth gauge should climb monotonically
    // to the op count between checkpoints.
    section("telemetry: journal depth under a gauged reference fill");
    let mut dev = Device::builder()
        .nand_io(true)
        .queue_depth(64)
        .trace_gauges(true)
        .build();
    dev.measure_writes(puts, 200, TransferMethod::ByteExpress)
        .expect("reference fill must succeed");
    let events = dev.trace_events();
    let span = events.last().map(|e| e.at.as_ns()).unwrap_or(0);
    let ts = derive_timeseries(&events, Nanos::from_ns((span / 24).max(100)));
    let depth_peak = ts
        .get("ftl_journal_depth", "0")
        .map(|s| {
            println!(
                "  ftl_journal_depth {} peak={:.0}",
                sparkline(&s.points),
                s.peak()
            );
            s.peak()
        })
        .unwrap_or(0.0);
    report.push(
        "telemetry",
        Value::object([
            ("journal_depth_peak", Value::F64(depth_peak)),
            ("series", Value::U64(ts.series.len() as u64)),
            ("buckets", Value::U64(ts.buckets as u64)),
        ]),
    );
    report.set_trace_stats(events.len(), puts as u64);

    report.push("failures", Value::U64(failures));
    report.finish(args.json);
    if failures > 0 {
        eprintln!("crashsweep FAILED with {failures} violation(s)");
        std::process::exit(1);
    }
}
