//! reactor — the many-client async reactor demonstration and self-check,
//! emitted as `BENCH_reactor.json` and gated in CI via `bx-report --diff`.
//!
//! Three windows:
//!
//! * **async window** — N clients spread across 4 shards, each awaiting a
//!   stream of small ByteExpress writes through [`Reactor::run`]'s command
//!   futures. Measures virtual-time IOPS with every client's commands in
//!   flight together — concurrency the synchronous `execute` API cannot
//!   express.
//! * **sync QD1 baseline** — the same command count through the synchronous
//!   `execute` loop on one queue of an identical platform. The async/sync
//!   IOPS ratio is the headline: it must exceed 1.5x (the hard floor) for
//!   the reactor to be earning its keep.
//! * **byte-interface window** — MmioByte writes through the reactor on
//!   every shard concurrently: the per-queue completion routing this PR
//!   fixed, exercised through the dispatcher. Zero orphans, zero spurious.
//!
//! `cargo run -p bx-bench --release --bin reactor [-- ops] [--json]`

use bx_bench::{bench_args, section, JsonReport};
use bx_driver::reactor::{Reactor, ReactorConfig};
use bx_driver::{NvmeDriver, RetryPolicy, TransferMethod};
use bx_nvme::{IoOpcode, PassthruCmd};
use bx_pcie::LinkConfig;
use bx_ssd::{BlockFirmware, Controller, ControllerConfig, ExecutionModel, NandConfig, SystemBus};
use serde::Value;
use std::future::Future;
use std::pin::Pin;
use std::time::Instant;

/// Shards for the async windows (the acceptance floor is 4).
const SHARDS: usize = 4;
/// Concurrent clients per shard.
const CLIENTS_PER_SHARD: usize = 8;
/// Small-payload size (the paper's sweet spot).
const PAYLOAD: usize = 64;

type Task<T> = Pin<Box<dyn Future<Output = T>>>;

fn write_cmd(lba: u64, data: Vec<u8>) -> PassthruCmd {
    let mut cmd = PassthruCmd::to_device(IoOpcode::Write, 1, data);
    cmd.cdw10_15[0] = lba as u32;
    cmd
}

fn window_value(ops: u64, virt_us: f64, iops: f64, wall_ms: f64) -> Value {
    Value::object([
        ("ops", Value::U64(ops)),
        ("virtual_us", Value::F64(virt_us)),
        ("virtual_iops", Value::F64(iops)),
        ("wall_ms", Value::F64(wall_ms)),
    ])
}

/// N clients across SHARDS shards, each a future awaiting sequential
/// ByteExpress writes. Returns (ops, virtual_us, virtual_iops, wall_ms,
/// failures).
fn async_window(total_ops: usize, method: TransferMethod) -> (u64, f64, f64, f64, usize) {
    let mut reactor = Reactor::new(ReactorConfig {
        shards: SHARDS,
        nand_io: true,
        execution_model: ExecutionModel::Pipelined,
        retry_policy: Some(RetryPolicy::default()),
        ..ReactorConfig::default()
    })
    .expect("reactor construction: config is static and valid");
    let clients = SHARDS * CLIENTS_PER_SHARD;
    let per_client = total_ops.div_ceil(clients).max(1);
    let mut tasks: Vec<Task<Result<u64, String>>> = Vec::new();
    for shard in 0..SHARDS {
        for client in 0..CLIENTS_PER_SHARD {
            let handle = reactor.handle(shard);
            tasks.push(Box::pin(async move {
                let client_id = (shard * CLIENTS_PER_SHARD + client) as u64;
                let mut done = 0u64;
                for i in 0..per_client as u64 {
                    let lba = (client_id * per_client as u64 + i) * 8;
                    let data = vec![(client_id as u8) ^ (i as u8); PAYLOAD];
                    let c = handle
                        .submit(write_cmd(lba, data), method)
                        .await
                        .map_err(|e| format!("client {client_id}: {e:?}"))?;
                    if !c.status.is_success() {
                        return Err(format!("client {client_id}: status {:?}", c.status));
                    }
                    if c.latency().as_ns() == 0 {
                        return Err(format!("client {client_id}: zero latency"));
                    }
                    done += 1;
                }
                Ok(done)
            }));
        }
    }
    let t0 = Instant::now();
    let results = reactor.run(tasks);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut failures = 0usize;
    let mut ops = 0u64;
    for r in &results {
        match r {
            Ok(n) => ops += n,
            Err(e) => {
                eprintln!("FAIL: {e}");
                failures += 1;
            }
        }
    }
    let stats = reactor.stats();
    if stats.orphaned != 0 {
        eprintln!(
            "FAIL: {} completion(s) drained with no owning waiter",
            stats.orphaned
        );
        failures += 1;
    }
    let rec = reactor.recovery_stats();
    if rec.timeouts != 0 || rec.spurious_completions != 0 {
        eprintln!(
            "FAIL: recovery must stay quiet (timeouts={}, spurious={})",
            rec.timeouts, rec.spurious_completions
        );
        failures += 1;
    }
    if reactor.inflight() != 0 {
        eprintln!(
            "FAIL: {} command(s) still in flight after run",
            reactor.inflight()
        );
        failures += 1;
    }
    let virt = reactor.bus().clock.now();
    let virt_us = virt.as_ns() as f64 / 1e3;
    let iops = ops as f64 / (virt.as_ns() as f64 / 1e9).max(f64::MIN_POSITIVE);
    (ops, virt_us, iops, wall_ms, failures)
}

/// The same command count through the synchronous QD1 `execute` loop on an
/// identical single-queue platform.
fn sync_qd1_window(total_ops: usize) -> (u64, f64, f64, f64, usize) {
    let bus = SystemBus::new(LinkConfig::gen2_x8(), 64 << 20, 2);
    let cfg = ControllerConfig {
        nand: NandConfig::small(),
        execution_model: ExecutionModel::Pipelined,
        ..ControllerConfig::default()
    };
    let mut ctrl = Controller::new(bus.clone(), cfg, |dram| {
        Box::new(BlockFirmware::new(dram, true))
    });
    let mut driver = NvmeDriver::new(bus.clone());
    let qid = driver.create_io_queue(&mut ctrl, 256).expect("queue");
    let mut failures = 0usize;
    let t0 = Instant::now();
    for i in 0..total_ops as u64 {
        let data = vec![i as u8; PAYLOAD];
        match driver.execute(
            qid,
            &mut ctrl,
            &write_cmd(i * 8, data),
            TransferMethod::ByteExpress,
        ) {
            Ok(c) if c.status.is_success() => {}
            other => {
                eprintln!("FAIL: sync write {i}: {other:?}");
                failures += 1;
            }
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let virt = bus.clock.now();
    let virt_us = virt.as_ns() as f64 / 1e3;
    let iops = total_ops as f64 / (virt.as_ns() as f64 / 1e9).max(f64::MIN_POSITIVE);
    (total_ops as u64, virt_us, iops, wall_ms, failures)
}

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(2_000).max(SHARDS * CLIENTS_PER_SHARD);
    let mut report = JsonReport::new("reactor");
    let mut failures = 0usize;

    section(&format!(
        "async window ({n} ByteExpress writes, {SHARDS} shards x {CLIENTS_PER_SHARD} clients)"
    ));
    let (a_ops, a_virt, a_iops, a_wall, a_fail) = async_window(n, TransferMethod::ByteExpress);
    println!(
        "  {a_ops} commands in {a_virt:.1} us virtual = {a_iops:.0} IOPS ({a_wall:.2} ms wall)"
    );
    failures += a_fail;
    report.push("async_window", window_value(a_ops, a_virt, a_iops, a_wall));

    section(&format!(
        "sync QD1 baseline ({n} ByteExpress writes, 1 queue)"
    ));
    let (s_ops, s_virt, s_iops, s_wall, s_fail) = sync_qd1_window(n);
    println!(
        "  {s_ops} commands in {s_virt:.1} us virtual = {s_iops:.0} IOPS ({s_wall:.2} ms wall)"
    );
    failures += s_fail;
    report.push("sync_qd1", window_value(s_ops, s_virt, s_iops, s_wall));

    let speedup = a_iops / s_iops.max(f64::MIN_POSITIVE);
    println!("\n  async/sync virtual-time speedup: {speedup:.2}x");
    if speedup < 1.5 {
        eprintln!("FAIL: async window must beat sync QD1 by >= 1.5x, got {speedup:.2}x");
        failures += 1;
    }
    report.push("speedup_vs_sync", Value::F64(speedup));

    section(&format!(
        "byte-interface window ({n} MmioByte writes through the dispatcher)"
    ));
    let (m_ops, m_virt, m_iops, m_wall, m_fail) = async_window(n, TransferMethod::MmioByte);
    println!(
        "  {m_ops} commands in {m_virt:.1} us virtual = {m_iops:.0} IOPS ({m_wall:.2} ms wall)"
    );
    failures += m_fail;
    report.push("mmio_window", window_value(m_ops, m_virt, m_iops, m_wall));

    report.push("failures", Value::U64(failures as u64));
    if failures == 0 {
        println!(
            "\nOK: {} concurrent clients on {SHARDS} shards, {speedup:.2}x over sync QD1",
            SHARDS * CLIENTS_PER_SHARD
        );
    }
    // The JSON document is always the final stdout line (CI tails it).
    report.finish(args.json);
    if failures > 0 {
        eprintln!("reactor validation FAILED with {failures} error(s)");
        std::process::exit(1);
    }
}
