//! trace — the flight-recorder demonstration and self-check binary.
//!
//! Runs a MixGraph write burst per transfer method on a traced device, then
//! writes two artifacts per method under `target/trace/`:
//!
//! * `<method>.trace.json` — Chrome-trace/Perfetto format (load via
//!   `chrome://tracing` or <https://ui.perfetto.dev>),
//! * `<method>.timeline.txt` — the human-readable virtual-time dump.
//!
//! Before exiting it validates its own output: every emitted JSON file must
//! parse, and every acknowledged command must reconstruct into a complete
//! submit → fetch → complete span. Any violation exits nonzero, which makes
//! this binary double as the CI check for the tracing subsystem.
//!
//! `cargo run -p bx-bench --release --bin trace [-- n_ops] [--json]`

use bx_bench::{bench_args, paper_methods, section, JsonReport};
use bx_workloads::MixGraph;
use byteexpress::{
    chrome_trace_json, reconstruct_spans, timeline, CmdKey, Device, MetricsRegistry, TransferMethod,
};
use serde::Value;
use std::path::Path;

/// One traced burst; returns (acked command keys, events) for validation.
fn traced_burst(dev: &mut Device, n: usize, method: TransferMethod) -> Vec<CmdKey> {
    // Byte-interface spans carry the submitting queue's real id, same as
    // every ring-path method (the window echoes it on the completion).
    let qid_raw = dev.queues()[0].0;
    let mut gen = MixGraph::with_defaults();
    let mut acked = Vec::with_capacity(n);
    for i in 0..n {
        let size = gen.sample_value_size().clamp(1, 2048);
        let data = vec![(i % 251) as u8; size];
        let completion = dev
            .write((i % 512) as u64 * 16, &data, method)
            .expect("traced write must succeed");
        acked.push(CmdKey::new(qid_raw, completion.cid));
    }
    acked
}

/// Validates one method's artifacts; returns the number of failures found.
fn validate(
    label: &str,
    json_text: &str,
    events: &[byteexpress::Event],
    acked: &[CmdKey],
) -> usize {
    let mut failures = 0;
    match Value::parse_json(json_text) {
        Ok(doc) => {
            let n_trace_events = doc
                .get("traceEvents")
                .and_then(|t| t.as_array())
                .map_or(0, |a| a.len());
            if n_trace_events == 0 {
                eprintln!("FAIL [{label}]: chrome trace has no traceEvents");
                failures += 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL [{label}]: chrome trace is not valid JSON: {e}");
            failures += 1;
        }
    }
    let spans = reconstruct_spans(events);
    for key in acked {
        let complete = spans.iter().any(|s| s.key == *key && s.is_complete());
        if !complete {
            eprintln!("FAIL [{label}]: no complete span for acked command {key}");
            failures += 1;
        }
    }
    failures
}

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(200);
    let out_dir = Path::new("target").join("trace");
    std::fs::create_dir_all(&out_dir).expect("create target/trace");

    let mut report = JsonReport::new("trace");
    let mut failures = 0usize;

    for method in paper_methods() {
        let label = method.label();
        section(&format!(
            "flight-recording {n} MixGraph writes via {method}"
        ));

        let mut dev = Device::builder().nand_io(false).trace(true).build();
        let acked = traced_burst(&mut dev, n, method);
        let events = dev.trace_events();

        let trace_path = out_dir.join(format!("{label}.trace.json"));
        let timeline_path = out_dir.join(format!("{label}.timeline.txt"));
        let json_text = chrome_trace_json(&events);
        std::fs::write(&trace_path, &json_text).expect("write chrome trace");
        std::fs::write(&timeline_path, timeline(&events)).expect("write timeline");

        let metrics = MetricsRegistry::from_events(&events);
        let submitted = metrics.counter_total("commands_submitted");
        println!(
            "  {} events, {} commands submitted, artifacts: {} / {}",
            events.len(),
            submitted,
            trace_path.display(),
            timeline_path.display()
        );
        print!("{metrics}");

        let method_failures = validate(label, &json_text, &events, &acked);
        if method_failures == 0 {
            println!(
                "  OK: JSON valid, all {} acked commands have complete spans",
                acked.len()
            );
        }
        failures += method_failures;

        report.push(
            label,
            Value::object([
                ("events", Value::U64(events.len() as u64)),
                ("commands_submitted", Value::U64(submitted)),
                ("acked", Value::U64(acked.len() as u64)),
                ("failures", Value::U64(method_failures as u64)),
                ("trace_file", Value::Str(trace_path.display().to_string())),
            ]),
        );
    }

    report.finish(args.json);
    if failures > 0 {
        eprintln!("trace validation FAILED with {failures} error(s)");
        std::process::exit(1);
    }
}
