//! Fig 6 — KV-SSD evaluation with NAND I/O enabled: (a) MixGraph PUTs,
//! (b) FillRandom with 128-byte values. PCIe traffic and average write
//! throughput, with 1st–99th percentile bars.
//!
//! `cargo run -p bx-bench --release --bin fig6 [-- n_ops]`

use bx_bench::{bench_args, fmt_bytes, paper_methods, section, JsonReport};
use bx_kvssd::{KvStore, KvStoreConfig};
use bx_workloads::{FillRandom, KvOp, MixGraph};
use byteexpress::{LatencySamples, TransferMethod};
use serde::Value;

struct Outcome {
    traffic: u64,
    kops: f64,
    p1_kops: f64,
    p99_kops: f64,
}

fn run(method: TransferMethod, ops: &[KvOp]) -> Outcome {
    let mut store = KvStore::open(KvStoreConfig {
        method,
        nand_io: true,
        ..Default::default()
    });
    let before = store.device().traffic();
    let t0 = store.now();
    let mut samples = LatencySamples::with_capacity(ops.len());
    for op in ops {
        let completion = store.put(&op.key, &op.value).expect("put");
        samples.record(completion.latency());
    }
    let traffic = store.device().traffic().since(&before).total_bytes();
    let elapsed = store.now() - t0;
    Outcome {
        traffic,
        kops: ops.len() as f64 / elapsed.as_secs_f64() / 1e3,
        // Error bars: throughput at the 99th/1st percentile per-op latency
        // (fast ops bound the top whisker, slow ops the bottom). KvStore
        // puts run serialized, so the reciprocal-latency figure is valid.
        p1_kops: samples.serialized_throughput_at_percentile(99.0) / 1e3,
        p99_kops: samples.serialized_throughput_at_percentile(1.0) / 1e3,
    }
}

fn report(title: &str, ops: &[KvOp], prefix: &str, json: &mut JsonReport) {
    section(title);
    println!(
        "{:>12} {:>16} {:>12} {:>14} {:>22}",
        "method", "PCIe traffic", "bytes/op", "throughput", "p1..p99 range"
    );
    let mut rows = Vec::new();
    for method in paper_methods() {
        let o = run(method, ops);
        println!(
            "{:>12} {:>14} B {:>10.0} B {:>9.1} Kops/s {:>9.1}..{:.1} Kops/s",
            method.to_string(),
            fmt_bytes(o.traffic),
            o.traffic as f64 / ops.len() as f64,
            o.kops,
            o.p1_kops,
            o.p99_kops
        );
        json.push(
            format!("{prefix}_{}", method.label()),
            Value::object([
                ("wire_bytes", Value::U64(o.traffic)),
                ("kops_per_sec", Value::F64(o.kops)),
                ("p1_kops", Value::F64(o.p1_kops)),
                ("p99_kops", Value::F64(o.p99_kops)),
            ]),
        );
        rows.push(o);
    }
    let (prp, bs, bx) = (&rows[0], &rows[1], &rows[2]);
    println!(
        "BX traffic cut vs PRP: {:.1}%   BX/BandSlim traffic ratio: {:.2}x   \
         BX throughput vs BandSlim: {:+.1}%",
        100.0 * (1.0 - bx.traffic as f64 / prp.traffic as f64),
        bx.traffic as f64 / bs.traffic as f64,
        100.0 * (bx.kops / bs.kops - 1.0)
    );
}

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(50_000);
    let mut json = JsonReport::new("fig6");

    let mixgraph: Vec<KvOp> = MixGraph::with_defaults().take(n).collect();
    report(
        &format!("Fig 6(a): MixGraph, {n} PUTs, NAND on (paper: BX traffic ~1.75x BandSlim, throughput ~+8%)"),
        &mixgraph,
        "mixgraph",
        &mut json,
    );

    let fillrandom: Vec<KvOp> = FillRandom::paper_default().take(n).collect();
    report(
        &format!("Fig 6(b): FillRandom 128 B values, {n} PUTs, NAND on (paper: BX lowest traffic, ~+1 Kops/s)"),
        &fillrandom,
        "fillrandom",
        &mut json,
    );
    json.finish(args.json);
}
