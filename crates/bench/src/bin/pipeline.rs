//! pipeline — event-driven pipelined execution, measured and self-checked.
//!
//! Runs one fixed-seed multi-queue ByteExpress workload twice — once under
//! the default `Serial` execution model (the controller clock stalls through
//! every NAND program) and once under `Pipelined` (dispatch frees the
//! controller; CQEs post at their own `complete_at` via the deferred event
//! queue). Verifies the tentpole contract before exiting:
//!
//! * `Pipelined` at 4 SQs / QD 8 delivers **≥ 2×** the window IOPS of
//!   `Serial` on the same schedule (`throughput_over_window`, not the
//!   serialized 1/latency figure),
//! * every non-doorbell wire byte is identical between the two runs —
//!   overlap changes *when*, never *what* crosses the wire,
//! * mean single-command latency at QD 1 stays within 5% of `Serial`
//!   (nothing to overlap → same per-op cost),
//! * the pipelined trace proves the overlap per-stage: at least one NAND
//!   busy window `[start, start+busy]` contains a later SQE fetch, and every
//!   dispatch defers exactly one CQE that posts in nondecreasing time,
//! * all payloads read back intact in both runs.
//!
//! A QD × execution-model sweep (window IOPS + p99 latency) follows the
//! self-check; with `--json` it lands in `BENCH_pipeline.json` as the perf
//! trajectory's first data point. Any violation exits nonzero, making this
//! the CI self-check for the pipelined execution subsystem.
//!
//! `cargo run -p bx-bench --release --bin pipeline [-- qd] [--json]`

use bx_bench::{bench_args, fmt_bytes, json_of, section, JsonReport};
use byteexpress::{
    derive_timeseries, openmetrics, sparkline, validate_openmetrics, Device, Event, EventKind,
    ExecutionModel, LatencySamples, MetricsRegistry, Nanos, QueueBatch, QueueId, TransferMethod,
};
use serde::Value;

/// Submission queues for the headline comparison and the sweep.
const QUEUES: usize = 4;

/// Deterministic payload schedule: (lba, bytes) per op, identical across
/// runs and models. Sizes walk 16..=256 B — 1 to 4 ByteExpress chunks.
fn schedule(n: usize) -> Vec<(u64, Vec<u8>)> {
    let mut seed: u64 = 0xB1E55ED;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let len = 16 + (seed >> 33) as usize % 241;
        let data = (0..len)
            .map(|j| ((seed as usize + j) % 256) as u8)
            .collect();
        ops.push((i as u64 * 8, data));
    }
    ops
}

/// Splits the schedule round-robin-free: queue `q` gets ops `q·qd..(q+1)·qd`.
fn split(queues: &[QueueId], ops: &[(u64, Vec<u8>)], qd: usize) -> Vec<QueueBatch> {
    queues
        .iter()
        .enumerate()
        .map(|(q, &qid)| (qid, ops[q * qd..(q + 1) * qd].to_vec()))
        .collect()
}

fn build(model: ExecutionModel) -> Device {
    Device::builder()
        .nand_io(true)
        .queue_count(QUEUES)
        .queue_depth(64)
        .execution_model(model)
        .build()
}

struct RunStats {
    elapsed: Nanos,
    window_iops: f64,
    wire: u64,
    latencies: LatencySamples,
    read_back_failures: usize,
}

/// Runs `qd` commands on each of the 4 queues (all submitted before any
/// drain, so overlap is possible) and measures the completion window.
fn run(model: ExecutionModel, qd: usize) -> RunStats {
    let mut dev = build(model);
    let queues: Vec<QueueId> = dev.queues().to_vec();
    let ops = schedule(QUEUES * qd);
    let batches = split(&queues, &ops, qd);

    let before = dev.traffic();
    let t0 = dev.now();
    let completions = dev
        .write_batch_multi(&batches, TransferMethod::ByteExpress)
        .expect("pipelined writes must succeed");
    let elapsed = dev.now() - t0;
    let wire = dev.traffic().since(&before).non_doorbell_wire_bytes();

    let all: Vec<_> = completions.into_iter().flatten().collect();
    let first_submit = all.iter().map(|c| c.submitted_at).min().unwrap_or(t0);
    let last_complete = all.iter().map(|c| c.completed_at).max().unwrap_or(t0);
    let latencies: LatencySamples = all.iter().map(|c| c.latency()).collect();
    let window_iops = latencies.throughput_over_window(first_submit, last_complete);

    // Read-back verification happens outside the measured window.
    let read_back_failures = ops
        .iter()
        .filter(|(lba, data)| dev.read(*lba, data.len()).as_deref() != Ok(data))
        .count();

    RunStats {
        elapsed,
        window_iops,
        wire,
        latencies,
        read_back_failures,
    }
}

/// Replays the headline workload traced (with utilization gauges) under
/// `Pipelined`, returning the raw event stream for the telemetry sections
/// alongside the per-stage overlap evidence: (NAND-busy windows containing
/// a later SQE fetch, deferred-CQE count, I/O CQE posts, posts
/// nondecreasing in time).
fn overlap_evidence(qd: usize) -> (Vec<Event>, (usize, usize, usize, bool)) {
    let mut dev = Device::builder()
        .nand_io(true)
        .queue_count(QUEUES)
        .queue_depth(64)
        .execution_model(ExecutionModel::Pipelined)
        .trace_gauges(true)
        .build();
    let queues: Vec<QueueId> = dev.queues().to_vec();
    let ops = schedule(QUEUES * qd);
    let batches = split(&queues, &ops, qd);
    dev.write_batch_multi(&batches, TransferMethod::ByteExpress)
        .expect("traced run must succeed");

    let events = dev.trace_events();
    let mut overlaps = 0usize;
    for (i, e) in events.iter().enumerate() {
        let EventKind::NandOp { start, busy, .. } = e.kind else {
            continue;
        };
        let (s, d) = (start, start + busy);
        overlaps += events[i + 1..]
            .iter()
            .filter(|f| matches!(f.kind, EventKind::SqeFetch { .. }) && f.at > s && f.at < d)
            .count();
    }
    let deferred = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CqeDeferred { .. }))
        .count();
    // Admin bring-up CQEs ride queue id 0; only I/O completions count.
    let posts: Vec<Nanos> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CqePost { .. }))
        .filter(|e| e.cmd.is_some_and(|c| c.qid != 0))
        .map(|e| e.at)
        .collect();
    let ordered = posts.windows(2).all(|w| w[0] <= w[1]);
    let evidence = (overlaps, deferred, posts.len(), ordered);
    (events, evidence)
}

/// Steady-state profile window: one traced `Pipelined` device driven for
/// `rounds` rounds of `qd` commands per queue, NAND I/O off so the window
/// exercises the submission/completion engine rather than simulated NAND
/// latency. Returns (trace events, commands issued); the pair feeds the
/// report's `self_profile` so `events_per_sec` reflects sustained hot-path
/// throughput instead of bring-up cost.
fn steady_state_window(rounds: usize, qd: usize) -> (usize, u64) {
    let mut dev = Device::builder()
        .nand_io(false)
        .queue_count(QUEUES)
        .queue_depth(64)
        .execution_model(ExecutionModel::Pipelined)
        .trace(true)
        .build();
    let queues: Vec<QueueId> = dev.queues().to_vec();
    let ops = schedule(QUEUES * qd);
    let batches = split(&queues, &ops, qd);
    let mut commands = 0u64;
    for _ in 0..rounds {
        dev.write_batch_multi(&batches, TransferMethod::ByteExpress)
            .expect("steady-state writes must succeed");
        commands += (QUEUES * qd) as u64;
    }
    (dev.trace_events().len(), commands)
}

/// Mean single-command write latency at QD 1 under `model`.
fn qd1_mean(model: ExecutionModel) -> Nanos {
    build(model)
        .measure_writes(32, 64, TransferMethod::ByteExpress)
        .expect("QD1 writes must succeed")
        .latencies
        .mean()
}

fn run_value(n: usize, r: &RunStats) -> Value {
    Value::object([
        ("ops", Value::U64(n as u64)),
        ("elapsed_ns", Value::U64(r.elapsed.as_ns())),
        ("window_iops", Value::F64(r.window_iops)),
        ("non_doorbell_wire_bytes", Value::U64(r.wire)),
        ("mean_ns", Value::U64(r.latencies.mean().as_ns())),
        ("p99_ns", Value::U64(r.latencies.percentile(99.0).as_ns())),
        (
            "read_back_failures",
            Value::U64(r.read_back_failures as u64),
        ),
    ])
}

fn main() {
    let args = bench_args();
    let qd = args.ops.unwrap_or(8).max(1);
    let n = QUEUES * qd;
    let mut report = JsonReport::new("pipeline");
    let mut failures = 0usize;

    section(&format!(
        "{n} fixed-seed ByteExpress writes over {QUEUES} queues at QD {qd}, Serial vs Pipelined"
    ));
    let serial = run(ExecutionModel::Serial, qd);
    let pipelined = run(ExecutionModel::Pipelined, qd);
    for (label, r) in [("serial", &serial), ("pipelined", &pipelined)] {
        println!(
            "  {label:<10} elapsed={:>12} ns  window IOPS={:<12.0} p99={} ns  non-doorbell wire={} B",
            r.elapsed.as_ns(),
            r.window_iops,
            r.latencies.percentile(99.0).as_ns(),
            fmt_bytes(r.wire),
        );
        if r.read_back_failures > 0 {
            eprintln!(
                "FAIL [{label}]: {} payloads corrupted",
                r.read_back_failures
            );
            failures += 1;
        }
    }

    let speedup = pipelined.window_iops / serial.window_iops.max(f64::MIN_POSITIVE);
    println!("  pipelined/serial IOPS: {speedup:.2}x");
    if qd >= 8 && speedup < 2.0 {
        eprintln!("FAIL: Pipelined must deliver >= 2x Serial IOPS at QD {qd}, got {speedup:.2}x");
        failures += 1;
    }
    if serial.wire != pipelined.wire {
        eprintln!(
            "FAIL: non-doorbell wire bytes must be byte-identical ({} vs {})",
            serial.wire, pipelined.wire
        );
        failures += 1;
    }

    section("QD 1 single-command latency (nothing to overlap)");
    let (s1, p1) = (
        qd1_mean(ExecutionModel::Serial),
        qd1_mean(ExecutionModel::Pipelined),
    );
    let qd1_diff = s1.as_ns().abs_diff(p1.as_ns()) as f64 / s1.as_ns().max(1) as f64;
    println!(
        "  serial mean={} ns  pipelined mean={} ns  diff={:.2}%",
        s1.as_ns(),
        p1.as_ns(),
        qd1_diff * 100.0
    );
    if qd1_diff > 0.05 {
        eprintln!(
            "FAIL: QD1 mean latency must stay within 5% of Serial, got {:.2}%",
            qd1_diff * 100.0
        );
        failures += 1;
    }

    section("per-stage overlap evidence (pipelined trace)");
    let (events, (overlaps, deferred, posts, ordered)) = overlap_evidence(qd);
    println!(
        "  SQE fetches inside NAND busy windows: {overlaps}   deferred CQEs: {deferred}/{n}   I/O CQE posts: {posts}/{n} ({})",
        if ordered { "nondecreasing" } else { "OUT OF ORDER" }
    );
    if overlaps == 0 {
        eprintln!("FAIL: no SQE fetch landed inside any NAND busy window");
        failures += 1;
    }
    if deferred != n || posts != n || !ordered {
        eprintln!("FAIL: every dispatch must defer exactly one CQE that posts in time order");
        failures += 1;
    }

    section("steady-state profile window (pipelined, NAND off)");
    let (profile_events, profile_cmds) = steady_state_window(320, qd);
    println!("  {profile_cmds} commands traced in steady state, {profile_events} trace events");
    if profile_events == 0 {
        eprintln!("FAIL: steady-state window produced no trace events");
        failures += 1;
    }

    section("QD sweep, window IOPS + p99 (4 queues)");
    println!(
        "{:>6} {:>16} {:>16} {:>9} {:>14} {:>14}",
        "QD", "serial IOPS", "pipelined IOPS", "speedup", "serial p99", "pipelined p99"
    );
    let mut sweep = Vec::new();
    for sweep_qd in [1usize, 2, 4, 8, 16] {
        let s = run(ExecutionModel::Serial, sweep_qd);
        let p = run(ExecutionModel::Pipelined, sweep_qd);
        println!(
            "{:>6} {:>16.0} {:>16.0} {:>8.2}x {:>11} ns {:>11} ns",
            sweep_qd,
            s.window_iops,
            p.window_iops,
            p.window_iops / s.window_iops.max(f64::MIN_POSITIVE),
            s.latencies.percentile(99.0).as_ns(),
            p.latencies.percentile(99.0).as_ns(),
        );
        failures += s.read_back_failures + p.read_back_failures;
        sweep.push(Value::object([
            ("qd", Value::U64(sweep_qd as u64)),
            ("queues", Value::U64(QUEUES as u64)),
            ("serial_iops", Value::F64(s.window_iops)),
            ("pipelined_iops", Value::F64(p.window_iops)),
            (
                "serial_p99_ns",
                Value::U64(s.latencies.percentile(99.0).as_ns()),
            ),
            (
                "pipelined_p99_ns",
                Value::U64(p.latencies.percentile(99.0).as_ns()),
            ),
        ]));
    }

    report.push("serial", run_value(n, &serial));
    report.push("pipelined", run_value(n, &pipelined));
    report.push("iops_speedup", Value::F64(speedup));
    report.push(
        "qd1_latency",
        Value::object([
            ("serial_mean_ns", Value::U64(s1.as_ns())),
            ("pipelined_mean_ns", Value::U64(p1.as_ns())),
            ("diff_fraction", Value::F64(qd1_diff)),
        ]),
    );
    report.push(
        "overlap",
        Value::object([
            (
                "nand_window_sqe_fetch_overlaps",
                Value::U64(overlaps as u64),
            ),
            ("cqe_deferred", Value::U64(deferred as u64)),
            ("io_cqe_posts", Value::U64(posts as u64)),
            ("posts_nondecreasing", Value::Bool(ordered)),
        ]),
    );
    report.push("qd_sweep", Value::Array(sweep));
    report.push(
        "steady_state",
        Value::object([
            ("commands", Value::U64(profile_cmds)),
            ("trace_events", Value::U64(profile_events as u64)),
        ]),
    );

    // ---- continuous telemetry from the traced (gauged) run -------------
    section("telemetry: virtual-time series (pipelined, gauges on)");
    let span = events.last().map(|e| e.at.as_ns()).unwrap_or(0);
    let interval = Nanos::from_ns((span / 32).max(1_000));
    let ts = derive_timeseries(&events, interval);
    println!(
        "  {} series over {} buckets of {} ns",
        ts.series.len(),
        ts.buckets,
        ts.interval.as_ns()
    );
    for (metric, scope) in [
        ("wire_bytes", ""),
        ("doorbells", ""),
        ("inflight_cmds", "1"),
        ("completions_in_flight", "0"),
        ("ftl_journal_depth", "0"),
    ] {
        if let Some(s) = ts.get(metric, scope) {
            let name = if scope.is_empty() {
                metric.to_string()
            } else {
                format!("{metric}[{scope}]")
            };
            println!("  {name:<24} {} peak={:.0}", sparkline(&s.points), s.peak());
        }
    }
    let gauge_series = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GaugeSample { .. }))
        .count();
    if gauge_series == 0 {
        eprintln!("FAIL: gauged trace produced no GaugeSample events");
        failures += 1;
    }

    section("telemetry: OpenMetrics exposition + totals agreement");
    let registry = MetricsRegistry::from_events(&events);
    let exposition = openmetrics(&registry);
    let om = match validate_openmetrics(&exposition) {
        Ok(summary) => {
            let mut mismatched = 0usize;
            for (name, total) in &summary.counter_totals {
                if registry.counter_total(name) != *total {
                    eprintln!(
                        "FAIL: OpenMetrics total for {name} = {total} disagrees with registry {}",
                        registry.counter_total(name)
                    );
                    mismatched += 1;
                }
            }
            println!(
                "  {} bytes, {} counter families, {} histogram families, {} gauge families — \
                 validated, totals {}",
                exposition.len(),
                summary.counter_totals.len(),
                summary.histogram_counts.len(),
                summary.gauge_scopes.len(),
                if mismatched == 0 { "agree" } else { "DISAGREE" }
            );
            if mismatched > 0 || summary.counter_totals.is_empty() {
                eprintln!("FAIL: OpenMetrics exposition must carry agreeing counter totals");
                failures += 1;
            }
            Value::object([
                ("bytes", Value::U64(exposition.len() as u64)),
                (
                    "counter_families",
                    Value::U64(summary.counter_totals.len() as u64),
                ),
                (
                    "histogram_families",
                    Value::U64(summary.histogram_counts.len() as u64),
                ),
                ("totals_agree", Value::Bool(mismatched == 0)),
            ])
        }
        Err(e) => {
            eprintln!("FAIL: OpenMetrics exposition did not validate: {e}");
            failures += 1;
            Value::object([("error", Value::Str(e))])
        }
    };
    report.push("timeseries", json_of(&ts));
    report.push("openmetrics", om);
    report.set_trace_stats(profile_events, profile_cmds);

    report.push("failures", Value::U64(failures as u64));

    if failures == 0 {
        println!(
            "\nOK: pipelined execution delivered {speedup:.2}x serial IOPS with byte-identical \
             payload traffic and QD1 latency within {:.2}%",
            qd1_diff * 100.0
        );
    }
    // The JSON document is always the final stdout line (CI tails it).
    report.finish(args.json);
    if failures > 0 {
        eprintln!("pipeline validation FAILED with {failures} error(s)");
        std::process::exit(1);
    }
}
