//! Fig 5 — PCIe traffic and average latency for various payload sizes across
//! PRP, BandSlim and ByteExpress (NAND off).
//!
//! `cargo run -p bx-bench --release --bin fig5 [-- n_ops]`

use bx_bench::{bench_args, fmt_bytes, paper_methods, section, JsonReport};
use bx_workloads::fig5_sizes;
use byteexpress::{Device, TransferMethod};

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(20_000);
    let mut report = JsonReport::new("fig5");
    let mut dev = Device::builder().nand_io(false).build();

    section("Fig 5 (top): PCIe traffic per op, bytes");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "payload", "PRP", "BandSlim", "ByteExpress", "BX vs PRP", "BX vs BandSlim"
    );
    let mut traffic: Vec<[u64; 3]> = Vec::new();
    for &size in &fig5_sizes() {
        let mut row = [0u64; 3];
        for (i, method) in paper_methods().into_iter().enumerate() {
            let r = dev.measure_writes(n, size, method).unwrap();
            dev.reset_measurements();
            row[i] = r.traffic.total_bytes() / n as u64;
            report.push_run(format!("{}_{size}b", method.label()), &r);
        }
        println!(
            "{:>7}B {:>12} {:>12} {:>12} {:>13.1}% {:>13.1}%",
            size,
            fmt_bytes(row[0]),
            fmt_bytes(row[1]),
            fmt_bytes(row[2]),
            100.0 * (1.0 - row[2] as f64 / row[0] as f64),
            100.0 * (1.0 - row[2] as f64 / row[1] as f64),
        );
        traffic.push(row);
    }

    section("Fig 5 (bottom): average transfer latency");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "payload", "PRP", "BandSlim", "ByteExpress", "BX vs PRP", "BX vs BandSlim"
    );
    for &size in &fig5_sizes() {
        let mut lat = [0u64; 3];
        for (i, method) in paper_methods().into_iter().enumerate() {
            let r = dev.measure_writes(n, size, method).unwrap();
            dev.reset_measurements();
            lat[i] = r.mean_latency().as_ns();
        }
        println!(
            "{:>7}B {:>10}ns {:>10}ns {:>10}ns {:>13.1}% {:>13.1}%",
            size,
            fmt_bytes(lat[0]),
            fmt_bytes(lat[1]),
            fmt_bytes(lat[2]),
            100.0 * (1.0 - lat[2] as f64 / lat[0] as f64),
            100.0 * (1.0 - lat[2] as f64 / lat[1] as f64),
        );
    }

    // Hybrid reference series (§4.2's threshold switch).
    section("Hybrid (256 B threshold) reference series");
    println!("{:>8} {:>14} {:>12}", "payload", "traffic/op", "latency");
    for &size in &fig5_sizes() {
        let r = dev
            .measure_writes(n, size, TransferMethod::hybrid_default())
            .unwrap();
        dev.reset_measurements();
        println!(
            "{:>7}B {:>12} B {:>12}",
            size,
            fmt_bytes(r.traffic.total_bytes() / n as u64),
            r.mean_latency()
        );
        report.push_run(format!("hybrid_{size}b"), &r);
    }

    println!(
        "\nShape checks: ByteExpress cuts >90% of PRP traffic at 64 B \
         (paper: 96.3%), beats BandSlim's\ntraffic throughout 64 B–4 KB \
         (paper: up to 39.8%), wins latency in 32–128 B (paper: up to \
         40.4%),\nand hands the latency lead back to PRP past the few-hundred-\
         byte crossover (paper: ~256 B)."
    );
    report.finish(args.json);
}
