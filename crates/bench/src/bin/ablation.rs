//! Ablations beyond the paper's figures — the design-choice sensitivities
//! DESIGN.md calls out:
//!
//! 1. Hybrid threshold sweep (where does the §4.2 switch belong?).
//! 2. Reassembly-mode tax (the §3.3.2 extension's header overhead).
//! 3. Max-Payload-Size sensitivity (TLP segmentation granularity).
//! 4. PCIe generation sensitivity (§5: "higher-bandwidth PCIe generations
//!    could influence the relative impact of data movement optimizations").
//! 5. SGL threshold (§5: Linux's 32 KB default vs reconfigured).
//!
//! `cargo run -p bx-bench --release --bin ablation [-- n_ops]`

use bx_bench::{bench_args, fmt_bytes, section, JsonReport};
use byteexpress::{Device, FetchPolicy, LinkConfig, TransferMethod};
use serde::Value;

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(5_000);
    let mut json = JsonReport::new("ablation");

    // --- 1. hybrid threshold ---
    section("Ablation 1: hybrid threshold sweep (mixed 64 B..4 KB payloads)");
    let sizes: Vec<usize> = (0..n)
        .map(|i| [64, 64, 64, 128, 128, 256, 512, 1024, 2048, 4096][i % 10])
        .collect();
    println!(
        "{:>11} {:>14} {:>14}",
        "threshold", "mean latency", "traffic"
    );
    for threshold in [64usize, 128, 256, 512, 1024, 4096] {
        let mut dev = Device::builder().nand_io(false).build();
        let mut total = byteexpress::Nanos::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let c = dev
                .write(
                    (i % 256) as u64 * 16,
                    &vec![1; size],
                    TransferMethod::Hybrid { threshold },
                )
                .unwrap();
            total += c.latency();
        }
        println!(
            "{:>10}B {:>14} {:>12} B",
            threshold,
            total / n as u64,
            fmt_bytes(dev.traffic().total_bytes())
        );
        json.push(
            format!("hybrid_threshold_{threshold}b"),
            Value::object([
                ("mean_latency_ns", Value::U64((total / n as u64).as_ns())),
                ("wire_bytes", Value::U64(dev.traffic().total_bytes())),
            ]),
        );
    }

    // --- 2. reassembly tax ---
    section("Ablation 2: queue-local vs out-of-order reassembly (ByteExpress, 200 B payloads)");
    println!(
        "{:>12} {:>10} {:>14} {:>14}",
        "policy", "chunks/op", "traffic/op", "mean latency"
    );
    for policy in [FetchPolicy::QueueLocal, FetchPolicy::Reassembly] {
        let mut dev = Device::builder()
            .nand_io(false)
            .fetch_policy(policy)
            .build();
        let r = dev
            .measure_writes(n, 200, TransferMethod::ByteExpress)
            .unwrap();
        let chunks = dev.controller().stats().chunks_fetched as f64 / n as f64;
        println!(
            "{:>12} {:>10.1} {:>12} B {:>14}",
            format!("{policy:?}"),
            chunks,
            fmt_bytes(r.traffic.total_bytes() / n as u64),
            r.mean_latency()
        );
        json.push_run(format!("reassembly_tax_{policy:?}"), &r);
    }
    println!("(8-byte chunk headers -> 56 payload bytes/chunk -> slightly more chunks)");

    // --- 3. MPS sensitivity ---
    section("Ablation 3: Max Payload Size sensitivity (PRP 4 KB writes)");
    println!("{:>6} {:>14} {:>14}", "MPS", "traffic/op", "mean latency");
    for mps in [128usize, 256, 512, 1024] {
        let link = LinkConfig::gen2_x8().with_max_payload_size(mps);
        let mut dev = Device::builder().nand_io(false).link(link).build();
        let r = dev.measure_writes(n, 4096, TransferMethod::Prp).unwrap();
        println!(
            "{:>5}B {:>12} B {:>14}",
            mps,
            fmt_bytes(r.traffic.total_bytes() / n as u64),
            r.mean_latency()
        );
        json.push_run(format!("mps_{mps}b"), &r);
    }
    println!("(larger TLP payloads amortize the 20-24 B per-TLP overhead)");

    // --- 4. PCIe generation ---
    section("Ablation 4: PCIe generation (64 B and 4 KB writes, BX vs PRP)");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "link", "BX 64B lat", "PRP 64B lat", "BX 4KB lat", "PRP 4KB lat"
    );
    for (name, link) in [
        ("gen2 x8", LinkConfig::gen2_x8()),
        ("gen4 x4", LinkConfig::gen4_x4()),
        ("gen5 x4", LinkConfig::gen5_x4()),
    ] {
        let mut dev = Device::builder().nand_io(false).link(link).build();
        let bx64 = dev
            .measure_writes(n, 64, TransferMethod::ByteExpress)
            .unwrap();
        dev.reset_measurements();
        let prp64 = dev.measure_writes(n, 64, TransferMethod::Prp).unwrap();
        dev.reset_measurements();
        let bx4k = dev
            .measure_writes(n, 4096, TransferMethod::ByteExpress)
            .unwrap();
        dev.reset_measurements();
        let prp4k = dev.measure_writes(n, 4096, TransferMethod::Prp).unwrap();
        println!(
            "{:>10} {:>14} {:>14} {:>14} {:>14}",
            name,
            bx64.mean_latency(),
            prp64.mean_latency(),
            bx4k.mean_latency(),
            prp4k.mean_latency()
        );
    }
    println!(
        "(faster links shrink PRP's serialization share, narrowing — not \
         erasing — the small-payload gap:\nthe per-entry protocol costs \
         ByteExpress removes are link-speed independent)"
    );

    // --- 5. SGL threshold ---
    section("Ablation 5: SGL threshold (64 B writes via TransferMethod::Sgl)");
    println!(
        "{:>11} {:>14} {:>16}",
        "threshold", "traffic/op", "engaged path"
    );
    for threshold in [0usize, 4096, 32 * 1024] {
        let mut dev = Device::builder().nand_io(false).build();
        dev.driver_mut().set_sgl_threshold(threshold);
        let r = dev.measure_writes(n, 64, TransferMethod::Sgl).unwrap();
        let engaged = if dev.controller().stats().sgl_payload_bytes > 0 {
            "SGL (fine-grained)"
        } else {
            "PRP (fallback)"
        };
        println!(
            "{:>10}B {:>12} B {:>16}",
            threshold,
            fmt_bytes(r.traffic.total_bytes() / n as u64),
            engaged
        );
    }
    println!(
        "(the Linux default of 32 KB routes every small payload over PRP — \
         the configuration the paper optimizes)"
    );

    // --- 6. MMIO byte-interface baseline ---
    section("Ablation 6: the §3.1 MMIO byte-interface baseline (2B-SSD style)");
    println!(
        "{:>8} {:>14} {:>14} {:>14} | {:>12} {:>12} {:>12}",
        "payload", "MMIO lat", "BX lat", "PRP lat", "MMIO traffic", "BX traffic", "PRP traffic"
    );
    let mut dev = Device::builder().nand_io(false).build();
    for size in [64usize, 256, 1024, 4096] {
        let mut lat = Vec::new();
        let mut tra = Vec::new();
        for method in [
            TransferMethod::MmioByte,
            TransferMethod::ByteExpress,
            TransferMethod::Prp,
        ] {
            let r = dev.measure_writes(n, size, method).unwrap();
            dev.reset_measurements();
            lat.push(r.mean_latency());
            tra.push(r.traffic.total_bytes() / n as u64);
        }
        println!(
            "{:>7}B {:>14} {:>14} {:>14} | {:>10} B {:>10} B {:>10} B",
            size, lat[0], lat[1], lat[2], tra[0], tra[1], tra[2]
        );
    }
    println!(
        "(the MMIO byte interface is the latency/traffic floor at every \
         size — but it abandons the NVMe\ncommand model: dedicated buffers, \
         a new host API, and device-side transactional coordination,\nwhich \
         is exactly why the paper pursues the SQ-inline design instead)"
    );
    json.finish(args.json);
}
