//! batch — doorbell-coalesced batched submission, measured and self-checked.
//!
//! Runs one fixed-seed multi-queue ByteExpress workload twice over two
//! queues: once submitting command-at-a-time (one SQ doorbell per command,
//! naive per-CQE head updates) and once in batches of 8 (one SQ doorbell
//! per batch, CQ head coalesced). Verifies the tentpole contract before
//! exiting:
//!
//! * doorbell MMIOs per command drop strictly under batching (driver
//!   counter **and** PCIe TLP counter agree),
//! * every non-doorbell wire byte is identical between the two runs —
//!   batching changes *when* the bell rings, never what crosses the wire,
//! * all payloads read back intact in both runs,
//! * weighted-round-robin arbitration demonstrably interleaves SQE fetches
//!   across two queues (3:1 grant pattern in the trace).
//!
//! Any violation exits nonzero, making this the CI self-check for the
//! batching subsystem.
//!
//! `cargo run -p bx-bench --release --bin batch [-- n_ops] [--json]`

use bx_bench::{bench_args, fmt_bytes, section, JsonReport};
use byteexpress::{
    derive_timeseries, sparkline, Arbitration, Device, Event, EventKind, FlushPolicy, Nanos,
    TrafficCounters, TransferMethod,
};
use serde::Value;

/// Deterministic payload schedule: (lba, bytes) per op, identical across
/// runs. Sizes walk 16..=256 B — 1 to 4 ByteExpress chunks.
fn schedule(n: usize) -> Vec<(u64, Vec<u8>)> {
    let mut seed: u64 = 0xB1E55ED;
    (0..n)
        .map(|i| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = 16 + (seed >> 33) as usize % 241;
            let data = (0..len)
                .map(|j| ((seed as usize + j) % 256) as u8)
                .collect();
            (i as u64 * 8, data)
        })
        .collect()
}

struct RunStats {
    sq_doorbells: u64,
    driver_doorbells: u64,
    traffic: TrafficCounters,
    read_back_failures: usize,
}

/// Runs the schedule over two queues in groups of `group` commands per
/// batch; `group == 1` is the unbatched baseline.
fn run(ops: &[(u64, Vec<u8>)], group: usize, cq_coalesce: u16) -> RunStats {
    let mut dev = Device::builder()
        .nand_io(true)
        .queue_count(2)
        .cq_coalesce(cq_coalesce)
        .flush_policy(FlushPolicy {
            max_batch: group.min(u16::MAX as usize) as u16,
            max_delay: Nanos::from_ms(1),
        })
        .build();
    let queues = [dev.queues()[0], dev.queues()[1]];

    let before = dev.traffic();
    let db_before = dev.driver_mut().stats().doorbells;
    for (g, batch) in ops.chunks(group).enumerate() {
        let qid = queues[g % 2];
        let completions = dev
            .write_batch(qid, batch, TransferMethod::ByteExpress)
            .expect("batched writes must succeed");
        assert_eq!(completions.len(), batch.len());
    }
    let traffic = dev.traffic().since(&before);
    let driver_doorbells = dev.driver_mut().stats().doorbells - db_before;

    // Read-back verification happens outside the measured window.
    let read_back_failures = ops
        .iter()
        .filter(|(lba, data)| dev.read(*lba, data.len()).as_deref() != Ok(data))
        .count();

    RunStats {
        sq_doorbells: traffic.doorbell_tlps(),
        driver_doorbells,
        traffic,
        read_back_failures,
    }
}

/// Demonstrates 3:1 weighted-round-robin fetch interleaving across two
/// queues against the flight recorder (gauges on, so the drain shows up in
/// the derived time series); returns (grant pattern ok, per-queue grant
/// counts) plus the recorded event stream.
fn wrr_demo() -> ((bool, u64, u64), Vec<Event>) {
    use byteexpress::driver::NvmeDriver;
    use byteexpress::ssd::{BlockFirmware, Controller, ControllerConfig, NandConfig, SystemBus};
    use byteexpress::{LinkConfig, PassthruCmd};

    let mut bus = SystemBus::new(LinkConfig::gen2_x8(), 64 << 20, 8);
    let sink = bus.enable_trace();
    sink.enable_gauges();
    let cfg = ControllerConfig {
        nand: NandConfig::disabled(),
        arbitration: Arbitration::WeightedRoundRobin { burst: 1 },
        ..ControllerConfig::default()
    };
    let mut ctrl = Controller::new(bus.clone(), cfg, |dram| {
        Box::new(BlockFirmware::new(dram, false))
    });
    let mut driver = NvmeDriver::new(bus.clone());
    let qa = driver.create_io_queue(&mut ctrl, 64).unwrap();
    let qb = driver.create_io_queue(&mut ctrl, 64).unwrap();
    ctrl.set_queue_weight(qa, 3);
    ctrl.set_queue_weight(qb, 1);

    let mk = |lba: u64| {
        let mut cmd =
            PassthruCmd::to_device(byteexpress::IoOpcode::Write, 1, vec![(lba % 256) as u8; 64]);
        cmd.cdw10_15[0] = lba as u32;
        (cmd, TransferMethod::Prp)
    };
    let cmds_a: Vec<_> = (0..12).map(|i| mk(i * 8)).collect();
    let cmds_b: Vec<_> = (0..12).map(|i| mk(1000 + i * 8)).collect();
    assert!(driver.submit_batch(qa, &cmds_a).all_accepted());
    assert!(driver.submit_batch(qb, &cmds_b).all_accepted());

    sink.clear();
    ctrl.process_available();

    let fetch_qids: Vec<u16> = sink
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SqeFetch { .. }))
        .map(|e| e.cmd.expect("fetches are command-tagged").qid)
        .collect();
    // Four rounds of [a, a, a, b], then qb's remaining eight one per round.
    let mut expected = Vec::new();
    for _ in 0..4 {
        expected.extend([qa.0, qa.0, qa.0, qb.0]);
    }
    expected.extend(std::iter::repeat_n(qb.0, 8));
    let ok = fetch_qids == expected;
    if !ok {
        eprintln!("FAIL [wrr]: fetch order {fetch_qids:?}, expected {expected:?}");
    }
    let served = |q: u16| -> u64 {
        sink.events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ArbiterGrant { qid, served } if qid == q => Some(served as u64),
                _ => None,
            })
            .sum()
    };
    ((ok, served(qa.0), served(qb.0)), sink.events())
}

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(128);
    let ops = schedule(n);
    let mut report = JsonReport::new("batch");
    let mut failures = 0usize;

    section(&format!(
        "{n} fixed-seed ByteExpress writes over 2 queues, unbatched vs batches of 8"
    ));
    let unbatched = run(&ops, 1, 1);
    let batched = run(&ops, 8, 8);

    for (label, r) in [("unbatched", &unbatched), ("batched", &batched)] {
        println!(
            "  {label:<10} sq+cq doorbell TLPs={:<6} ({:.2}/cmd)  non-doorbell wire={} B",
            r.sq_doorbells,
            r.sq_doorbells as f64 / n as f64,
            fmt_bytes(r.traffic.non_doorbell_wire_bytes()),
        );
        if r.read_back_failures > 0 {
            eprintln!(
                "FAIL [{label}]: {} payloads corrupted",
                r.read_back_failures
            );
            failures += 1;
        }
    }

    if batched.sq_doorbells >= unbatched.sq_doorbells {
        eprintln!(
            "FAIL: batching must strictly cut doorbell TLPs ({} -> {})",
            unbatched.sq_doorbells, batched.sq_doorbells
        );
        failures += 1;
    }
    if batched.driver_doorbells >= unbatched.driver_doorbells {
        eprintln!(
            "FAIL: driver doorbell counter must drop ({} -> {})",
            unbatched.driver_doorbells, batched.driver_doorbells
        );
        failures += 1;
    }
    if batched.traffic.non_doorbell_wire_bytes() != unbatched.traffic.non_doorbell_wire_bytes() {
        eprintln!(
            "FAIL: non-doorbell wire bytes must be byte-identical ({} vs {})",
            unbatched.traffic.non_doorbell_wire_bytes(),
            batched.traffic.non_doorbell_wire_bytes()
        );
        failures += 1;
    }

    section("weighted round-robin arbitration (weights 3:1, burst 1)");
    let ((wrr_ok, grants_a, grants_b), wrr_events) = wrr_demo();
    println!(
        "  fetch interleave {} — {} units to the weight-3 queue, {} to the weight-1 queue",
        if wrr_ok { "OK" } else { "FAILED" },
        grants_a,
        grants_b
    );
    if !wrr_ok {
        failures += 1;
    }

    let run_value = |r: &RunStats| {
        Value::object([
            ("ops", Value::U64(n as u64)),
            ("doorbell_tlps", Value::U64(r.sq_doorbells)),
            ("driver_doorbells", Value::U64(r.driver_doorbells)),
            (
                "doorbells_per_cmd",
                Value::F64(r.sq_doorbells as f64 / n as f64),
            ),
            (
                "non_doorbell_wire_bytes",
                Value::U64(r.traffic.non_doorbell_wire_bytes()),
            ),
            (
                "control_wire_bytes",
                Value::U64(r.traffic.control_wire_bytes()),
            ),
            ("total_wire_bytes", Value::U64(r.traffic.total_bytes())),
            (
                "read_back_failures",
                Value::U64(r.read_back_failures as u64),
            ),
        ])
    };
    report.push("unbatched", run_value(&unbatched));
    report.push("batched", run_value(&batched));
    report.push(
        "wrr",
        Value::object([
            ("interleave_ok", Value::Bool(wrr_ok)),
            ("grants_weight3", Value::U64(grants_a)),
            ("grants_weight1", Value::U64(grants_b)),
        ]),
    );

    // The WRR drain as a virtual-time series: the weight-3 queue's backlog
    // should collapse ~3x faster than the weight-1 queue's.
    section("telemetry: WRR drain time series");
    let span = wrr_events.last().map(|e| e.at.as_ns()).unwrap_or(0);
    let ts = derive_timeseries(&wrr_events, Nanos::from_ns((span / 24).max(100)));
    let peak = |metric: &str, scope: &str| ts.get(metric, scope).map(|s| s.peak()).unwrap_or(0.0);
    for scope in ["1", "2"] {
        if let Some(s) = ts.get("ctrl_sq_backlog", scope) {
            println!(
                "  ctrl_sq_backlog[{scope}] {} peak={:.0}",
                sparkline(&s.points),
                s.peak()
            );
        }
    }
    report.push(
        "wrr_timeseries",
        Value::object([
            ("buckets", Value::U64(ts.buckets as u64)),
            ("series", Value::U64(ts.series.len() as u64)),
            ("q1_backlog_peak", Value::F64(peak("ctrl_sq_backlog", "1"))),
            ("q2_backlog_peak", Value::F64(peak("ctrl_sq_backlog", "2"))),
        ]),
    );
    report.set_trace_stats(wrr_events.len(), (grants_a + grants_b).max(1));

    report.push("failures", Value::U64(failures as u64));

    if failures == 0 {
        println!(
            "\nOK: batching cut doorbells/cmd {:.2} -> {:.2} with byte-identical payload traffic",
            unbatched.sq_doorbells as f64 / n as f64,
            batched.sq_doorbells as f64 / n as f64
        );
    }
    // The JSON document is always the final stdout line (CI tails it).
    report.finish(args.json);
    if failures > 0 {
        eprintln!("batch validation FAILED with {failures} error(s)");
        std::process::exit(1);
    }
}
