//! Table 1 — the overheads introduced by ByteExpress: driver SQ submit and
//! controller SQ fetch, for PRP and ByteExpress at 64/128/256 B.
//!
//! The driver column comes from the driver timing model (what the paper
//! measured with host-side instrumentation); the controller column is
//! measured end-to-end by differencing virtual-time latencies so the figure
//! reflects the composed system, not just configuration constants.
//!
//! `cargo run -p bx-bench --release --bin table1`

use bx_bench::{bench_args, JsonReport};
use byteexpress::{Device, DriverTiming, LinkConfig, Nanos, TrafficClass, TransferMethod};
use serde::Value;

fn end_to_end_latency(dev: &mut Device, size: usize, method: TransferMethod) -> Nanos {
    let r = dev.measure_writes(500, size, method).unwrap();
    dev.reset_measurements();
    r.mean_latency()
}

fn main() {
    let args = bench_args();
    let mut json = JsonReport::new("table1");
    let timing = DriverTiming::default();
    let mut dev = Device::builder().nand_io(false).build();

    // Controller fetch base: the link model's 64-byte DMA + dispatch overhead.
    let mut link = byteexpress::pcie::PcieLink::new(LinkConfig::gen2_x8());
    let sqe_dma = link.device_read(TrafficClass::SqeFetch, 64);
    let ctrl_timing = byteexpress::ControllerTiming::default();
    let fetch_base = ctrl_timing.fetch_dispatch_overhead + sqe_dma;

    // End-to-end marginal chunk cost (controller side + driver side), from
    // measured latency slopes.
    let l64 = end_to_end_latency(&mut dev, 64, TransferMethod::ByteExpress);
    let l128 = end_to_end_latency(&mut dev, 128, TransferMethod::ByteExpress);
    let marginal = l128 - l64;
    let driver_marginal = timing.per_chunk_insert;
    let ctrl_marginal = marginal - driver_marginal;

    println!("Table 1: The overheads introduced by ByteExpress\n");
    println!(
        "{:<22} {:>18} {:>22}",
        "System", "Driver SQ Submit", "Controller SQ Fetch"
    );
    println!(
        "{:<22} {:>16}ns {:>20}ns",
        "NVMe PRP (ALL)",
        timing.sqe_insert.as_ns(),
        fetch_base.as_ns()
    );
    json.push(
        "prp",
        Value::object([
            ("driver_submit_ns", Value::U64(timing.sqe_insert.as_ns())),
            ("controller_fetch_ns", Value::U64(fetch_base.as_ns())),
        ]),
    );
    for chunks in [1u64, 2, 4] {
        let size = chunks * 64;
        let submit = timing.bx_cmd_insert + timing.per_chunk_insert * chunks;
        let fetch = fetch_base + ctrl_marginal * chunks;
        println!(
            "{:<22} {:>16}ns {:>20}ns",
            format!("ByteExpress ({size}B)"),
            submit.as_ns(),
            fetch.as_ns()
        );
        json.push(
            format!("byteexpress_{size}b"),
            Value::object([
                ("driver_submit_ns", Value::U64(submit.as_ns())),
                ("controller_fetch_ns", Value::U64(fetch.as_ns())),
            ]),
        );
    }

    println!(
        "\npaper reference:      PRP ~60ns / ~2400ns;  BX 64B ~100/~2800; \
         128B ~130/~3200; 256B ~180/~4000"
    );
    println!(
        "measured marginal cost per extra 64-byte SQ entry: {} \
         (driver {} + controller {})",
        marginal, driver_marginal, ctrl_marginal
    );
    println!(
        "per-chunk insert ~{}ns on the host (paper: \"inserting one chunk \
         takes ~30ns\"),",
        timing.per_chunk_insert.as_ns()
    );
    println!(
        "per-entry fetch ~{}ns on the device (paper: \"fetching an SQ entry \
         takes ~400ns\")",
        ctrl_timing.per_chunk_fetch.as_ns()
    );
    json.finish(args.json);
}
