//! Fig 1 — motivation: (a) MixGraph value sizes, (b) PRP traffic/latency
//! staircase, (c) sub-1 KB traffic amplification.
//!
//! `cargo run -p bx-bench --release --bin fig1 [-- n_ops]`

use bx_bench::{bench_args, fmt_bytes, section, JsonReport};
use bx_workloads::{amplification_sweep_sizes, latency_staircase_sizes, MixGraph};
use byteexpress::{Device, TransferMethod};
use serde::Value;

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(20_000);
    let mut report = JsonReport::new("fig1");

    // --- (a) value-size distribution ---
    section("Fig 1(a): MixGraph value-size distribution (GPD k=0.2615, sigma=25.45)");
    let mut gen = MixGraph::with_defaults();
    let samples: Vec<usize> = (0..1_000_000).map(|_| gen.sample_value_size()).collect();
    let buckets = [8usize, 16, 32, 64, 128, 256, 512, 1024];
    println!("{:>10} {:>10} {:>8}", "size <=", "count", "cdf");
    let mut cum = 0usize;
    let mut prev = 0usize;
    for b in buckets {
        let count = samples.iter().filter(|&&s| s > prev && s <= b).count();
        cum += count;
        println!(
            "{:>9}B {:>10} {:>7.1}%",
            b,
            fmt_bytes(count as u64),
            100.0 * cum as f64 / samples.len() as f64
        );
        prev = b;
    }
    let under32 = samples.iter().filter(|&&s| s <= 32).count() as f64 / samples.len() as f64;
    println!(
        "fraction <= 32 B: {:.1}% (paper: \"over 60%\")",
        under32 * 100.0
    );
    report.push("fraction_under_32b", Value::F64(under32));

    // --- (b) PRP staircase ---
    section("Fig 1(b): PRP-based writes, PCIe traffic & transfer latency (NAND off)");
    let mut dev = Device::builder().nand_io(false).build();
    println!(
        "{:>8} {:>14} {:>12} {:>12}",
        "payload", "traffic/op", "pages", "avg latency"
    );
    for size in latency_staircase_sizes() {
        let r = dev.measure_writes(n, size, TransferMethod::Prp).unwrap();
        dev.reset_measurements();
        println!(
            "{:>7}B {:>12} B {:>12} {:>12}",
            size,
            fmt_bytes(r.traffic.total_bytes() / n as u64),
            size.div_ceil(4096),
            r.mean_latency()
        );
        report.push_run(format!("staircase_prp_{size}b"), &r);
    }
    println!("(traffic and latency step at 4 KB page boundaries)");

    // --- (c) amplification ---
    section("Fig 1(c): traffic amplification for sub-1 KB PRP payloads");
    println!(
        "{:>8} {:>14} {:>14}",
        "payload", "traffic/op", "amplification"
    );
    for size in amplification_sweep_sizes() {
        let r = dev.measure_writes(n, size, TransferMethod::Prp).unwrap();
        dev.reset_measurements();
        println!(
            "{:>7}B {:>12} B {:>13.1}x",
            size,
            fmt_bytes(r.traffic.total_bytes() / n as u64),
            r.amplification()
        );
        report.push_run(format!("amplification_prp_{size}b"), &r);
    }
    println!("(paper: a 32-byte request generates >130x its size in traffic)");
    report.finish(args.json);
}
