//! micro — wall-clock microbenchmark baseline for the allocation-free hot
//! paths, emitted as `BENCH_micro.json` and gated in CI via `bx-report
//! --diff` (with a generous tolerance; these are host wall-clock figures,
//! not virtual-time ones).
//!
//! Three windows, all steady-state (warmup excluded from the timed region):
//!
//! * **pipelined window** — 10k ByteExpress writes across 4 queues under
//!   `ExecutionModel::Pipelined`, NAND off, batched at QD 8 per queue. This
//!   is the same loop the counting-allocator test pins as zero-allocation,
//!   so its ops/sec figure tracks the hot path the tentpole optimized.
//! * **submit→complete** — single-command round trips (QD 1), the latency
//!   path.
//! * **reassembly accept** — out-of-order 4-chunk trains through
//!   `ReassemblyEngine::accept_at` with buffer recycling.
//!
//! `cargo run -p bx-bench --release --bin micro [-- ops] [--json]`

use bx_bench::{bench_args, section, JsonReport};
use bx_ssd::ReassemblyEngine;
use byteexpress::{nvme, Device, ExecutionModel, Nanos, QueueBatch, QueueId, TransferMethod};
use serde::Value;
use std::time::Instant;

/// Queues for the pipelined window.
const QUEUES: usize = 4;
/// Commands per queue per `write_batch_multi` round.
const ROUND_QD: usize = 8;

fn window_value(ops: u64, wall_ms: f64, rate_key: &'static str, rate: f64) -> Value {
    Value::object([
        ("ops", Value::U64(ops)),
        ("wall_ms", Value::F64(wall_ms)),
        (rate_key, Value::F64(rate)),
    ])
}

/// 10k-command pipelined steady-state window: rounds of 32 ByteExpress
/// writes (4 queues × QD 8), NAND off. Returns (ops, wall_ms, ops_per_sec).
fn pipelined_window(total_cmds: usize) -> (u64, f64, f64) {
    let mut dev = Device::builder()
        .nand_io(false)
        .queue_count(QUEUES)
        .queue_depth(64)
        .execution_model(ExecutionModel::Pipelined)
        .build();
    let queues: Vec<QueueId> = dev.queues().to_vec();
    let data = vec![0x5Au8; 64];
    let batches: Vec<QueueBatch> = queues
        .iter()
        .map(|&qid| {
            (
                qid,
                (0..ROUND_QD as u64)
                    .map(|i| (i * 8, data.clone()))
                    .collect(),
            )
        })
        .collect();
    let per_round = QUEUES * ROUND_QD;
    let rounds = total_cmds.div_ceil(per_round);

    // Warmup: fill every pool (scratch payload, spare buffers, ring state)
    // so the timed region is the allocation-free steady state.
    for _ in 0..16 {
        dev.write_batch_multi(&batches, TransferMethod::ByteExpress)
            .expect("warmup writes must succeed");
    }

    let t0 = Instant::now();
    for _ in 0..rounds {
        dev.write_batch_multi(&batches, TransferMethod::ByteExpress)
            .expect("pipelined writes must succeed");
    }
    let wall = t0.elapsed();
    let ops = (rounds * per_round) as u64;
    let secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
    (ops, wall.as_secs_f64() * 1e3, ops as f64 / secs)
}

/// Single-command submit→complete round trips at QD 1, NAND off.
fn submit_complete_window(total_cmds: usize) -> (u64, f64, f64) {
    let mut dev = Device::builder().nand_io(false).build();
    let data = vec![0xA5u8; 64];
    for i in 0..64u64 {
        dev.write(i * 8, &data, TransferMethod::ByteExpress)
            .expect("warmup write must succeed");
    }
    let t0 = Instant::now();
    for i in 0..total_cmds as u64 {
        dev.write((i % 512) * 8, &data, TransferMethod::ByteExpress)
            .expect("write must succeed");
    }
    let wall = t0.elapsed();
    let secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
    (
        total_cmds as u64,
        wall.as_secs_f64() * 1e3,
        total_cmds as f64 / secs,
    )
}

/// Out-of-order 4-chunk trains through the reassembly engine, recycling the
/// completion buffer each train. Returns (chunks, wall_ms, chunks/sec).
fn reassembly_window(total_trains: usize) -> (u64, f64, f64) {
    const TOTAL: u16 = 4;
    let mut engine = ReassemblyEngine::new(1 << 20);
    let chunk = [0xC3u8; nvme::inline::REASSEMBLY_CHUNK_PAYLOAD];
    let mut id = 0u32;
    let run = |engine: &mut ReassemblyEngine, id: &mut u32| {
        *id = id.wrapping_add(1).max(1);
        let mut done = None;
        for chunk_no in (0..TOTAL).rev() {
            let hdr = nvme::inline::ChunkHeader {
                payload_id: *id,
                chunk_no,
                total: TOTAL,
            };
            done = engine
                .accept_at(hdr, &chunk, Nanos::ZERO)
                .expect("accept must succeed");
        }
        let payload = done.expect("train must complete");
        engine.recycle(payload.data);
    };
    for _ in 0..256 {
        run(&mut engine, &mut id);
    }
    let t0 = Instant::now();
    for _ in 0..total_trains {
        run(&mut engine, &mut id);
    }
    let wall = t0.elapsed();
    let chunks = (total_trains * TOTAL as usize) as u64;
    let secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
    (chunks, wall.as_secs_f64() * 1e3, chunks as f64 / secs)
}

fn main() {
    let args = bench_args();
    let n = args.ops.unwrap_or(10_000).max(QUEUES * ROUND_QD);
    let mut report = JsonReport::new("micro");
    let mut failures = 0usize;

    section(&format!(
        "pipelined steady-state window ({n} ByteExpress writes, {QUEUES} queues, NAND off)"
    ));
    let (p_ops, p_ms, p_rate) = pipelined_window(n);
    println!("  {p_ops} commands in {p_ms:.2} ms wall = {p_rate:.0} ops/sec");
    if p_rate < 1_000_000.0 {
        // The tentpole target: a million-IOPS wall-clock engine.
        eprintln!("FAIL: pipelined window must sustain >= 1M ops/sec, got {p_rate:.0}");
        failures += 1;
    }
    report.push(
        "pipelined_window",
        window_value(p_ops, p_ms, "ops_per_sec", p_rate),
    );

    section(&format!(
        "submit -> complete round trips ({n} commands, QD 1)"
    ));
    let (s_ops, s_ms, s_rate) = submit_complete_window(n);
    println!("  {s_ops} commands in {s_ms:.2} ms wall = {s_rate:.0} ops/sec");
    report.push(
        "submit_complete",
        window_value(s_ops, s_ms, "ops_per_sec", s_rate),
    );

    section(&format!(
        "reassembly accept ({n} out-of-order 4-chunk trains)"
    ));
    let (r_chunks, r_ms, r_rate) = reassembly_window(n);
    println!("  {r_chunks} chunks in {r_ms:.2} ms wall = {r_rate:.0} chunks/sec");
    report.push(
        "reassembly_accept",
        window_value(r_chunks, r_ms, "chunk_throughput", r_rate),
    );

    report.push("failures", Value::U64(failures as u64));
    if failures == 0 {
        println!("\nOK: micro windows sustained {p_rate:.0} pipelined ops/sec wall-clock");
    }
    // The JSON document is always the final stdout line (CI tails it).
    report.finish(args.json);
    if failures > 0 {
        eprintln!("micro validation FAILED with {failures} error(s)");
        std::process::exit(1);
    }
}
