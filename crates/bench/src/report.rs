//! Baseline diffing and dashboard rendering for `BENCH_*.json` documents —
//! the analysis half of the `bx-report` binary, kept in the library so the
//! regression rules are unit-testable without spawning processes.
//!
//! A baseline is the final-stdout-line JSON every bench binary emits
//! (`{"bin": ..., "results": {...}}`). [`diff_reports`] walks two of them
//! leaf-by-leaf, classifies each numeric metric by its key path, and flags
//! changes beyond tolerance in the *bad* direction only — IOPS may rise and
//! latency may fall freely; CI gates on [`DiffReport::regressions`].

use serde::Value;
use std::fmt::Write as _;

/// Which direction of change is a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Throughput-like: a drop beyond tolerance regresses.
    HigherBetter,
    /// Cost-like (latency, wire bytes, doorbells): a rise beyond tolerance
    /// regresses.
    LowerBetter,
    /// Failure counts: any increase regresses, tolerance ignored.
    ZeroTolerance,
    /// Context only (self-profile wall time, op counts): never gated.
    Info,
}

/// Classifies a metric by its dotted key path. Key-name based so new bench
/// sections inherit sensible gating without touching the differ: anything
/// under `failures` is zero-tolerance, throughput-ish names gate downward,
/// cost-ish names gate upward, and the rest — including the wall-clock
/// `self_profile` subtree, which varies run to run — is informational.
pub fn classify(path: &str) -> MetricClass {
    let p = path.to_ascii_lowercase();
    if p.contains("self_profile") {
        return MetricClass::Info;
    }
    if p.contains("failures") {
        return MetricClass::ZeroTolerance;
    }
    if p.contains("iops") || p.contains("throughput") || p.contains("ops_per_sec") {
        return MetricClass::HigherBetter;
    }
    if p.ends_with("_ns")
        || p.contains("latency")
        || p.contains("doorbell")
        || p.contains("wire_bytes")
        || p.contains("amplification")
    {
        return MetricClass::LowerBetter;
    }
    MetricClass::Info
}

/// One out-of-tolerance change in the gated direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dotted key path from the document root (e.g.
    /// `results.pipelined.window_iops`).
    pub path: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed relative change, `(new - old) / old` (`new` as the change
    /// itself when `old` is zero).
    pub change: f64,
    /// The rule that fired.
    pub class: MetricClass,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({:+.1}%)",
            self.path,
            trim_float(self.old),
            trim_float(self.new),
            self.change * 100.0
        )
    }
}

/// Everything [`diff_reports`] found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Numeric leaves present in both documents.
    pub compared: usize,
    /// Out-of-tolerance changes in the gated (bad) direction. Non-empty
    /// means the CI gate fails.
    pub regressions: Vec<Regression>,
    /// Beyond-tolerance changes in the *good* direction, for the log.
    pub improvements: Vec<Regression>,
    /// Leaf paths present only in the old document (shape drift — reported,
    /// not gated, so removing a bench section doesn't break the gate).
    pub only_in_old: Vec<String>,
    /// Leaf paths present only in the new document (also ungated).
    pub only_in_new: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn passes(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn numeric_leaves(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::U64(n) => out.push((prefix.to_string(), *n as f64)),
        Value::I64(n) => out.push((prefix.to_string(), *n as f64)),
        Value::F64(n) => out.push((prefix.to_string(), *n)),
        Value::Object(pairs) => {
            for (k, v) in pairs {
                numeric_leaves(&format!("{prefix}.{k}"), v, out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                numeric_leaves(&format!("{prefix}[{i}]"), v, out);
            }
        }
        _ => {}
    }
}

/// Diffs two bench-report documents with a relative `tolerance` (e.g. 0.10
/// allows a 10% swing before a [`MetricClass::HigherBetter`] /
/// [`MetricClass::LowerBetter`] metric regresses; failure counts ignore it).
pub fn diff_reports(old: &Value, new: &Value, tolerance: f64) -> DiffReport {
    let mut old_leaves = Vec::new();
    let mut new_leaves = Vec::new();
    numeric_leaves("", old, &mut old_leaves);
    numeric_leaves("", new, &mut new_leaves);
    let new_map: std::collections::BTreeMap<&str, f64> =
        new_leaves.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let old_map: std::collections::BTreeMap<&str, f64> =
        old_leaves.iter().map(|(p, v)| (p.as_str(), *v)).collect();

    let mut report = DiffReport::default();
    for (path, old_v) in &old_leaves {
        let Some(&new_v) = new_map.get(path.as_str()) else {
            report.only_in_old.push(path.clone());
            continue;
        };
        report.compared += 1;
        let class = classify(path);
        let change = if *old_v != 0.0 {
            (new_v - old_v) / old_v
        } else {
            new_v
        };
        let entry = || Regression {
            path: path.clone(),
            old: *old_v,
            new: new_v,
            change,
            class,
        };
        match class {
            MetricClass::ZeroTolerance => {
                if new_v > *old_v {
                    report.regressions.push(entry());
                } else if new_v < *old_v {
                    report.improvements.push(entry());
                }
            }
            MetricClass::HigherBetter => {
                if change < -tolerance {
                    report.regressions.push(entry());
                } else if change > tolerance {
                    report.improvements.push(entry());
                }
            }
            MetricClass::LowerBetter => {
                if change > tolerance {
                    report.regressions.push(entry());
                } else if change < -tolerance {
                    report.improvements.push(entry());
                }
            }
            MetricClass::Info => {}
        }
    }
    for (path, _) in &new_leaves {
        if !old_map.contains_key(path.as_str()) {
            report.only_in_new.push(path.clone());
        }
    }
    report
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Renders the `timeseries` subtree a bench report may carry (the
/// serialization of `bx_trace::TimeSeriesSet`) as sparkline rows. Returns
/// `None` when `doc` has no such subtree.
pub fn render_timeseries(doc: &Value) -> Option<String> {
    let ts = doc.get("results")?.get("timeseries")?;
    let interval = ts.get("interval_ns")?.as_u64()?;
    let series = ts.get("series")?;
    let Value::Array(series) = series else {
        return None;
    };
    let mut out = String::new();
    let _ = writeln!(out, "time series ({interval} ns/bucket):");
    for s in series {
        let metric = s.get("metric").and_then(|m| m.as_str()).unwrap_or("?");
        let scope = s.get("scope").and_then(|m| m.as_str()).unwrap_or("");
        let points: Vec<f64> = match s.get("points") {
            Some(Value::Array(p)) => p.iter().filter_map(|v| v.as_f64()).collect(),
            _ => Vec::new(),
        };
        let peak = points.iter().copied().fold(0.0, f64::max);
        let name = if scope.is_empty() {
            metric.to_string()
        } else {
            format!("{metric}[{scope}]")
        };
        let _ = writeln!(
            out,
            "  {name:<28} {} peak={}",
            byteexpress::sparkline(&points),
            trim_float(peak)
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Value {
        Value::parse_json(
            r#"{"bin":"pipeline","results":{
                "pipelined":{"ops":512,"window_iops":100000.0,"mean_ns":4000,
                             "non_doorbell_wire_bytes":90000},
                "iops_speedup":2.5,
                "overlap":{"doorbells_per_cmd":1.0},
                "failures":0,
                "self_profile":{"wall_ms":12.0}}}"#,
        )
        .unwrap()
    }

    fn with(path_edits: &[(&str, f64)]) -> Value {
        // Rebuild the baseline with leaf replacements, crudely but
        // explicitly, via JSON text surgery on known keys.
        let mut v = baseline();
        fn set(v: &mut Value, path: &[&str], to: f64) {
            match v {
                Value::Object(pairs) => {
                    for (k, inner) in pairs.iter_mut() {
                        if k == path[0] {
                            if path.len() == 1 {
                                *inner = Value::F64(to);
                            } else {
                                set(inner, &path[1..], to);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        for (path, to) in path_edits {
            let parts: Vec<&str> = path.split('.').collect();
            set(&mut v, &parts, *to);
        }
        v
    }

    #[test]
    fn identical_baselines_pass() {
        let d = diff_reports(&baseline(), &baseline(), 0.10);
        assert!(d.passes());
        assert!(d.improvements.is_empty());
        assert!(d.compared >= 7);
        assert!(d.only_in_old.is_empty() && d.only_in_new.is_empty());
    }

    #[test]
    fn window_iops_drop_beyond_tolerance_regresses() {
        // The deliberately-broken fixture: IOPS down 30%, doorbells/cmd up.
        let broken = with(&[
            ("results.pipelined.window_iops", 70_000.0),
            ("results.overlap.doorbells_per_cmd", 1.5),
        ]);
        let d = diff_reports(&baseline(), &broken, 0.10);
        assert!(!d.passes());
        let paths: Vec<&str> = d.regressions.iter().map(|r| r.path.as_str()).collect();
        assert!(paths.contains(&".results.pipelined.window_iops"));
        assert!(paths.contains(&".results.overlap.doorbells_per_cmd"));
    }

    #[test]
    fn changes_within_tolerance_pass() {
        let wiggle = with(&[
            ("results.pipelined.window_iops", 95_000.0),
            ("results.pipelined.mean_ns", 4200.0),
        ]);
        assert!(diff_reports(&baseline(), &wiggle, 0.10).passes());
    }

    #[test]
    fn improvements_do_not_gate() {
        let better = with(&[
            ("results.pipelined.window_iops", 200_000.0),
            ("results.pipelined.mean_ns", 2000.0),
        ]);
        let d = diff_reports(&baseline(), &better, 0.10);
        assert!(d.passes());
        assert_eq!(d.improvements.len(), 2);
    }

    #[test]
    fn any_new_failure_regresses_regardless_of_tolerance() {
        let failing = with(&[("results.failures", 1.0)]);
        let d = diff_reports(&baseline(), &failing, 10.0);
        assert!(!d.passes());
        assert_eq!(d.regressions[0].class, MetricClass::ZeroTolerance);
    }

    #[test]
    fn self_profile_and_shape_drift_are_informational() {
        let slower = with(&[("results.self_profile.wall_ms", 9000.0)]);
        assert!(diff_reports(&baseline(), &slower, 0.10).passes());

        let mut extended = baseline();
        if let Value::Object(pairs) = &mut extended {
            pairs.push(("extra".to_string(), Value::U64(1)));
        }
        let d = diff_reports(&baseline(), &extended, 0.10);
        assert!(d.passes());
        assert_eq!(d.only_in_new, vec![".extra".to_string()]);
    }

    #[test]
    fn classification_rules() {
        assert_eq!(
            classify("results.pipelined.window_iops"),
            MetricClass::HigherBetter
        );
        assert_eq!(
            classify("results.qd1_latency.mean_ns"),
            MetricClass::LowerBetter
        );
        assert_eq!(
            classify("results.overlap.doorbells_per_cmd"),
            MetricClass::LowerBetter
        );
        assert_eq!(classify("results.failures"), MetricClass::ZeroTolerance);
        assert_eq!(classify("results.self_profile.wall_ms"), MetricClass::Info);
        assert_eq!(classify("results.pipelined.ops"), MetricClass::Info);
    }

    #[test]
    fn timeseries_subtree_renders_sparklines() {
        let doc = Value::parse_json(
            r#"{"bin":"pipeline","results":{"timeseries":{
                "interval_ns":1000,"buckets":3,
                "series":[{"metric":"wire_bytes","scope":"","kind":"rate",
                           "points":[10.0,20.0,5.0]}]}}}"#,
        )
        .unwrap();
        let rendered = render_timeseries(&doc).unwrap();
        assert!(rendered.contains("wire_bytes"));
        assert!(rendered.contains("peak=20"));
        assert!(render_timeseries(&Value::parse_json(r#"{"results":{}}"#).unwrap()).is_none());
    }
}
