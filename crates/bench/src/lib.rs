//! # bx-bench — the figure/table regeneration harness
//!
//! One binary per evaluation artifact in the paper:
//!
//! | Binary   | Regenerates                                                      |
//! |----------|------------------------------------------------------------------|
//! | `fig1`   | Fig 1(a) value-size distribution, (b) PRP staircase, (c) amplification |
//! | `fig4`   | Fig 4 query/segment lengths                                       |
//! | `fig5`   | Fig 5 traffic + latency across payload sizes and methods          |
//! | `table1` | Table 1 driver-submit / controller-fetch overheads                |
//! | `fig6`   | Fig 6 KV-SSD MixGraph + FillRandom (traffic, throughput, p1–p99)  |
//! | `fig7`   | Fig 7 CSD pushdown traffic + throughput                           |
//! | `ablation` | Hybrid threshold, reassembly tax, MPS/PCIe-gen/SGL sweeps, MMIO baseline |
//! | `energy` | Link energy per op / per payload byte (§1's power motivation)   |
//!
//! Run each with `cargo run -p bx-bench --release --bin <name> [-- n_ops]`.
//! Op counts default to fast-but-stable values; pass a count to match the
//! paper's 1 M-op runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use byteexpress::TransferMethod;

/// Parses the optional op-count CLI argument, with a default.
pub fn ops_arg(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The three methods every figure compares, in paper order.
pub fn paper_methods() -> [TransferMethod; 3] {
    [
        TransferMethod::Prp,
        TransferMethod::BandSlim { embed_first: true },
        TransferMethod::ByteExpress,
    ]
}

/// Formats a byte count with thousands separators.
pub fn fmt_bytes(b: u64) -> String {
    let s = b.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(0), "0");
        assert_eq!(fmt_bytes(999), "999");
        assert_eq!(fmt_bytes(1000), "1,000");
        assert_eq!(fmt_bytes(1234567), "1,234,567");
    }

    #[test]
    fn methods_in_paper_order() {
        let m = paper_methods();
        assert_eq!(m[0], TransferMethod::Prp);
        assert_eq!(m[2], TransferMethod::ByteExpress);
    }
}
