//! # bx-bench — the figure/table regeneration harness
//!
//! One binary per evaluation artifact in the paper:
//!
//! | Binary   | Regenerates                                                      |
//! |----------|------------------------------------------------------------------|
//! | `fig1`   | Fig 1(a) value-size distribution, (b) PRP staircase, (c) amplification |
//! | `fig4`   | Fig 4 query/segment lengths                                       |
//! | `fig5`   | Fig 5 traffic + latency across payload sizes and methods          |
//! | `table1` | Table 1 driver-submit / controller-fetch overheads                |
//! | `fig6`   | Fig 6 KV-SSD MixGraph + FillRandom (traffic, throughput, p1–p99)  |
//! | `fig7`   | Fig 7 CSD pushdown traffic + throughput                           |
//! | `ablation` | Hybrid threshold, reassembly tax, MPS/PCIe-gen/SGL sweeps, MMIO baseline |
//! | `energy` | Link energy per op / per payload byte (§1's power motivation)   |
//! | `batch`  | Doorbell-coalesced batched submission + WRR arbitration self-check |
//! | `pipeline` | Serial vs Pipelined execution: IOPS speedup, QD sweep, overlap self-check |
//!
//! Run each with `cargo run -p bx-bench --release --bin <name> [-- n_ops]`.
//! Op counts default to fast-but-stable values; pass a count to match the
//! paper's 1 M-op runs. Every binary also accepts `--json`, which appends
//! one machine-readable JSON document as the final stdout line (the human
//! tables still print above it). The `trace` binary additionally writes
//! Chrome-trace/Perfetto files under `target/trace/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use byteexpress::{RunReport, TransferMethod};
use serde::Value;

pub mod report;

/// Options every figure binary understands: an optional op-count override
/// (first bare argument) plus the `--json` report flag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// Override for the default op count.
    pub ops: Option<usize>,
    /// Emit a JSON document as the last line of stdout.
    pub json: bool,
}

fn parse_args(args: impl Iterator<Item = String>) -> BenchArgs {
    let mut parsed = BenchArgs::default();
    for a in args {
        match a.as_str() {
            "--json" => parsed.json = true,
            s => {
                if let Ok(n) = s.parse() {
                    parsed.ops = Some(n);
                }
            }
        }
    }
    parsed
}

/// Parses the process arguments.
pub fn bench_args() -> BenchArgs {
    parse_args(std::env::args().skip(1))
}

/// Parses the optional op-count CLI argument, with a default (flags such as
/// `--json` are skipped, not misparsed).
pub fn ops_arg(default: usize) -> usize {
    bench_args().ops.unwrap_or(default)
}

/// Accumulates one binary's measurements into the `--json` report.
///
/// Keys are inserted in measurement order and serialized as one object:
/// `{"bin": "...", "results": {...}}`.
#[derive(Debug)]
pub struct JsonReport {
    bin: &'static str,
    entries: Vec<(String, Value)>,
    /// Wall-clock start, for the self-profile appended by `finish`. Real
    /// time is fine here: the bench harness is the one layer outside the
    /// virtual-time purity boundary (bx-lint exempts it).
    started: std::time::Instant,
    /// `(recorded events, simulated commands)` from a traced run, when the
    /// binary had one to measure recorder overhead against.
    trace_stats: Option<(usize, u64)>,
}

impl JsonReport {
    /// An empty report for the named binary. Starts the wall clock for the
    /// self-profile.
    pub fn new(bin: &'static str) -> Self {
        JsonReport {
            bin,
            entries: Vec::new(),
            started: std::time::Instant::now(),
            trace_stats: None,
        }
    }

    /// Records one result under `key`.
    pub fn push(&mut self, key: impl Into<String>, value: Value) {
        self.entries.push((key.into(), value));
    }

    /// Records a [`RunReport`] (serialized with its derived ratios).
    pub fn push_run(&mut self, key: impl Into<String>, report: &RunReport) {
        self.push(key, report.to_value());
    }

    /// Feeds recorder volume from a traced run into the self-profile:
    /// `events` recorded over `commands` simulated commands.
    pub fn set_trace_stats(&mut self, events: usize, commands: u64) {
        self.trace_stats = Some((events, commands));
    }

    /// The harness self-profile: wall-clock cost of the whole binary and —
    /// when [`JsonReport::set_trace_stats`] was fed — recorder overhead
    /// (events/sec of wall time, events per simulated command, and the
    /// recorder's peak buffer footprint at `events × sizeof(Event)`).
    fn self_profile(&self) -> Value {
        let wall = self.started.elapsed();
        let mut fields = vec![("wall_ms", Value::F64(wall.as_secs_f64() * 1e3))];
        if let Some((events, commands)) = self.trace_stats {
            let secs = wall.as_secs_f64().max(1e-9);
            fields.push(("trace_events", Value::U64(events as u64)));
            fields.push(("commands", Value::U64(commands)));
            fields.push(("events_per_sec", Value::F64(events as f64 / secs)));
            if commands > 0 {
                fields.push((
                    "events_per_command",
                    Value::F64(events as f64 / commands as f64),
                ));
            }
            fields.push((
                "recorder_bytes",
                Value::U64((events * std::mem::size_of::<byteexpress::Event>()) as u64),
            ));
        }
        Value::object(fields)
    }

    /// The whole report as one JSON value, self-profile appended last.
    pub fn to_value(&self) -> Value {
        let mut entries = self.entries.clone();
        entries.push(("self_profile".to_string(), self.self_profile()));
        Value::object([
            ("bin", Value::Str(self.bin.to_string())),
            ("results", Value::Object(entries)),
        ])
    }

    /// Prints the report as the final stdout line when `enabled`; a plain
    /// no-op otherwise, so binaries call this unconditionally.
    pub fn finish(self, enabled: bool) {
        if enabled {
            println!("{}", self.to_value().to_json());
        }
    }
}

/// Shorthand: any `Serialize` value as a [`Value`].
pub fn json_of<T: serde::Serialize>(v: &T) -> Value {
    v.to_value()
}

/// The three methods every figure compares, in paper order.
pub fn paper_methods() -> [TransferMethod; 3] {
    [
        TransferMethod::Prp,
        TransferMethod::BandSlim { embed_first: true },
        TransferMethod::ByteExpress,
    ]
}

/// Formats a byte count with thousands separators.
pub fn fmt_bytes(b: u64) -> String {
    let s = b.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(0), "0");
        assert_eq!(fmt_bytes(999), "999");
        assert_eq!(fmt_bytes(1000), "1,000");
        assert_eq!(fmt_bytes(1234567), "1,234,567");
    }

    #[test]
    fn methods_in_paper_order() {
        let m = paper_methods();
        assert_eq!(m[0], TransferMethod::Prp);
        assert_eq!(m[2], TransferMethod::ByteExpress);
    }

    #[test]
    fn args_parse_flags_and_count_in_any_order() {
        let of = |v: &[&str]| parse_args(v.iter().map(|s| s.to_string()));
        assert_eq!(of(&[]), BenchArgs::default());
        assert_eq!(
            of(&["5000"]),
            BenchArgs {
                ops: Some(5000),
                json: false
            }
        );
        assert_eq!(
            of(&["--json", "5000"]),
            BenchArgs {
                ops: Some(5000),
                json: true
            }
        );
        assert_eq!(
            of(&["5000", "--json"]),
            BenchArgs {
                ops: Some(5000),
                json: true
            }
        );
    }

    #[test]
    fn json_report_round_trips() {
        let mut r = JsonReport::new("fig0");
        r.push("x", Value::U64(7));
        let v = Value::parse_json(&r.to_value().to_json()).unwrap();
        assert_eq!(v.get("bin").and_then(|b| b.as_str()), Some("fig0"));
        assert_eq!(
            v.get("results")
                .and_then(|r| r.get("x"))
                .and_then(|x| x.as_u64()),
            Some(7)
        );
    }
}
