//! Criterion microbenchmarks of the hot paths: protocol codecs, the submit
//! engines, and one full command round trip per transfer method.

use bx_ssd::ReassemblyEngine;
use bx_workloads::MixGraph;
use byteexpress::{
    nvme, Device, ExecutionModel, Nanos, QueueBatch, QueueId, SubmissionEntry, TransferMethod,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sqe_codec(c: &mut Criterion) {
    let mut sqe = SubmissionEntry::io(byteexpress::IoOpcode::Write, 42, 1);
    sqe.set_slba(1234);
    sqe.set_data_len(4096);
    let wire = sqe.to_bytes();
    c.bench_function("sqe_encode", |b| b.iter(|| black_box(sqe).to_bytes()));
    c.bench_function("sqe_decode", |b| {
        b.iter(|| SubmissionEntry::from_bytes(black_box(&wire)))
    });
}

fn bench_chunk_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("inline_chunks");
    for size in [64usize, 256, 1024, 4096] {
        let payload = vec![0xA5u8; size];
        group.bench_with_input(BenchmarkId::new("encode", size), &payload, |b, p| {
            b.iter(|| nvme::inline::encode_chunks(black_box(p)))
        });
        let chunks = nvme::inline::encode_chunks(&payload);
        group.bench_with_input(BenchmarkId::new("decode", size), &chunks, |b, ch| {
            b.iter(|| nvme::inline::decode_chunks(black_box(ch), size))
        });
    }
    group.finish();
}

fn bench_write_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_write_64B");
    group.sample_size(50);
    for (name, method) in [
        ("prp", TransferMethod::Prp),
        ("bandslim", TransferMethod::BandSlim { embed_first: true }),
        ("byteexpress", TransferMethod::ByteExpress),
        ("hybrid", TransferMethod::hybrid_default()),
    ] {
        group.bench_function(name, |b| {
            let mut dev = Device::builder().nand_io(false).build();
            let data = vec![0x5Au8; 64];
            let mut lba = 0u64;
            b.iter(|| {
                lba = (lba + 16) % 4096;
                dev.write(black_box(lba), black_box(&data), method).unwrap()
            });
        });
    }
    group.finish();
}

/// Out-of-order reassembly accept: a full 4-chunk train (224 B payload)
/// through `accept_at`, completion buffer recycled back into the engine's
/// pool so the steady state is allocation-free.
fn bench_reassembly_accept(c: &mut Criterion) {
    let mut group = c.benchmark_group("reassembly");
    for &total in &[1u16, 4, 16] {
        group.bench_function(&format!("accept_{total}_chunks"), |b| {
            let mut engine = ReassemblyEngine::new(1 << 20);
            let chunk = [0xC3u8; nvme::inline::REASSEMBLY_CHUNK_PAYLOAD];
            let mut id = 0u32;
            b.iter(|| {
                id = id.wrapping_add(1).max(1);
                let mut done = None;
                // Reverse order: every chunk but the last is out-of-order.
                for chunk_no in (0..total).rev() {
                    let hdr = nvme::inline::ChunkHeader {
                        payload_id: id,
                        chunk_no,
                        total,
                    };
                    done = engine
                        .accept_at(black_box(hdr), black_box(&chunk), Nanos::ZERO)
                        .unwrap();
                }
                let payload = done.expect("train must complete");
                engine.recycle(payload.data);
            });
        });
    }
    group.finish();
}

/// Pipelined dispatch: one batch of 32 ByteExpress writes across 4 queues
/// per iteration, NAND off, on a device reused across iterations — the
/// submit→complete engine in steady state.
fn bench_pipelined_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelined_dispatch");
    group.sample_size(50);
    group.bench_function("batch_32x4q", |b| {
        let mut dev = Device::builder()
            .nand_io(false)
            .queue_count(4)
            .queue_depth(64)
            .execution_model(ExecutionModel::Pipelined)
            .build();
        let queues: Vec<QueueId> = dev.queues().to_vec();
        let data = vec![0x5Au8; 64];
        let batches: Vec<QueueBatch> = queues
            .iter()
            .map(|&qid| (qid, (0..8).map(|i| (i * 8, data.clone())).collect()))
            .collect();
        b.iter(|| {
            dev.write_batch_multi(black_box(&batches), TransferMethod::ByteExpress)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_kv_put(c: &mut Criterion) {
    use bx_kvssd::{KvStore, KvStoreConfig};
    let mut group = c.benchmark_group("kv_put_mixgraph");
    group.sample_size(50);
    for (name, method) in [
        ("prp", TransferMethod::Prp),
        ("byteexpress", TransferMethod::ByteExpress),
    ] {
        group.bench_function(name, |b| {
            let mut store = KvStore::open(KvStoreConfig {
                method,
                nand_io: true,
                ..Default::default()
            });
            let mut gen = MixGraph::with_defaults();
            b.iter(|| {
                let op = gen.next_put();
                store.put(black_box(&op.key), black_box(&op.value)).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_sql_parse(c: &mut Criterion) {
    let q1 = "SELECT l_returnflag, l_linestatus, sum(l_quantity), count(*) FROM lineitem \
              WHERE l_shipdate <= '1998-09-02' GROUP BY l_returnflag, l_linestatus";
    c.bench_function("sql_parse_tpch_q1", |b| {
        b.iter(|| bx_csd::parse_query(black_box(q1)).unwrap())
    });
    c.bench_function("sql_parse_predicate", |b| {
        b.iter(|| bx_csd::parse_predicate(black_box("energy > 1.3 AND density < 8.0")).unwrap())
    });
}

criterion_group!(
    benches,
    bench_sqe_codec,
    bench_chunk_codec,
    bench_write_paths,
    bench_reassembly_accept,
    bench_pipelined_dispatch,
    bench_kv_put,
    bench_sql_parse
);
criterion_main!(benches);
