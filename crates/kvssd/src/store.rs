//! Host-side key-value store API over the passthrough path.

use crate::firmware::{
    key_into_cdws, pad_key, KvDeviceStats, KvFirmware, MAX_KEY_LEN, MAX_VALUE_LEN,
};
use crate::lsm::{LsmKvFirmware, LsmStats, KV_RANGE_SCAN_OPCODE};
use bx_ssd::NandConfig;

/// An owned key-value pair as returned by range scans.
pub type KvPair = (Vec<u8>, Vec<u8>);
use byteexpress::{
    Completion, Device, DeviceError, ExecutionModel, FaultConfig, FetchPolicy, IoOpcode, Nanos,
    PassthruCmd, RecoveryReport, RetryPolicy, Status, TransferMethod,
};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Errors from the key-value API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Key exceeds the 16-byte wire format.
    KeyTooLong {
        /// Offending key length.
        len: usize,
    },
    /// Value exceeds one log page.
    ValueTooLarge {
        /// Offending value length.
        len: usize,
    },
    /// The device failed the command.
    Device(DeviceError),
    /// The device returned a malformed iterator response.
    CorruptResponse,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::KeyTooLong { len } => {
                write!(f, "key of {len} bytes exceeds {MAX_KEY_LEN}")
            }
            KvError::ValueTooLarge { len } => {
                write!(f, "value of {len} bytes exceeds {MAX_VALUE_LEN}")
            }
            KvError::Device(e) => write!(f, "device error: {e}"),
            KvError::CorruptResponse => write!(f, "corrupt iterator response"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<DeviceError> for KvError {
    fn from(e: DeviceError) -> Self {
        KvError::Device(e)
    }
}

/// Which device-side storage engine backs the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvEngine {
    /// Hash-indexed append log with on-media headers and log-replay
    /// recovery ([`KvFirmware`]).
    #[default]
    HashLog,
    /// LSM tree with memtable, sorted runs, compaction and ordered range
    /// scans ([`LsmKvFirmware`], the iLSM-style baseline).
    Lsm,
}

/// Configuration for opening a [`KvStore`].
#[derive(Debug, Clone)]
pub struct KvStoreConfig {
    /// Transfer method for PUT values (the Fig 6 variable).
    pub method: TransferMethod,
    /// NAND I/O on (Fig 6) or off (pure transfer measurement).
    pub nand_io: bool,
    /// NAND geometry override (e.g. a larger array for million-PUT runs).
    pub nand: Option<NandConfig>,
    /// Queue depth.
    pub queue_depth: u16,
    /// Device-side engine.
    pub engine: KvEngine,
    /// Controller execution model (Serial or Pipelined).
    pub execution: ExecutionModel,
    /// Controller chunk-gathering policy; [`FetchPolicy::Reassembly`] also
    /// switches the driver into reassembly framing.
    pub fetch: FetchPolicy,
    /// Driver timeout/retry policy — required for crash runs, where lost
    /// completions are expected rather than a harness bug.
    pub retry: Option<RetryPolicy>,
    /// Fault schedule to arm at build time (e.g. a power-cut countdown).
    pub fault_config: Option<FaultConfig>,
    /// Write-through durable PUTs (hash-log engine, `nand_io` only): the
    /// ack implies the value survives any power cut. See
    /// [`KvFirmware::set_durable_puts`].
    pub durable_puts: bool,
}

impl Default for KvStoreConfig {
    fn default() -> Self {
        KvStoreConfig {
            method: TransferMethod::ByteExpress,
            nand_io: true,
            nand: None,
            queue_depth: 1024,
            engine: KvEngine::HashLog,
            execution: ExecutionModel::Serial,
            fetch: FetchPolicy::QueueLocal,
            retry: None,
            fault_config: None,
            durable_puts: false,
        }
    }
}

/// A key-value store backed by a simulated KV-SSD.
pub struct KvStore {
    dev: Device,
    method: TransferMethod,
    engine: KvEngine,
    stats: Rc<RefCell<KvDeviceStats>>,
    lsm_stats: Rc<RefCell<LsmStats>>,
}

impl fmt::Debug for KvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvStore")
            .field("method", &self.method)
            .field("stats", &*self.stats.borrow())
            .finish_non_exhaustive()
    }
}

impl KvStore {
    /// Opens a store on a freshly built device with the configured engine's
    /// firmware.
    pub fn open(cfg: KvStoreConfig) -> Self {
        let stats = Rc::new(RefCell::new(KvDeviceStats::default()));
        let lsm_stats = Rc::new(RefCell::new(LsmStats::default()));
        let nand_io = cfg.nand_io;
        let durable_puts = cfg.durable_puts;
        let mut builder = Device::builder()
            .nand_io(cfg.nand_io)
            .queue_depth(cfg.queue_depth)
            .execution_model(cfg.execution)
            .fetch_policy(cfg.fetch);
        if let Some(retry) = cfg.retry {
            builder = builder.retry_policy(retry);
        }
        if let Some(faults) = cfg.fault_config {
            builder = builder.fault_config(faults);
        }
        builder = match cfg.engine {
            KvEngine::HashLog => {
                let stats_for_fw = Rc::clone(&stats);
                builder.firmware(move |dram| {
                    let mut fw = KvFirmware::with_stats(dram, nand_io, stats_for_fw);
                    fw.set_durable_puts(durable_puts);
                    Box::new(fw)
                })
            }
            KvEngine::Lsm => {
                let stats_for_fw = Rc::clone(&lsm_stats);
                builder.firmware(move |dram| {
                    Box::new(LsmKvFirmware::with_stats(dram, nand_io, stats_for_fw))
                })
            }
        };
        if let Some(nand) = cfg.nand {
            builder = builder.nand_config(nand);
        }
        KvStore {
            dev: builder.build(),
            method: cfg.method,
            engine: cfg.engine,
            stats,
            lsm_stats,
        }
    }

    /// The device-side engine in use.
    pub fn engine(&self) -> KvEngine {
        self.engine
    }

    /// LSM-engine counters (all zero for the hash-log engine).
    pub fn lsm_stats(&self) -> LsmStats {
        *self.lsm_stats.borrow()
    }

    /// Ordered scan: up to `limit` key-value pairs starting at `start`
    /// (inclusive), in key order — the iterator extension of the LSM
    /// baseline. Only the [`KvEngine::Lsm`] engine supports it.
    ///
    /// # Errors
    ///
    /// [`KvError::Device`] with `InvalidOpcode` on the hash-log engine;
    /// [`KvError::CorruptResponse`] on malformed responses.
    pub fn range(&mut self, start: &[u8], limit: usize) -> Result<Vec<KvPair>, KvError> {
        const BUF: usize = 64 << 10;
        let mut cmd = PassthruCmd::from_device(IoOpcode::KvGet, 1, BUF);
        cmd.opcode = KV_RANGE_SCAN_OPCODE;
        cmd.cdw10_15 = Self::key_cmd(IoOpcode::KvGet, start)?;
        cmd.cdw10_15[4] = limit as u32; // CDW14
        let completion = self.dev.passthru(&cmd, TransferMethod::Prp)?;
        if !completion.status.is_success() {
            return Err(KvError::Device(DeviceError::Command(completion.status)));
        }
        let data = completion.data.ok_or(KvError::CorruptResponse)?;
        if data.len() < 4 {
            return Err(KvError::CorruptResponse);
        }
        let count = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
        let mut out = Vec::with_capacity(count);
        let mut off = 4usize;
        for _ in 0..count {
            if off + MAX_KEY_LEN + 2 > data.len() {
                return Err(KvError::CorruptResponse);
            }
            let raw_key = &data[off..off + MAX_KEY_LEN];
            let end = raw_key.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
            let key = raw_key[..end].to_vec();
            let vlen =
                u16::from_le_bytes([data[off + MAX_KEY_LEN], data[off + MAX_KEY_LEN + 1]]) as usize;
            off += MAX_KEY_LEN + 2;
            if off + vlen > data.len() {
                return Err(KvError::CorruptResponse);
            }
            out.push((key, data[off..off + vlen].to_vec()));
            off += vlen;
        }
        Ok(out)
    }

    /// The transfer method PUT values use.
    pub fn method(&self) -> TransferMethod {
        self.method
    }

    /// Changes the PUT transfer method.
    pub fn set_method(&mut self, method: TransferMethod) {
        self.method = method;
    }

    /// The underlying device (traffic counters, clock).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Mutable device access.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.dev
    }

    /// Device-side operation counters.
    pub fn device_stats(&self) -> KvDeviceStats {
        *self.stats.borrow()
    }

    fn key_cmd(opcode: IoOpcode, key: &[u8]) -> Result<[u32; 6], KvError> {
        if key.len() > MAX_KEY_LEN {
            return Err(KvError::KeyTooLong { len: key.len() });
        }
        let _ = opcode;
        let mut cdws = [0u32; 6];
        key_into_cdws(&pad_key(key), &mut cdws);
        Ok(cdws)
    }

    /// Stores `value` under `key`, transferring the value with the store's
    /// method. Returns the completion (latency is the Fig 6 sample).
    ///
    /// # Errors
    ///
    /// [`KvError::KeyTooLong`] / [`KvError::ValueTooLarge`] for limit
    /// violations; [`KvError::Device`] for transport or device failures.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Completion, KvError> {
        if value.len() > MAX_VALUE_LEN {
            return Err(KvError::ValueTooLarge { len: value.len() });
        }
        let mut cmd = PassthruCmd::to_device(IoOpcode::KvPut, 1, value.to_vec());
        cmd.cdw10_15 = Self::key_cmd(IoOpcode::KvPut, key)?;
        let completion = self.dev.passthru(&cmd, self.method)?;
        if !completion.status.is_success() {
            return Err(KvError::Device(DeviceError::Command(completion.status)));
        }
        Ok(completion)
    }

    /// Fetches the value for `key`, or `None` if absent.
    ///
    /// # Errors
    ///
    /// [`KvError`] on limit violations or device failures.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        let mut cmd = PassthruCmd::from_device(IoOpcode::KvGet, 1, MAX_VALUE_LEN);
        cmd.cdw10_15 = Self::key_cmd(IoOpcode::KvGet, key)?;
        let completion = self.dev.passthru(&cmd, TransferMethod::Prp)?;
        match completion.status {
            Status::Success => {
                let len = completion.result as usize;
                let mut data = completion.data.unwrap_or_default();
                data.truncate(len);
                Ok(Some(data))
            }
            Status::KvKeyNotFound => Ok(None),
            other => Err(KvError::Device(DeviceError::Command(other))),
        }
    }

    /// Deletes `key`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// [`KvError`] on limit violations or device failures.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, KvError> {
        let mut cmd = PassthruCmd::no_data(IoOpcode::KvDelete, 1);
        cmd.cdw10_15 = Self::key_cmd(IoOpcode::KvDelete, key)?;
        let completion = self.dev.passthru(&cmd, TransferMethod::Prp)?;
        match completion.status {
            Status::Success => Ok(true),
            Status::KvKeyNotFound => Ok(false),
            other => Err(KvError::Device(DeviceError::Command(other))),
        }
    }

    /// Lists all keys via the device iterator command (paged scans).
    ///
    /// # Errors
    ///
    /// [`KvError`] on device failures or malformed responses.
    pub fn keys(&mut self) -> Result<Vec<Vec<u8>>, KvError> {
        const PAGE: usize = 4096;
        let mut out = Vec::new();
        let mut cursor = 0u32;
        loop {
            let mut cmd = PassthruCmd::from_device(IoOpcode::KvIter, 1, PAGE);
            cmd.cdw10_15[4] = cursor; // CDW14
            let completion = self.dev.passthru(&cmd, TransferMethod::Prp)?;
            if !completion.status.is_success() {
                return Err(KvError::Device(DeviceError::Command(completion.status)));
            }
            let data = completion.data.ok_or(KvError::CorruptResponse)?;
            if data.len() < 8 {
                return Err(KvError::CorruptResponse);
            }
            let count = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
            let next = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
            if data.len() < 8 + count * MAX_KEY_LEN {
                return Err(KvError::CorruptResponse);
            }
            for i in 0..count {
                let raw = &data[8 + i * MAX_KEY_LEN..8 + (i + 1) * MAX_KEY_LEN];
                let end = raw.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
                out.push(raw[..end].to_vec());
            }
            if next == u32::MAX {
                return Ok(out);
            }
            cursor = next;
        }
    }

    /// Bulk PUT: stores many pairs with one command (the §2.2.1 batching
    /// alternative — fewer protocol round trips, but every pair in the batch
    /// shares one durability point, which is exactly why fine-grained
    /// workloads can't always use it).
    ///
    /// # Errors
    ///
    /// [`KvError`] on limit violations or device failures.
    pub fn put_batch(&mut self, pairs: &[(&[u8], &[u8])]) -> Result<Completion, KvError> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for (key, value) in pairs {
            if key.len() > MAX_KEY_LEN {
                return Err(KvError::KeyTooLong { len: key.len() });
            }
            if value.len() > MAX_VALUE_LEN {
                return Err(KvError::ValueTooLarge { len: value.len() });
            }
            payload.extend_from_slice(&pad_key(key));
            payload.extend_from_slice(&(value.len() as u16).to_le_bytes());
            payload.extend_from_slice(value);
        }
        let cmd = PassthruCmd::to_device(IoOpcode::KvBatchPut, 1, payload);
        let completion = self.dev.passthru(&cmd, self.method)?;
        if !completion.status.is_success() {
            return Err(KvError::Device(DeviceError::Command(completion.status)));
        }
        Ok(completion)
    }

    /// Simulates a power event and index recovery. With `graceful = true`
    /// the staging page survives (planned restart); with `false` it is lost
    /// (crash/power loss) and only NAND-persisted entries come back.
    /// Returns the number of index entries recovered.
    ///
    /// # Errors
    ///
    /// [`KvError::Device`] if the recovery command fails.
    pub fn power_cycle(&mut self, graceful: bool) -> Result<u32, KvError> {
        let mut cmd = PassthruCmd::no_data(IoOpcode::KvRecover, 1);
        cmd.cdw10_15[4] = graceful as u32; // CDW14 bit 0
        let completion = self.dev.passthru(&cmd, TransferMethod::Prp)?;
        if !completion.status.is_success() {
            return Err(KvError::Device(DeviceError::Command(completion.status)));
        }
        Ok(completion.result)
    }

    /// A *hard* power cycle through the real power-fail path: cuts power
    /// (if a fault-injected cut has not already fired), rebuilds the FTL
    /// from NAND + journal, re-runs NVMe bring-up, and lets the firmware
    /// rebuild its index from the persisted log. Unlike
    /// [`KvStore::power_cycle`] — which models recovery as a polite admin
    /// command to a live device — nothing volatile survives this.
    ///
    /// # Errors
    ///
    /// [`KvError::Device`] if bring-up after the cut fails.
    pub fn hard_power_cycle(&mut self) -> Result<RecoveryReport, KvError> {
        Ok(self.dev.power_cycle()?)
    }

    /// Current virtual time (for throughput computation).
    pub fn now(&self) -> Nanos {
        self.dev.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(method: TransferMethod) -> KvStore {
        KvStore::open(KvStoreConfig {
            method,
            ..Default::default()
        })
    }

    #[test]
    fn put_get_delete_cycle() {
        let mut s = store(TransferMethod::ByteExpress);
        assert_eq!(s.get(b"k").unwrap(), None);
        s.put(b"k", b"v1").unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap(), b"v1");
        s.put(b"k", b"v2-longer").unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap(), b"v2-longer");
        assert!(s.delete(b"k").unwrap());
        assert!(!s.delete(b"k").unwrap());
        assert_eq!(s.get(b"k").unwrap(), None);
    }

    #[test]
    fn all_methods_store_correctly() {
        for method in [
            TransferMethod::Prp,
            TransferMethod::BandSlim { embed_first: true },
            TransferMethod::ByteExpress,
            TransferMethod::hybrid_default(),
        ] {
            let mut s = store(method);
            for i in 0..50u32 {
                let key = format!("key-{i:03}");
                let value = vec![(i % 251) as u8; 20 + (i as usize * 7) % 200];
                s.put(key.as_bytes(), &value).unwrap();
            }
            for i in 0..50u32 {
                let key = format!("key-{i:03}");
                let expect = vec![(i % 251) as u8; 20 + (i as usize * 7) % 200];
                assert_eq!(
                    s.get(key.as_bytes()).unwrap().unwrap(),
                    expect,
                    "{method} key {key}"
                );
            }
        }
    }

    #[test]
    fn keys_iterator_lists_everything() {
        let mut s = store(TransferMethod::ByteExpress);
        let mut expect = Vec::new();
        for i in 0..300u32 {
            let key = format!("key-{i:05}");
            s.put(key.as_bytes(), b"x").unwrap();
            expect.push(key.into_bytes());
        }
        expect.sort();
        let keys = s.keys().unwrap();
        assert_eq!(keys, expect);
    }

    #[test]
    fn limits_enforced() {
        let mut s = store(TransferMethod::ByteExpress);
        assert_eq!(
            s.put(b"seventeen-bytes!!", b"v").unwrap_err(),
            KvError::KeyTooLong { len: 17 }
        );
        assert!(matches!(
            s.put(b"k", &vec![0; MAX_VALUE_LEN + 1]).unwrap_err(),
            KvError::ValueTooLarge { .. }
        ));
    }

    #[test]
    fn byteexpress_puts_generate_less_traffic_than_prp() {
        let run = |method| {
            let mut s = store(method);
            let before = s.device().traffic();
            for i in 0..100u32 {
                s.put(format!("k{i:04}").as_bytes(), &[7u8; 64]).unwrap();
            }
            s.device().traffic().since(&before).total_bytes()
        };
        let prp = run(TransferMethod::Prp);
        let bx = run(TransferMethod::ByteExpress);
        assert!(
            (1.0 - bx as f64 / prp as f64) > 0.85,
            "bx {bx} vs prp {prp}"
        );
    }

    #[test]
    fn device_stats_shared() {
        let mut s = store(TransferMethod::ByteExpress);
        s.put(b"a", b"1").unwrap();
        s.get(b"a").unwrap();
        s.get(b"missing").unwrap();
        let stats = s.device_stats();
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn nand_off_store_works() {
        let mut s = KvStore::open(KvStoreConfig {
            nand_io: false,
            ..Default::default()
        });
        for i in 0..100u32 {
            s.put(format!("k{i}").as_bytes(), format!("value {i}").as_bytes())
                .unwrap();
        }
        assert_eq!(s.get(b"k42").unwrap().unwrap(), b"value 42");
    }
}
