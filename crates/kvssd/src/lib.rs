//! # bx-kvssd — a key-value SSD on the ByteExpress stack
//!
//! The paper's first application substrate (§2.2.1, §4.3): a KV-SSD in the
//! style of iLSM-SSD / the iterator-extended KVSSD of Lee et al. — key-value
//! operations are encoded as vendor NVMe commands and delivered through the
//! passthrough path, with each PUT persisted individually (the fine-grained
//! persistence model the NVMe key-value extension defines).
//!
//! Two halves:
//!
//! * [`KvFirmware`] — device-side: a DRAM-staged, NAND-flushed value log
//!   with an in-memory index (BTree for deterministic iteration), entry
//!   headers on media for index recovery, and iterator support.
//! * [`KvStore`] — host-side: `put`/`get`/`delete`/`keys` over a
//!   [`byteexpress::Device`], with the transfer method chosen per store (the
//!   Fig 6 experiments swap PRP / BandSlim / ByteExpress here).
//!
//! Keys follow the NVMe KV convention of riding inside the command itself
//! (CDW10–13, up to 16 bytes, zero-padded); *values* are the transferred
//! payload — which is exactly the quantity the paper's Fig 1(a) shows to be
//! tens of bytes in production, and thus the quantity ByteExpress moves
//! inline.
//!
//! ## Example
//!
//! ```
//! use bx_kvssd::{KvStore, KvStoreConfig};
//! use byteexpress::TransferMethod;
//!
//! # fn main() -> Result<(), bx_kvssd::KvError> {
//! let mut store = KvStore::open(KvStoreConfig {
//!     method: TransferMethod::ByteExpress,
//!     ..Default::default()
//! });
//! store.put(b"user:42", b"inline value")?;
//! assert_eq!(store.get(b"user:42")?.as_deref(), Some(&b"inline value"[..]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod firmware;
pub mod lsm;
pub mod store;

pub use firmware::{KvDeviceStats, KvFirmware, MAX_KEY_LEN, MAX_VALUE_LEN};
pub use lsm::{LsmKvFirmware, LsmStats, KV_RANGE_SCAN_OPCODE};
pub use store::{KvEngine, KvError, KvStore, KvStoreConfig};
