//! Device-side key-value firmware.
//!
//! A log-structured value store: PUTs append `[key(16) | len(2)]` headers +
//! value bytes into a DRAM staging page; full pages flush to NAND through
//! the FTL (when NAND I/O is enabled). The key index lives in device DRAM
//! (a `BTreeMap`, deterministic iteration for the iterator command) and can
//! be rebuilt from the on-media headers after a simulated power cycle
//! ([`KvFirmware::recover_index`] exercised via the `KvRecover` test hook).

use bx_hostsim::{Nanos, PAGE_SIZE};
use bx_nvme::{IoOpcode, Status, SubmissionEntry};
use bx_ssd::{CommandOutcome, DeviceDram, FirmwareCtx, FirmwareHandler};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Maximum key length (keys ride in CDW10–13).
pub const MAX_KEY_LEN: usize = 16;

/// Maximum value length (one log page minus the entry header).
pub const MAX_VALUE_LEN: usize = PAGE_SIZE - ENTRY_HEADER;

/// Per-entry on-media header: 16-byte padded key + 2-byte value length.
const ENTRY_HEADER: usize = MAX_KEY_LEN + 2;

/// A key padded to the fixed wire width.
pub type PaddedKey = [u8; MAX_KEY_LEN];

/// Pads a key to the 16-byte wire format.
///
/// # Panics
///
/// Panics if the key exceeds [`MAX_KEY_LEN`] (host API validates first).
pub fn pad_key(key: &[u8]) -> PaddedKey {
    assert!(key.len() <= MAX_KEY_LEN, "key too long");
    let mut out = [0u8; MAX_KEY_LEN];
    out[..key.len()].copy_from_slice(key);
    out
}

/// Reads the padded key out of a KV command's CDW10–13.
pub fn key_from_sqe(sqe: &SubmissionEntry) -> PaddedKey {
    let mut out = [0u8; MAX_KEY_LEN];
    for i in 0..4 {
        out[i * 4..i * 4 + 4].copy_from_slice(&sqe.cdw(10 + i).to_le_bytes());
    }
    out
}

/// Writes a padded key into a command's CDW10–13 (host side).
pub fn key_into_cdws(key: &PaddedKey, cdw10_15: &mut [u32; 6]) {
    for i in 0..4 {
        cdw10_15[i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueLoc {
    /// Still in the DRAM staging page.
    Staged { off: usize, len: usize },
    /// Flushed to NAND at `lpn`, byte offset `off` within the page.
    Flushed { lpn: u64, off: usize, len: usize },
}

/// Device-side operation counters, shared with the host store handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvDeviceStats {
    /// PUT commands handled.
    pub puts: u64,
    /// GET commands handled.
    pub gets: u64,
    /// GETs that found the key.
    pub hits: u64,
    /// DELETE commands handled.
    pub deletes: u64,
    /// Staging pages flushed to NAND.
    pub flushes: u64,
    /// Value bytes accepted.
    pub value_bytes_in: u64,
}

/// Firmware timing constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvTiming {
    /// Index lookup/insert cost.
    pub index_op: Nanos,
    /// Appending a value into the staging page.
    pub log_append: Nanos,
    /// Reading a staged value from device DRAM.
    pub dram_read: Nanos,
}

impl Default for KvTiming {
    fn default() -> Self {
        KvTiming {
            index_op: Nanos::from_ns(150),
            log_append: Nanos::from_ns(100),
            dram_read: Nanos::from_ns(200),
        }
    }
}

/// The key-value firmware personality.
#[derive(Debug)]
pub struct KvFirmware {
    nand_io: bool,
    /// Write-through durability: every PUT re-programs the partial staging
    /// page to NAND before acking, so acked values survive a power cut.
    durable_puts: bool,
    timing: KvTiming,
    index: BTreeMap<PaddedKey, ValueLoc>,
    /// Staging page region in device DRAM.
    staging_off: usize,
    staging_used: usize,
    /// Keys whose values sit in the current staging page.
    staged_keys: Vec<PaddedKey>,
    /// Next log LPN to flush into.
    next_lpn: u64,
    /// With NAND off, flushed pages are retained in a DRAM log region
    /// instead (pure-transfer benchmarking still gets correct GETs).
    dram_log_off: usize,
    dram_log_pages: usize,
    stats: Rc<RefCell<KvDeviceStats>>,
}

impl KvFirmware {
    /// Creates the firmware, claiming its DRAM regions. `nand_io = false`
    /// keeps the value log entirely in device DRAM (the paper's NAND-off
    /// measurement mode).
    pub fn new(dram: &mut DeviceDram, nand_io: bool) -> Self {
        Self::with_stats(
            dram,
            nand_io,
            Rc::new(RefCell::new(KvDeviceStats::default())),
        )
    }

    /// Like [`KvFirmware::new`], sharing `stats` with the host-side handle.
    pub fn with_stats(
        dram: &mut DeviceDram,
        nand_io: bool,
        stats: Rc<RefCell<KvDeviceStats>>,
    ) -> Self {
        let staging = dram
            .alloc_region("kv-staging", PAGE_SIZE)
            .expect("device DRAM too small for KV staging");
        // DRAM-resident log for NAND-off mode: half the remaining DRAM.
        let log_pages = (dram.remaining() / 2) / PAGE_SIZE;
        let log = dram
            .alloc_region("kv-dram-log", log_pages * PAGE_SIZE)
            .expect("device DRAM too small for KV log");
        KvFirmware {
            nand_io,
            durable_puts: false,
            timing: KvTiming::default(),
            index: BTreeMap::new(),
            staging_off: staging.offset,
            staging_used: 0,
            staged_keys: Vec::new(),
            next_lpn: 0,
            dram_log_off: log.offset,
            dram_log_pages: log_pages,
            stats,
        }
    }

    /// The shared statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<KvDeviceStats>> {
        Rc::clone(&self.stats)
    }

    /// Enables write-through durable PUTs: before a PUT is acknowledged the
    /// partial staging page is re-programmed to the current log LPN, so the
    /// ack implies durability (the durable-linearizability contract). Costs
    /// a NAND program per PUT — the price the default volatile-staging mode
    /// avoids. Requires `nand_io`; meaningless (and ignored) without it,
    /// since the DRAM log is itself volatile.
    pub fn set_durable_puts(&mut self, on: bool) {
        self.durable_puts = on;
    }

    /// Flushes the staging page. Returns the completion instant.
    fn flush_staging(&mut self, ctx: &mut FirmwareCtx<'_>, now: Nanos) -> Result<Nanos, Status> {
        if self.staging_used == 0 {
            return Ok(now);
        }
        let lpn = self.next_lpn;
        let page = ctx
            .dram
            .read(self.staging_off, PAGE_SIZE)
            .map_err(|_| Status::InternalError)?
            .to_vec();
        let done = if self.nand_io {
            if lpn >= ctx.ftl.capacity_pages() {
                return Err(Status::CapacityExceeded);
            }
            ctx.ftl
                .write(lpn, &page, ctx.nand, now)
                .map_err(|_| Status::InternalError)?
        } else {
            if (lpn as usize) >= self.dram_log_pages {
                return Err(Status::CapacityExceeded);
            }
            ctx.dram
                .write(self.dram_log_off + lpn as usize * PAGE_SIZE, &page)
                .map_err(|_| Status::InternalError)?;
            now + self.timing.log_append
        };
        self.next_lpn += 1;
        for key in self.staged_keys.drain(..) {
            if let Some(ValueLoc::Staged { off, len }) = self.index.get(&key).copied() {
                self.index.insert(key, ValueLoc::Flushed { lpn, off, len });
            }
        }
        self.staging_used = 0;
        // Zero the staging page so recovery never replays stale entry
        // headers left over from the previous fill.
        ctx.dram
            .write(self.staging_off, &[0u8; PAGE_SIZE])
            .map_err(|_| Status::InternalError)?;
        self.stats.borrow_mut().flushes += 1;
        Ok(done)
    }

    fn put(&mut self, ctx: &mut FirmwareCtx<'_>, key: PaddedKey, value: &[u8]) -> CommandOutcome {
        let mut now = ctx.now + self.timing.index_op + self.timing.log_append;
        if value.len() > MAX_VALUE_LEN {
            return CommandOutcome::fail(Status::KvInvalidSize, now);
        }
        let entry = ENTRY_HEADER + value.len();
        if self.staging_used + entry > PAGE_SIZE {
            match self.flush_staging(ctx, now) {
                Ok(t) => now = t,
                Err(s) => return CommandOutcome::fail(s, now),
            }
        }
        // On-media entry header enables index recovery after power cycles.
        let off = self.staging_used;
        let mut header = [0u8; ENTRY_HEADER];
        header[..MAX_KEY_LEN].copy_from_slice(&key);
        header[MAX_KEY_LEN..].copy_from_slice(&(value.len() as u16).to_le_bytes());
        if ctx.dram.write(self.staging_off + off, &header).is_err()
            || ctx
                .dram
                .write(self.staging_off + off + ENTRY_HEADER, value)
                .is_err()
        {
            return CommandOutcome::fail(Status::InternalError, now);
        }
        self.staging_used += entry;
        self.index.insert(
            key,
            ValueLoc::Staged {
                off: off + ENTRY_HEADER,
                len: value.len(),
            },
        );
        self.staged_keys.push(key);
        // Write-through durability: land the partial staging page at the
        // current log LPN before acking. The FTL journals the remap and the
        // ack waits for `max(program done, record durable)`, so a later
        // power cut can at worst fall back to the previous write-through of
        // the same LPN — exactly the last acked state.
        if self.durable_puts && self.nand_io {
            if self.next_lpn >= ctx.ftl.capacity_pages() {
                return CommandOutcome::fail(Status::CapacityExceeded, now);
            }
            let page = match ctx.dram.read(self.staging_off, PAGE_SIZE) {
                Ok(p) => p.to_vec(),
                Err(_) => return CommandOutcome::fail(Status::InternalError, now),
            };
            match ctx.ftl.write(self.next_lpn, &page, ctx.nand, now) {
                Ok(t) => now = t,
                Err(_) => return CommandOutcome::fail(Status::InternalError, now),
            }
        }
        let mut stats = self.stats.borrow_mut();
        stats.puts += 1;
        stats.value_bytes_in += value.len() as u64;
        CommandOutcome::ok(now)
    }

    fn get(&mut self, ctx: &mut FirmwareCtx<'_>, key: PaddedKey) -> CommandOutcome {
        let now = ctx.now + self.timing.index_op;
        self.stats.borrow_mut().gets += 1;
        let Some(loc) = self.index.get(&key).copied() else {
            return CommandOutcome::fail(Status::KvKeyNotFound, now);
        };
        self.stats.borrow_mut().hits += 1;
        let (bytes, done) = match loc {
            ValueLoc::Staged { off, len } => {
                let data = match ctx.dram.read(self.staging_off + off, len) {
                    Ok(d) => d.to_vec(),
                    Err(_) => return CommandOutcome::fail(Status::InternalError, now),
                };
                (data, now + self.timing.dram_read)
            }
            ValueLoc::Flushed { lpn, off, len } => {
                if self.nand_io {
                    match ctx.ftl.read(lpn, ctx.nand, now) {
                        Ok((page, t)) => (page[off..off + len].to_vec(), t),
                        Err(_) => return CommandOutcome::fail(Status::InternalError, now),
                    }
                } else {
                    let base = self.dram_log_off + lpn as usize * PAGE_SIZE;
                    match ctx.dram.read(base + off, len) {
                        Ok(d) => (d.to_vec(), now + self.timing.dram_read),
                        Err(_) => return CommandOutcome::fail(Status::InternalError, now),
                    }
                }
            }
        };
        CommandOutcome {
            status: Status::Success,
            result: bytes.len() as u32,
            response: Some(bytes),
            complete_at: done,
        }
    }

    fn delete(&mut self, ctx: &FirmwareCtx<'_>, key: PaddedKey) -> CommandOutcome {
        let now = ctx.now + self.timing.index_op;
        self.stats.borrow_mut().deletes += 1;
        if self.index.remove(&key).is_some() {
            CommandOutcome::ok(now)
        } else {
            CommandOutcome::fail(Status::KvKeyNotFound, now)
        }
    }

    /// Iterator command: returns up to as many 16-byte keys as fit in the
    /// response buffer, starting from index `cursor` (CDW14); the response
    /// is `[count u32][next_cursor u32][key ×16B]·count`, `next_cursor` is
    /// `u32::MAX` when the scan is done.
    fn iterate(&mut self, ctx: &FirmwareCtx<'_>, cursor: u32, buf_len: usize) -> CommandOutcome {
        let now = ctx.now + self.timing.index_op;
        if buf_len < 8 + MAX_KEY_LEN {
            return CommandOutcome::fail(Status::InvalidField, now);
        }
        let max_keys = (buf_len - 8) / MAX_KEY_LEN;
        let keys: Vec<PaddedKey> = self
            .index
            .keys()
            .skip(cursor as usize)
            .take(max_keys)
            .copied()
            .collect();
        let next = if (cursor as usize + keys.len()) < self.index.len() {
            cursor + keys.len() as u32
        } else {
            u32::MAX
        };
        let mut resp = Vec::with_capacity(8 + keys.len() * MAX_KEY_LEN);
        resp.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        resp.extend_from_slice(&next.to_le_bytes());
        for k in &keys {
            resp.extend_from_slice(k);
        }
        CommandOutcome {
            status: Status::Success,
            result: keys.len() as u32,
            response: Some(resp),
            complete_at: now + self.timing.dram_read,
        }
    }

    /// Bulk PUT: `[count u32]` then `[key 16B][vlen u16][value]` per entry —
    /// the batching alternative of §2.2.1 ("may not always be applicable,
    /// particularly in use cases where fine-grained persistence is desired").
    fn batch_put(&mut self, ctx: &mut FirmwareCtx<'_>, batch: &[u8]) -> CommandOutcome {
        if batch.len() < 4 {
            return CommandOutcome::fail(Status::InvalidField, ctx.now);
        }
        let count = u32::from_le_bytes([batch[0], batch[1], batch[2], batch[3]]) as usize;
        let mut off = 4usize;
        let mut last = CommandOutcome::ok(ctx.now);
        for _ in 0..count {
            if off + MAX_KEY_LEN + 2 > batch.len() {
                return CommandOutcome::fail(Status::InvalidField, ctx.now);
            }
            let mut key = [0u8; MAX_KEY_LEN];
            key.copy_from_slice(&batch[off..off + MAX_KEY_LEN]);
            let vlen = u16::from_le_bytes([batch[off + MAX_KEY_LEN], batch[off + MAX_KEY_LEN + 1]])
                as usize;
            off += MAX_KEY_LEN + 2;
            if off + vlen > batch.len() {
                return CommandOutcome::fail(Status::InvalidField, ctx.now);
            }
            let value = batch[off..off + vlen].to_vec();
            off += vlen;
            ctx.now = last.complete_at;
            last = self.put(ctx, key, &value);
            if !last.status.is_success() {
                return last;
            }
        }
        CommandOutcome {
            result: count as u32,
            ..last
        }
    }

    /// Rebuilds the index by scanning entry headers in the persisted log —
    /// a simulated post-power-cycle recovery. Returns the number of entries
    /// recovered.
    ///
    /// `include_staging` distinguishes a graceful restart (device DRAM
    /// intact: the staging page is replayed too) from a crash/power loss
    /// (`false`: only NAND-persisted pages survive; entries still in the
    /// DRAM staging page are honestly lost, matching the durability
    /// semantics of any volatile write buffer without a capacitor).
    ///
    /// Recovery replays entries in log order, so later PUTs win, like any
    /// log-structured store.
    pub fn recover_index(&mut self, ctx: &mut FirmwareCtx<'_>, include_staging: bool) -> usize {
        self.index.clear();
        if !include_staging {
            // Power loss: the volatile staging page is gone.
            self.staging_used = 0;
            self.staged_keys.clear();
            let _ = ctx.dram.write(self.staging_off, &[0u8; PAGE_SIZE]);
        }
        let mut recovered = 0;
        let mut now = ctx.now;
        for lpn in 0..self.next_lpn {
            let page: Vec<u8> = if self.nand_io {
                match ctx.ftl.read(lpn, ctx.nand, now) {
                    Ok((p, t)) => {
                        now = t;
                        p
                    }
                    Err(_) => continue,
                }
            } else {
                match ctx
                    .dram
                    .read(self.dram_log_off + lpn as usize * PAGE_SIZE, PAGE_SIZE)
                {
                    Ok(p) => p.to_vec(),
                    Err(_) => continue,
                }
            };
            recovered += Self::replay_page(&mut self.index, &page, |off, len| ValueLoc::Flushed {
                lpn,
                off,
                len,
            });
        }
        // Staging page last: newest entries win.
        if include_staging && self.staging_used > 0 {
            if let Ok(page) = ctx.dram.read(self.staging_off, PAGE_SIZE) {
                let page = page.to_vec();
                recovered += Self::replay_page(&mut self.index, &page, |off, len| {
                    ValueLoc::Staged { off, len }
                });
            }
        }
        recovered
    }

    fn replay_page(
        index: &mut BTreeMap<PaddedKey, ValueLoc>,
        page: &[u8],
        mut loc: impl FnMut(usize, usize) -> ValueLoc,
    ) -> usize {
        let mut off = 0;
        let mut n = 0;
        while off + ENTRY_HEADER <= page.len() {
            let mut key = [0u8; MAX_KEY_LEN];
            key.copy_from_slice(&page[off..off + MAX_KEY_LEN]);
            let len =
                u16::from_le_bytes([page[off + MAX_KEY_LEN], page[off + MAX_KEY_LEN + 1]]) as usize;
            if key == [0u8; MAX_KEY_LEN] && len == 0 {
                break; // end of log page
            }
            if off + ENTRY_HEADER + len > page.len() {
                break; // torn entry
            }
            index.insert(key, loc(off + ENTRY_HEADER, len));
            off += ENTRY_HEADER + len;
            n += 1;
        }
        n
    }

    /// Number of live keys.
    pub fn key_count(&self) -> usize {
        self.index.len()
    }
}

impl FirmwareHandler for KvFirmware {
    fn handle(
        &mut self,
        mut ctx: FirmwareCtx<'_>,
        sqe: &SubmissionEntry,
        payload: Option<&[u8]>,
    ) -> CommandOutcome {
        let key = key_from_sqe(sqe);
        match sqe.io_opcode() {
            Some(IoOpcode::KvPut) => {
                let Some(value) = payload else {
                    return CommandOutcome::fail(Status::InvalidField, ctx.now);
                };
                self.put(&mut ctx, key, value)
            }
            Some(IoOpcode::KvGet) => self.get(&mut ctx, key),
            Some(IoOpcode::KvDelete) => self.delete(&ctx, key),
            Some(IoOpcode::KvIter) => {
                let cursor = sqe.cdw(14);
                let buf_len = sqe.data_len() as usize;
                self.iterate(&ctx, cursor, buf_len)
            }
            Some(IoOpcode::KvBatchPut) => {
                let Some(batch) = payload else {
                    return CommandOutcome::fail(Status::InvalidField, ctx.now);
                };
                self.batch_put(&mut ctx, batch)
            }
            Some(IoOpcode::KvRecover) => {
                let include_staging = sqe.cdw(14) & 1 == 1;
                let recovered = self.recover_index(&mut ctx, include_staging);
                CommandOutcome {
                    status: Status::Success,
                    result: recovered as u32,
                    response: None,
                    complete_at: ctx.now,
                }
            }
            _ => CommandOutcome::fail(Status::InvalidOpcode, ctx.now),
        }
    }

    fn on_power_cycle(&mut self, mut ctx: FirmwareCtx<'_>) {
        // Volatile cursors are gone with DRAM. The log LPN frontier is
        // re-derived from the recovered FTL map: the log is written
        // strictly sequentially, so the mapped prefix IS the persisted log.
        self.staging_used = 0;
        self.staged_keys.clear();
        self.next_lpn = 0;
        if self.nand_io {
            while self.next_lpn < ctx.ftl.capacity_pages() && ctx.ftl.is_mapped(self.next_lpn) {
                self.next_lpn += 1;
            }
        }
        // Hard power loss: never replay the (wiped) staging page.
        self.recover_index(&mut ctx, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_ssd::{Ftl, NandArray, NandConfig};

    struct Rig {
        nand: NandArray,
        ftl: Ftl,
        dram: DeviceDram,
        fw: KvFirmware,
    }

    fn rig(nand_io: bool) -> Rig {
        let nand = NandArray::new(NandConfig::small());
        let ftl = Ftl::new(&nand, 0.25);
        let mut dram = DeviceDram::new(4 << 20);
        let fw = KvFirmware::new(&mut dram, nand_io);
        Rig {
            nand,
            ftl,
            dram,
            fw,
        }
    }

    fn put(r: &mut Rig, key: &[u8], value: &[u8]) -> CommandOutcome {
        let mut sqe = SubmissionEntry::io(IoOpcode::KvPut, 1, 1);
        let mut cdws = [0u32; 6];
        key_into_cdws(&pad_key(key), &mut cdws);
        for (i, v) in cdws.iter().enumerate() {
            sqe.set_cdw(10 + i, *v);
        }
        sqe.set_data_len(value.len() as u32);
        r.fw.handle(
            FirmwareCtx {
                nand: &mut r.nand,
                ftl: &mut r.ftl,
                dram: &mut r.dram,
                now: Nanos::ZERO,
            },
            &sqe,
            Some(value),
        )
    }

    fn get(r: &mut Rig, key: &[u8]) -> CommandOutcome {
        let mut sqe = SubmissionEntry::io(IoOpcode::KvGet, 1, 1);
        let mut cdws = [0u32; 6];
        key_into_cdws(&pad_key(key), &mut cdws);
        for (i, v) in cdws.iter().enumerate() {
            sqe.set_cdw(10 + i, *v);
        }
        r.fw.handle(
            FirmwareCtx {
                nand: &mut r.nand,
                ftl: &mut r.ftl,
                dram: &mut r.dram,
                now: Nanos::ZERO,
            },
            &sqe,
            None,
        )
    }

    #[test]
    fn put_get_round_trip() {
        let mut r = rig(true);
        assert!(put(&mut r, b"alpha", b"value-1").status.is_success());
        let out = get(&mut r, b"alpha");
        assert!(out.status.is_success());
        assert_eq!(out.response.unwrap(), b"value-1");
        assert_eq!(out.result, 7);
    }

    #[test]
    fn get_missing_key() {
        let mut r = rig(true);
        assert_eq!(get(&mut r, b"nope").status, Status::KvKeyNotFound);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut r = rig(true);
        put(&mut r, b"k", b"old");
        put(&mut r, b"k", b"newer-value");
        assert_eq!(get(&mut r, b"k").response.unwrap(), b"newer-value");
    }

    #[test]
    fn staging_flushes_to_nand_and_reads_back() {
        let mut r = rig(true);
        // Fill well past one staging page.
        for i in 0..200u32 {
            let key = format!("key-{i:04}");
            let value = vec![(i % 256) as u8; 100];
            assert!(
                put(&mut r, key.as_bytes(), &value).status.is_success(),
                "{i}"
            );
        }
        assert!(r.fw.stats_handle().borrow().flushes > 0);
        assert!(r.nand.stats().programs > 0);
        for i in (0..200u32).step_by(17) {
            let key = format!("key-{i:04}");
            let out = get(&mut r, key.as_bytes());
            assert!(out.status.is_success(), "{key}");
            assert_eq!(out.response.unwrap(), vec![(i % 256) as u8; 100]);
        }
    }

    #[test]
    fn nand_off_mode_still_correct() {
        let mut r = rig(false);
        for i in 0..200u32 {
            let key = format!("key-{i:04}");
            put(&mut r, key.as_bytes(), format!("val-{i}").as_bytes());
        }
        assert_eq!(r.nand.stats().programs, 0, "NAND untouched");
        let out = get(&mut r, b"key-0123");
        assert_eq!(out.response.unwrap(), b"val-123");
    }

    #[test]
    fn delete_removes_key() {
        let mut r = rig(true);
        put(&mut r, b"gone", b"v");
        let mut sqe = SubmissionEntry::io(IoOpcode::KvDelete, 1, 1);
        let mut cdws = [0u32; 6];
        key_into_cdws(&pad_key(b"gone"), &mut cdws);
        for (i, v) in cdws.iter().enumerate() {
            sqe.set_cdw(10 + i, *v);
        }
        let out = r.fw.handle(
            FirmwareCtx {
                nand: &mut r.nand,
                ftl: &mut r.ftl,
                dram: &mut r.dram,
                now: Nanos::ZERO,
            },
            &sqe,
            None,
        );
        assert!(out.status.is_success());
        assert_eq!(get(&mut r, b"gone").status, Status::KvKeyNotFound);
    }

    #[test]
    fn oversized_value_rejected() {
        let mut r = rig(true);
        let out = put(&mut r, b"big", &vec![0; MAX_VALUE_LEN + 1]);
        assert_eq!(out.status, Status::KvInvalidSize);
    }

    #[test]
    fn index_recovery_after_power_cycle() {
        let mut r = rig(true);
        for i in 0..120u32 {
            let key = format!("key-{i:04}");
            put(&mut r, key.as_bytes(), format!("value-{i}").as_bytes());
        }
        let before = r.fw.key_count();
        // Simulated power cycle: wipe the index, rebuild from media.
        let recovered = r.fw.recover_index(
            &mut FirmwareCtx {
                nand: &mut r.nand,
                ftl: &mut r.ftl,
                dram: &mut r.dram,
                now: Nanos::ZERO,
            },
            true,
        );
        assert!(recovered >= before, "recovered {recovered} of {before}");
        assert_eq!(r.fw.key_count(), before);
        assert_eq!(get(&mut r, b"key-0077").response.unwrap(), b"value-77");
    }

    #[test]
    fn key_codec_round_trip() {
        let key = pad_key(b"hello-world!");
        let mut cdws = [0u32; 6];
        key_into_cdws(&key, &mut cdws);
        let mut sqe = SubmissionEntry::io(IoOpcode::KvGet, 1, 1);
        for (i, v) in cdws.iter().enumerate() {
            sqe.set_cdw(10 + i, *v);
        }
        assert_eq!(key_from_sqe(&sqe), key);
    }
}
