//! An LSM-tree key-value firmware — the device-side engine of the paper's
//! KV-SSD baseline (Lee et al., SYSTOR '23: an iterator-interface-extended
//! LSM KVSSD), as an alternative to the hash-indexed log of
//! [`crate::KvFirmware`].
//!
//! Structure:
//!
//! * a DRAM **memtable** (`BTreeMap`, tombstones as `None`) bounded by a byte
//!   budget;
//! * **sorted runs** on NAND: L0 holds flushed memtables (overlapping key
//!   ranges, newest last), L1 is a single merged, tombstone-free run;
//! * **compaction**: when L0 exceeds its run budget, all of L0 merges with
//!   L1 into a fresh L1 run, and the old runs' pages are TRIMmed back to the
//!   FTL — so compaction traffic and GC interact the way they do on a real
//!   device, and put-latency tails show flush/compaction spikes;
//! * **range scans**: the `KvRangeScan` command streams ordered key-value
//!   pairs from any start key — the iterator extension that motivates the
//!   baseline KVSSD.
//!
//! Durability note: like the real device's DRAM memtable, unflushed entries
//! are volatile; this engine does not implement index recovery (the
//! [`crate::KvFirmware`] engine demonstrates log-replay recovery).

use crate::firmware::{key_from_sqe, KvTiming, PaddedKey, MAX_KEY_LEN, MAX_VALUE_LEN};
use bx_hostsim::{Nanos, PAGE_SIZE};
use bx_nvme::{IoOpcode, Status, SubmissionEntry};
use bx_ssd::{CommandOutcome, DeviceDram, FirmwareCtx, FirmwareHandler};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Entries produced by a range scan, in key order.
type ScanResults = Vec<(PaddedKey, Vec<u8>)>;

/// Vendor opcode for ordered range scans (LSM engine only).
pub const KV_RANGE_SCAN_OPCODE: u8 = 0xC7;

/// Entry header inside a run page: key + flags + value length.
const RUN_ENTRY_HEADER: usize = MAX_KEY_LEN + 1 + 2;
const FLAG_TOMBSTONE: u8 = 1;

/// How many L0 runs accumulate before compaction into L1.
const L0_RUN_BUDGET: usize = 4;

/// LSM activity counters, shared with the host handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// PUT commands handled.
    pub puts: u64,
    /// GET commands handled.
    pub gets: u64,
    /// GETs that found a (live) key.
    pub hits: u64,
    /// DELETE commands handled (tombstone writes).
    pub deletes: u64,
    /// Memtable flushes (L0 run creations).
    pub flushes: u64,
    /// L0→L1 compactions.
    pub compactions: u64,
    /// Run pages written (flush + compaction; write amplification source).
    pub pages_written: u64,
    /// Run pages read (gets + scans + compaction input).
    pub pages_read: u64,
    /// Range-scan commands served.
    pub range_scans: u64,
}

#[derive(Debug, Clone)]
struct RunMeta {
    first: PaddedKey,
    last: PaddedKey,
    pages: Vec<u64>,
    /// First key of each page, for page-level binary search.
    page_index: Vec<PaddedKey>,
    /// Entry count (reported by stats/debugging; not used on hot paths).
    #[allow(dead_code)]
    entries: usize,
}

/// The LSM firmware personality.
#[derive(Debug)]
pub struct LsmKvFirmware {
    nand_io: bool,
    timing: KvTiming,
    memtable: BTreeMap<PaddedKey, Option<Vec<u8>>>,
    memtable_bytes: usize,
    memtable_budget: usize,
    /// L0 runs, oldest first.
    l0: Vec<RunMeta>,
    /// The single merged L1 run.
    l1: Option<RunMeta>,
    next_lpn: u64,
    free_lpns: Vec<u64>,
    /// NAND-off fallback: run pages live in a DRAM log region.
    dram_log_off: usize,
    dram_log_pages: usize,
    stats: Rc<RefCell<LsmStats>>,
}

impl LsmKvFirmware {
    /// Creates the firmware with a 32 KB memtable budget.
    pub fn new(dram: &mut DeviceDram, nand_io: bool) -> Self {
        Self::with_stats(dram, nand_io, Rc::new(RefCell::new(LsmStats::default())))
    }

    /// Like [`LsmKvFirmware::new`], sharing `stats` with the host handle.
    pub fn with_stats(dram: &mut DeviceDram, nand_io: bool, stats: Rc<RefCell<LsmStats>>) -> Self {
        let log_pages = (dram.remaining() / 2) / PAGE_SIZE;
        let log = dram
            .alloc_region("lsm-dram-log", log_pages * PAGE_SIZE)
            .expect("device DRAM too small for LSM page log");
        LsmKvFirmware {
            nand_io,
            timing: KvTiming::default(),
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            memtable_budget: 32 << 10,
            l0: Vec::new(),
            l1: None,
            next_lpn: 0,
            free_lpns: Vec::new(),
            dram_log_off: log.offset,
            dram_log_pages: log_pages,
            stats,
        }
    }

    /// The shared statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<LsmStats>> {
        Rc::clone(&self.stats)
    }

    /// Live key count is not cheaply available in an LSM; exposed for tests:
    /// current memtable entry count.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    // --- page backend (NAND via FTL, or the DRAM log in NAND-off mode) ---

    fn alloc_lpn(&mut self) -> u64 {
        self.free_lpns.pop().unwrap_or_else(|| {
            let l = self.next_lpn;
            self.next_lpn += 1;
            l
        })
    }

    fn write_page(
        &mut self,
        ctx: &mut FirmwareCtx<'_>,
        lpn: u64,
        page: &[u8],
        now: Nanos,
    ) -> Result<Nanos, Status> {
        self.stats.borrow_mut().pages_written += 1;
        if self.nand_io {
            if lpn >= ctx.ftl.capacity_pages() {
                return Err(Status::CapacityExceeded);
            }
            ctx.ftl
                .write(lpn, page, ctx.nand, now)
                .map_err(|_| Status::InternalError)
        } else {
            if lpn as usize >= self.dram_log_pages {
                return Err(Status::CapacityExceeded);
            }
            ctx.dram
                .write(self.dram_log_off + lpn as usize * PAGE_SIZE, page)
                .map_err(|_| Status::InternalError)?;
            Ok(now + self.timing.log_append)
        }
    }

    fn read_page(
        &self,
        ctx: &mut FirmwareCtx<'_>,
        lpn: u64,
        now: Nanos,
    ) -> Result<(Vec<u8>, Nanos), Status> {
        self.stats.borrow_mut().pages_read += 1;
        if self.nand_io {
            ctx.ftl
                .read(lpn, ctx.nand, now)
                .map_err(|_| Status::InternalError)
        } else {
            let page = ctx
                .dram
                .read(self.dram_log_off + lpn as usize * PAGE_SIZE, PAGE_SIZE)
                .map_err(|_| Status::InternalError)?
                .to_vec();
            Ok((page, now + self.timing.dram_read))
        }
    }

    fn free_run(&mut self, ctx: &mut FirmwareCtx<'_>, run: RunMeta) {
        for lpn in run.pages {
            if self.nand_io {
                let _ = ctx.ftl.trim(lpn, ctx.now);
            }
            self.free_lpns.push(lpn);
        }
    }

    // --- run encode/decode ---

    fn encode_run(entries: &[(PaddedKey, Option<Vec<u8>>)]) -> (Vec<Vec<u8>>, Vec<PaddedKey>) {
        let mut pages = Vec::new();
        let mut page_index = Vec::new();
        let mut page = vec![0u8; PAGE_SIZE];
        let mut off = 4usize;
        let mut count = 0u32;
        let mut first_in_page: Option<PaddedKey> = None;

        let finish = |page: &mut Vec<u8>,
                      off: &mut usize,
                      count: &mut u32,
                      first: &mut Option<PaddedKey>,
                      pages: &mut Vec<Vec<u8>>,
                      page_index: &mut Vec<PaddedKey>| {
            if *count > 0 {
                page[..4].copy_from_slice(&count.to_le_bytes());
                pages.push(std::mem::replace(page, vec![0u8; PAGE_SIZE]));
                // bx-lint: allow(transitive-panic, reason = "count > 0 implies first was set when the first entry was appended to this page")
                page_index.push(first.take().expect("page has entries"));
                *off = 4;
                *count = 0;
            }
        };

        for (key, value) in entries {
            let vlen = value.as_ref().map_or(0, Vec::len);
            let need = RUN_ENTRY_HEADER + vlen;
            if off + need > PAGE_SIZE {
                finish(
                    &mut page,
                    &mut off,
                    &mut count,
                    &mut first_in_page,
                    &mut pages,
                    &mut page_index,
                );
            }
            if first_in_page.is_none() {
                first_in_page = Some(*key);
            }
            page[off..off + MAX_KEY_LEN].copy_from_slice(key);
            page[off + MAX_KEY_LEN] = if value.is_none() { FLAG_TOMBSTONE } else { 0 };
            page[off + MAX_KEY_LEN + 1..off + RUN_ENTRY_HEADER]
                .copy_from_slice(&(vlen as u16).to_le_bytes());
            if let Some(v) = value {
                page[off + RUN_ENTRY_HEADER..off + need].copy_from_slice(v);
            }
            off += need;
            count += 1;
        }
        finish(
            &mut page,
            &mut off,
            &mut count,
            &mut first_in_page,
            &mut pages,
            &mut page_index,
        );
        (pages, page_index)
    }

    fn decode_page(page: &[u8]) -> Vec<(PaddedKey, Option<Vec<u8>>)> {
        let count = u32::from_le_bytes([page[0], page[1], page[2], page[3]]) as usize;
        let mut out = Vec::with_capacity(count);
        let mut off = 4usize;
        for _ in 0..count {
            let mut key = [0u8; MAX_KEY_LEN];
            key.copy_from_slice(&page[off..off + MAX_KEY_LEN]);
            let tombstone = page[off + MAX_KEY_LEN] & FLAG_TOMBSTONE != 0;
            let vlen =
                u16::from_le_bytes([page[off + MAX_KEY_LEN + 1], page[off + MAX_KEY_LEN + 2]])
                    as usize;
            off += RUN_ENTRY_HEADER;
            let value = (!tombstone).then(|| page[off..off + vlen].to_vec());
            out.push((key, value));
            off += vlen;
        }
        out
    }

    // --- core operations ---

    fn write_run(
        &mut self,
        ctx: &mut FirmwareCtx<'_>,
        entries: &[(PaddedKey, Option<Vec<u8>>)],
        mut now: Nanos,
    ) -> Result<(RunMeta, Nanos), Status> {
        debug_assert!(!entries.is_empty());
        let (pages, page_index) = Self::encode_run(entries);
        let mut lpns = Vec::with_capacity(pages.len());
        for page in &pages {
            let lpn = self.alloc_lpn();
            now = self.write_page(ctx, lpn, page, now)?;
            lpns.push(lpn);
        }
        Ok((
            RunMeta {
                first: entries[0].0,
                last: entries[entries.len() - 1].0,
                pages: lpns,
                page_index,
                entries: entries.len(),
            },
            now,
        ))
    }

    fn flush_memtable(&mut self, ctx: &mut FirmwareCtx<'_>, now: Nanos) -> Result<Nanos, Status> {
        if self.memtable.is_empty() {
            return Ok(now);
        }
        let entries: Vec<(PaddedKey, Option<Vec<u8>>)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        let (run, mut now) = self.write_run(ctx, &entries, now)?;
        self.l0.push(run);
        self.stats.borrow_mut().flushes += 1;
        if self.l0.len() > L0_RUN_BUDGET {
            now = self.compact(ctx, now)?;
        }
        Ok(now)
    }

    /// Merges every L0 run with L1 into a fresh L1 run; tombstones drop out
    /// (L1 is the bottom level).
    fn compact(&mut self, ctx: &mut FirmwareCtx<'_>, mut now: Nanos) -> Result<Nanos, Status> {
        let mut merged: BTreeMap<PaddedKey, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest to newest: L1 first, then L0 runs in age order, so newer
        // versions overwrite older ones.
        let sources: Vec<RunMeta> = self
            .l1
            .take()
            .into_iter()
            .chain(std::mem::take(&mut self.l0))
            .collect();
        for run in &sources {
            for &lpn in &run.pages {
                let (page, t) = self.read_page(ctx, lpn, now)?;
                now = t;
                for (key, value) in Self::decode_page(&page) {
                    merged.insert(key, value);
                }
            }
        }
        // Bottom level: tombstones are resolved.
        let live: Vec<(PaddedKey, Option<Vec<u8>>)> =
            merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        for run in sources {
            self.free_run(ctx, run);
        }
        if !live.is_empty() {
            let (run, t) = self.write_run(ctx, &live, now)?;
            now = t;
            self.l1 = Some(run);
        }
        self.stats.borrow_mut().compactions += 1;
        Ok(now)
    }

    fn upsert(
        &mut self,
        ctx: &mut FirmwareCtx<'_>,
        key: PaddedKey,
        value: Option<Vec<u8>>,
    ) -> CommandOutcome {
        let mut now = ctx.now + self.timing.index_op;
        let entry_bytes = RUN_ENTRY_HEADER + value.as_ref().map_or(0, Vec::len);
        if let Some(v) = &value {
            if v.len() > MAX_VALUE_LEN {
                return CommandOutcome::fail(Status::KvInvalidSize, now);
            }
        }
        if self.memtable_bytes + entry_bytes > self.memtable_budget {
            match self.flush_memtable(ctx, now) {
                Ok(t) => now = t,
                Err(s) => return CommandOutcome::fail(s, now),
            }
        }
        // Replacements return the old entry's bytes to the budget.
        if let Some(old) = self.memtable.insert(key, value) {
            self.memtable_bytes -= RUN_ENTRY_HEADER + old.map_or(0, |v| v.len());
        }
        self.memtable_bytes += entry_bytes;
        CommandOutcome::ok(now + self.timing.log_append)
    }

    /// Looks `key` up through memtable → L0 (newest first) → L1.
    fn lookup(
        &self,
        ctx: &mut FirmwareCtx<'_>,
        key: &PaddedKey,
        mut now: Nanos,
    ) -> Result<(Option<Vec<u8>>, Nanos), Status> {
        if let Some(entry) = self.memtable.get(key) {
            return Ok((entry.clone(), now + self.timing.dram_read));
        }
        for run in self.l0.iter().rev().chain(self.l1.iter()) {
            if *key < run.first || *key > run.last {
                continue;
            }
            // Page-level binary search on first keys.
            let page_pos = match run.page_index.binary_search(key) {
                Ok(i) => i,
                Err(0) => continue,
                Err(i) => i - 1,
            };
            let (page, t) = self.read_page(ctx, run.pages[page_pos], now)?;
            now = t;
            for (k, v) in Self::decode_page(&page) {
                if k == *key {
                    return Ok((v, now));
                }
            }
        }
        Ok((None, now))
    }

    /// Ordered scan from `start` (inclusive): merges memtable and all runs
    /// with newest-wins semantics, skipping tombstones, until `limit`
    /// entries or sources are exhausted.
    fn range_scan(
        &self,
        ctx: &mut FirmwareCtx<'_>,
        start: PaddedKey,
        limit: usize,
        mut now: Nanos,
    ) -> Result<(ScanResults, Nanos), Status> {
        // Merge via a BTreeMap seeded oldest→newest so newer versions win.
        let mut merged: BTreeMap<PaddedKey, Option<Vec<u8>>> = BTreeMap::new();
        let mut absorb_run =
            |run: &RunMeta, now: &mut Nanos, ctx: &mut FirmwareCtx<'_>| -> Result<(), Status> {
                if run.last < start {
                    return Ok(());
                }
                let start_page = match run.page_index.binary_search(&start) {
                    Ok(i) => i,
                    Err(0) => 0,
                    Err(i) => i - 1,
                };
                for &lpn in &run.pages[start_page..] {
                    let (page, t) = self.read_page(ctx, lpn, *now)?;
                    *now = t;
                    for (k, v) in Self::decode_page(&page) {
                        if k >= start {
                            merged.insert(k, v);
                        }
                    }
                    // Enough keys gathered to satisfy the limit even after
                    // tombstone removal? Keep a safety margin of one page.
                    if merged.len() >= limit * 2 + 64 {
                        break;
                    }
                }
                Ok(())
            };
        if let Some(l1) = &self.l1 {
            absorb_run(l1, &mut now, ctx)?;
        }
        for run in &self.l0 {
            absorb_run(run, &mut now, ctx)?;
        }
        for (k, v) in self.memtable.range(start..) {
            merged.insert(*k, v.clone());
        }
        let out: Vec<(PaddedKey, Vec<u8>)> = merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .take(limit)
            .collect();
        Ok((out, now + self.timing.dram_read))
    }
}

impl FirmwareHandler for LsmKvFirmware {
    fn handle(
        &mut self,
        mut ctx: FirmwareCtx<'_>,
        sqe: &SubmissionEntry,
        payload: Option<&[u8]>,
    ) -> CommandOutcome {
        let key = key_from_sqe(sqe);
        match sqe.io_opcode() {
            Some(IoOpcode::KvPut) => {
                let Some(value) = payload else {
                    return CommandOutcome::fail(Status::InvalidField, ctx.now);
                };
                let value = value.to_vec();
                let out = self.upsert(&mut ctx, key, Some(value));
                if out.status.is_success() {
                    self.stats.borrow_mut().puts += 1;
                }
                out
            }
            Some(IoOpcode::KvDelete) => {
                let out = self.upsert(&mut ctx, key, None);
                if out.status.is_success() {
                    self.stats.borrow_mut().deletes += 1;
                }
                out
            }
            Some(IoOpcode::KvGet) => {
                self.stats.borrow_mut().gets += 1;
                let start = ctx.now + self.timing.index_op;
                match self.lookup(&mut ctx, &key, start) {
                    Ok((Some(value), now)) => {
                        self.stats.borrow_mut().hits += 1;
                        CommandOutcome {
                            status: Status::Success,
                            result: value.len() as u32,
                            response: Some(value),
                            complete_at: now,
                        }
                    }
                    Ok((None, now)) => CommandOutcome::fail(Status::KvKeyNotFound, now),
                    Err(s) => CommandOutcome::fail(s, ctx.now),
                }
            }
            _ if sqe.opcode_raw() == KV_RANGE_SCAN_OPCODE => {
                self.stats.borrow_mut().range_scans += 1;
                let buf_len = sqe.data_len() as usize;
                if buf_len < 8 {
                    return CommandOutcome::fail(Status::InvalidField, ctx.now);
                }
                // Conservative entry budget: header + key per entry minimum.
                let limit = (sqe.cdw(14) as usize).clamp(1, 4096);
                let start = ctx.now + self.timing.index_op;
                match self.range_scan(&mut ctx, key, limit, start) {
                    Ok((entries, now)) => {
                        // Response: [count u32] then [key 16][vlen u16][value]*,
                        // truncated to what the buffer holds.
                        let mut resp = Vec::with_capacity(buf_len.min(1 << 20));
                        resp.extend_from_slice(&0u32.to_le_bytes());
                        let mut count = 0u32;
                        for (k, v) in &entries {
                            let need = MAX_KEY_LEN + 2 + v.len();
                            if resp.len() + need > buf_len {
                                break;
                            }
                            resp.extend_from_slice(k);
                            resp.extend_from_slice(&(v.len() as u16).to_le_bytes());
                            resp.extend_from_slice(v);
                            count += 1;
                        }
                        resp[..4].copy_from_slice(&count.to_le_bytes());
                        CommandOutcome {
                            status: Status::Success,
                            result: count,
                            response: Some(resp),
                            complete_at: now,
                        }
                    }
                    Err(s) => CommandOutcome::fail(s, ctx.now),
                }
            }
            _ => CommandOutcome::fail(Status::InvalidOpcode, ctx.now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::pad_key;
    use bx_ssd::{Ftl, NandArray, NandConfig};

    struct Rig {
        nand: NandArray,
        ftl: Ftl,
        dram: DeviceDram,
        fw: LsmKvFirmware,
    }

    fn rig(nand_io: bool) -> Rig {
        let nand = NandArray::new(NandConfig::small());
        let ftl = Ftl::new(&nand, 0.25);
        let mut dram = DeviceDram::new(8 << 20);
        let fw = LsmKvFirmware::new(&mut dram, nand_io);
        Rig {
            nand,
            ftl,
            dram,
            fw,
        }
    }

    fn op(
        r: &mut Rig,
        opcode: u8,
        key: &[u8],
        payload: Option<&[u8]>,
        cdw14: u32,
        buf_len: u32,
    ) -> CommandOutcome {
        let mut sqe = SubmissionEntry::zeroed();
        sqe.set_opcode_raw(opcode);
        sqe.set_cid(1);
        sqe.set_nsid(1);
        let mut cdws = [0u32; 6];
        crate::firmware::key_into_cdws(&pad_key(key), &mut cdws);
        for (i, v) in cdws.iter().enumerate() {
            sqe.set_cdw(10 + i, *v);
        }
        sqe.set_cdw(14, cdw14);
        if buf_len > 0 {
            sqe.set_data_len(buf_len);
        } else if let Some(p) = payload {
            sqe.set_data_len(p.len() as u32);
        }
        r.fw.handle(
            FirmwareCtx {
                nand: &mut r.nand,
                ftl: &mut r.ftl,
                dram: &mut r.dram,
                now: Nanos::ZERO,
            },
            &sqe,
            payload,
        )
    }

    fn put(r: &mut Rig, key: &[u8], value: &[u8]) -> CommandOutcome {
        op(r, IoOpcode::KvPut as u8, key, Some(value), 0, 0)
    }

    fn get(r: &mut Rig, key: &[u8]) -> CommandOutcome {
        op(r, IoOpcode::KvGet as u8, key, None, 0, 0)
    }

    fn delete(r: &mut Rig, key: &[u8]) -> CommandOutcome {
        op(r, IoOpcode::KvDelete as u8, key, None, 0, 0)
    }

    #[test]
    fn memtable_put_get() {
        let mut r = rig(true);
        put(&mut r, b"alpha", b"one");
        assert_eq!(get(&mut r, b"alpha").response.unwrap(), b"one");
        assert_eq!(get(&mut r, b"beta").status, Status::KvKeyNotFound);
    }

    #[test]
    fn flush_and_read_from_runs() {
        let mut r = rig(true);
        // ~100 B values; 32 KB budget → flush every ~270 entries.
        for i in 0..1000u32 {
            let out = put(
                &mut r,
                format!("key{i:05}").as_bytes(),
                &[(i % 251) as u8; 100],
            );
            assert!(out.status.is_success(), "{i}");
        }
        let stats = *r.fw.stats_handle().borrow();
        assert!(stats.flushes >= 2, "flushes {}", stats.flushes);
        assert!(r.nand.stats().programs > 0);
        for i in (0..1000u32).step_by(97) {
            let out = get(&mut r, format!("key{i:05}").as_bytes());
            assert!(out.status.is_success(), "key{i:05}");
            assert_eq!(out.response.unwrap(), vec![(i % 251) as u8; 100]);
        }
    }

    #[test]
    fn compaction_merges_and_frees() {
        let mut r = rig(true);
        // Overwrite a key set whose working size exceeds the memtable
        // budget, forcing a flush per round, L0 buildup, and compaction
        // over heavily garbage-laden runs.
        for round in 0..40u8 {
            for i in 0..200u32 {
                put(&mut r, format!("k{i:04}").as_bytes(), &[round; 150]);
            }
        }
        let stats = *r.fw.stats_handle().borrow();
        assert!(stats.compactions > 0, "compactions {}", stats.compactions);
        for i in (0..200u32).step_by(13) {
            let out = get(&mut r, format!("k{i:04}").as_bytes());
            assert_eq!(out.response.unwrap(), vec![39u8; 150], "k{i:04}");
        }
    }

    #[test]
    fn delete_is_a_tombstone_through_compaction() {
        let mut r = rig(true);
        for i in 0..300u32 {
            put(&mut r, format!("d{i:04}").as_bytes(), &[7u8; 100]);
        }
        delete(&mut r, b"d0042");
        assert_eq!(get(&mut r, b"d0042").status, Status::KvKeyNotFound);
        // Push enough data through to compact the tombstone away.
        for i in 0..2000u32 {
            put(&mut r, format!("fill{i:05}").as_bytes(), &[1u8; 100]);
        }
        assert_eq!(get(&mut r, b"d0042").status, Status::KvKeyNotFound);
        assert_eq!(get(&mut r, b"d0041").response.unwrap(), vec![7u8; 100]);
    }

    #[test]
    fn range_scan_is_ordered_and_merged() {
        let mut r = rig(true);
        // Data spread across runs and memtable.
        for i in (0..400u32).rev() {
            put(
                &mut r,
                format!("r{i:04}").as_bytes(),
                format!("v{i}").as_bytes(),
            );
        }
        // Overwrite some in the memtable to prove newest-wins.
        put(&mut r, b"r0100", b"newest");
        delete(&mut r, b"r0101");

        let out = op(&mut r, KV_RANGE_SCAN_OPCODE, b"r0099", None, 10, 4096);
        assert!(out.status.is_success());
        let data = out.response.unwrap();
        let count = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
        assert_eq!(count, 10);
        let mut off = 4;
        let mut keys = Vec::new();
        let mut values = Vec::new();
        for _ in 0..count {
            let key = data[off..off + 16].to_vec();
            let vlen = u16::from_le_bytes([data[off + 16], data[off + 17]]) as usize;
            values.push(data[off + 18..off + 18 + vlen].to_vec());
            keys.push(key);
            off += 18 + vlen;
        }
        // Ordered, starting at r0099, r0101 skipped (tombstone).
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(&keys[0][..5], b"r0099");
        assert_eq!(&keys[1][..5], b"r0100");
        assert_eq!(values[1], b"newest");
        assert_eq!(&keys[2][..5], b"r0102", "tombstoned key must be skipped");
    }

    #[test]
    fn nand_off_mode_works() {
        let mut r = rig(false);
        for i in 0..500u32 {
            put(&mut r, format!("m{i:04}").as_bytes(), &[3u8; 120]);
        }
        assert_eq!(r.nand.stats().programs, 0);
        assert_eq!(get(&mut r, b"m0123").response.unwrap(), vec![3u8; 120]);
    }

    #[test]
    fn compaction_trims_old_run_pages() {
        let mut r = rig(true);
        for round in 0..60u32 {
            for i in 0..150u32 {
                put(
                    &mut r,
                    format!("t{i:03}").as_bytes(),
                    &vec![round as u8; 250],
                );
            }
        }
        let stats = *r.fw.stats_handle().borrow();
        assert!(stats.compactions >= 1);
        // Without trim+reuse, pages_written LPNs would march far past what
        // live data needs; with reuse the firmware recycles freed LPNs.
        assert!(
            !r.fw.free_lpns.is_empty() || r.fw.next_lpn < stats.pages_written,
            "compaction must recycle run pages (next_lpn {}, written {})",
            r.fw.next_lpn,
            stats.pages_written
        );
    }

    #[test]
    fn oversized_value_rejected() {
        let mut r = rig(true);
        assert_eq!(
            put(&mut r, b"big", &vec![0; MAX_VALUE_LEN + 1]).status,
            Status::KvInvalidSize
        );
    }

    #[test]
    fn recover_not_supported() {
        let mut r = rig(true);
        let out = op(&mut r, IoOpcode::KvRecover as u8, b"", None, 1, 0);
        assert_eq!(out.status, Status::InvalidOpcode);
    }
}
