//! Link energy accounting.
//!
//! The paper's motivation includes "unnecessary power consumption" from
//! page-granular transfers of tiny payloads (§1, citing POLARDB's
//! computational-storage experience). This module prices the traffic the
//! counters already measure: PCIe PHY/link energy scales with bytes moved
//! plus a fixed packet-processing cost per TLP, so the 130× traffic
//! amplification of a 32-byte PRP write is also ≈130× wasted link energy.
//!
//! Defaults are order-of-magnitude figures for a PCIe Gen2-era PHY
//! (~5 pJ/bit ≈ 40 pJ/byte on the wire, ~15 nJ per TLP for DLLP handling,
//! sequence/CRC check and credit updates). They are deliberately exposed
//! for recalibration — the *relative* numbers between transfer methods are
//! what the model is for.

use crate::counters::TrafficCounters;
use crate::TrafficClass;
use std::fmt;

/// Energy cost model for the link.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per wire byte (payload + headers + framing), picojoules.
    pub pj_per_byte: f64,
    /// Fixed per-TLP processing energy, picojoules.
    pub pj_per_tlp: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_byte: 40.0,
            pj_per_tlp: 15_000.0,
        }
    }
}

/// An energy figure, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picojoules(pub f64);

impl Picojoules {
    /// Value in microjoules.
    pub fn as_microjoules(self) -> f64 {
        self.0 / 1e6
    }

    /// Value in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Display for Picojoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3}mJ", self.as_millijoules())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3}uJ", self.as_microjoules())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3}nJ", self.0 / 1e3)
        } else {
            write!(f, "{:.1}pJ", self.0)
        }
    }
}

impl EnergyModel {
    /// Total link energy for the traffic in `counters`.
    pub fn total(&self, counters: &TrafficCounters) -> Picojoules {
        Picojoules(
            counters.total_bytes() as f64 * self.pj_per_byte
                + counters.total_tlps() as f64 * self.pj_per_tlp,
        )
    }

    /// Link energy attributable to one traffic class.
    pub fn of_class(&self, counters: &TrafficCounters, class: TrafficClass) -> Picojoules {
        let c = counters.class(class);
        Picojoules(c.wire_bytes as f64 * self.pj_per_byte + c.tlps as f64 * self.pj_per_tlp)
    }

    /// Energy per application payload byte — the efficiency figure: 1.0×
    /// `pj_per_byte` would be a perfect link; PRP's page amplification makes
    /// small writes orders of magnitude worse.
    pub fn per_payload_byte(&self, counters: &TrafficCounters) -> Picojoules {
        let payload = counters.total_payload_bytes();
        if payload == 0 {
            return Picojoules(0.0);
        }
        Picojoules(self.total(counters).0 / payload as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{Direction, TrafficClass};
    use crate::tlp::segment_read_completions;

    #[test]
    fn energy_scales_with_bytes_and_tlps() {
        let m = EnergyModel::default();
        let mut c = TrafficCounters::new();
        c.record(
            TrafficClass::PrpData,
            Direction::HostToDevice,
            &segment_read_completions(4096, 256),
        );
        let e = m.total(&c);
        // 16 TLPs x 15 nJ + (4096 + 320) B x 40 pJ.
        let expected = 16.0 * 15_000.0 + 4416.0 * 40.0;
        assert!((e.0 - expected).abs() < 1e-6, "{e:?}");
    }

    #[test]
    fn empty_counters_cost_nothing() {
        let m = EnergyModel::default();
        let c = TrafficCounters::new();
        assert_eq!(m.total(&c).0, 0.0);
        assert_eq!(m.per_payload_byte(&c).0, 0.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Picojoules(500.0).to_string(), "500.0pJ");
        assert_eq!(Picojoules(5e3).to_string(), "5.000nJ");
        assert_eq!(Picojoules(5e6).to_string(), "5.000uJ");
        assert_eq!(Picojoules(5e9).to_string(), "5.000mJ");
    }

    #[test]
    fn class_attribution_sums_to_total() {
        let m = EnergyModel::default();
        let mut c = TrafficCounters::new();
        c.record(
            TrafficClass::Doorbell,
            Direction::HostToDevice,
            &crate::tlp::segment_write(4, 256),
        );
        c.record(
            TrafficClass::Cqe,
            Direction::DeviceToHost,
            &crate::tlp::segment_write(16, 256),
        );
        let sum: f64 = TrafficClass::ALL
            .iter()
            .map(|&cl| m.of_class(&c, cl).0)
            .sum();
        assert!((sum - m.total(&c).0).abs() < 1e-9);
    }
}
