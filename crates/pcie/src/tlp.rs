//! Transaction-layer packet sizing.
//!
//! The unit of traffic accounting. Overheads follow the PCIe spec's framing
//! for 8b/10b-era links (the paper's Gen2 platform):
//!
//! * Memory write / read request with 64-bit addressing: 4-DW (16 B) TLP header.
//! * Completion-with-data: 3-DW (12 B) TLP header.
//! * Physical/data-link framing per TLP: STP (1 B) + sequence number (2 B) +
//!   LCRC (4 B) + END (1 B) = 8 B.
//!
//! These constants are exposed (not buried) because the benchmark suite's
//! traffic-amplification numbers (Fig 1(c), Fig 5) are direct functions of
//! them, and EXPERIMENTS.md documents the sensitivity.

/// TLP header bytes for requests with 64-bit addresses (4 DW).
pub const REQ_HEADER_BYTES: usize = 16;
/// TLP header bytes for completions (3 DW).
pub const CPL_HEADER_BYTES: usize = 12;
/// Physical/data-link layer framing bytes per TLP (STP + seq + LCRC + END).
pub const FRAMING_BYTES: usize = 8;

/// The kinds of TLP the simulation generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlpKind {
    /// Posted memory write carrying data (doorbell, CQE post, MSI, MMIO).
    MemWrite,
    /// Non-posted memory read request (no data payload).
    MemReadReq,
    /// Completion with data, answering a read request.
    CplData,
}

impl TlpKind {
    /// Header + framing overhead for this TLP kind, excluding data payload.
    pub fn overhead_bytes(self) -> usize {
        match self {
            TlpKind::MemWrite | TlpKind::MemReadReq => REQ_HEADER_BYTES + FRAMING_BYTES,
            TlpKind::CplData => CPL_HEADER_BYTES + FRAMING_BYTES,
        }
    }
}

/// A sequence of same-kind TLPs produced by segmenting one logical transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlpStream {
    /// Kind of every TLP in the stream.
    pub kind: TlpKind,
    /// Number of TLPs.
    pub count: usize,
    /// Total data payload bytes across the stream.
    pub payload_bytes: usize,
}

impl TlpStream {
    /// Total bytes on the wire: payload plus per-TLP overhead.
    pub fn wire_bytes(&self) -> usize {
        self.payload_bytes + self.count * self.kind.overhead_bytes()
    }
}

/// Segments a posted write of `len` payload bytes into MWr TLPs bounded by
/// `mps`.
///
/// A zero-length write (pure doorbell with no data would not exist — doorbells
/// carry 4 bytes) yields an empty stream.
///
/// `mps` must be non-zero. An earlier version silently clamped 0 to 1 via
/// `.max(1)`, which hid a misconfigured link behind maximally fragmented
/// traffic numbers; a zero limit is now an API-contract violation, and
/// [`crate::LinkConfig::validate`] rejects such configs before they reach
/// the segmenters.
pub fn segment_write(len: usize, mps: usize) -> TlpStream {
    assert!(mps > 0, "MPS of 0 cannot carry any payload");
    let count = len.div_ceil(mps);
    TlpStream {
        kind: TlpKind::MemWrite,
        count,
        payload_bytes: len,
    }
}

/// Segments a read of `len` bytes into request TLPs bounded by `mrrs`.
///
/// `mrrs` must be non-zero; see [`segment_write`].
pub fn segment_read_requests(len: usize, mrrs: usize) -> TlpStream {
    assert!(mrrs > 0, "MRRS of 0 cannot request any data");
    let count = len.div_ceil(mrrs);
    TlpStream {
        kind: TlpKind::MemReadReq,
        count,
        payload_bytes: 0,
    }
}

/// Segments the completion stream answering a read of `len` bytes into CplD
/// TLPs bounded by `mps`.
///
/// `mps` must be non-zero; see [`segment_write`].
pub fn segment_read_completions(len: usize, mps: usize) -> TlpStream {
    assert!(mps > 0, "MPS of 0 cannot carry any payload");
    let count = len.div_ceil(mps);
    TlpStream {
        kind: TlpKind::CplData,
        count,
        payload_bytes: len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads() {
        assert_eq!(TlpKind::MemWrite.overhead_bytes(), 24);
        assert_eq!(TlpKind::MemReadReq.overhead_bytes(), 24);
        assert_eq!(TlpKind::CplData.overhead_bytes(), 20);
    }

    #[test]
    fn write_segmentation() {
        let s = segment_write(4096, 256);
        assert_eq!(s.count, 16);
        assert_eq!(s.payload_bytes, 4096);
        assert_eq!(s.wire_bytes(), 4096 + 16 * 24);
    }

    #[test]
    fn small_write_single_tlp() {
        let s = segment_write(4, 256);
        assert_eq!(s.count, 1);
        assert_eq!(s.wire_bytes(), 4 + 24);
    }

    #[test]
    fn read_request_segmentation() {
        let s = segment_read_requests(4096, 512);
        assert_eq!(s.count, 8);
        assert_eq!(s.payload_bytes, 0);
        assert_eq!(s.wire_bytes(), 8 * 24);
    }

    #[test]
    fn completion_segmentation() {
        let s = segment_read_completions(4096, 256);
        assert_eq!(s.count, 16);
        assert_eq!(s.wire_bytes(), 4096 + 16 * 20);
    }

    #[test]
    fn sixty_four_byte_read_is_one_of_each() {
        // The SQE fetch: one request, one completion.
        assert_eq!(segment_read_requests(64, 512).count, 1);
        assert_eq!(segment_read_completions(64, 256).count, 1);
        let wire = segment_read_requests(64, 512).wire_bytes()
            + segment_read_completions(64, 256).wire_bytes();
        assert_eq!(wire, 24 + 64 + 20);
    }

    #[test]
    fn non_multiple_lengths_round_up() {
        assert_eq!(segment_write(257, 256).count, 2);
        assert_eq!(segment_read_completions(4097, 256).count, 17);
    }

    #[test]
    #[should_panic(expected = "MPS of 0")]
    fn zero_mps_write_is_rejected_not_clamped() {
        let _ = segment_write(64, 0);
    }

    #[test]
    #[should_panic(expected = "MRRS of 0")]
    fn zero_mrrs_read_is_rejected_not_clamped() {
        let _ = segment_read_requests(64, 0);
    }

    #[test]
    #[should_panic(expected = "MPS of 0")]
    fn zero_mps_completion_is_rejected_not_clamped() {
        let _ = segment_read_completions(64, 0);
    }

    #[test]
    fn mps_of_one_is_one_tlp_per_byte() {
        // Degenerate but legal at the segmenter level (LinkConfig::validate
        // rejects it for real links): each payload byte rides its own TLP.
        let s = segment_write(64, 1);
        assert_eq!(s.count, 64);
        assert_eq!(s.payload_bytes, 64);
        assert_eq!(segment_read_completions(7, 1).count, 7);
        assert_eq!(segment_read_requests(8, 1).count, 8);
    }
}
