//! The link itself: operations that generate TLPs, account traffic, and
//! return latency costs.

use crate::config::LinkConfig;
use crate::counters::{Direction, TrafficClass, TrafficCounters};
use crate::tlp::{segment_read_completions, segment_read_requests, segment_write, TlpStream};
use bx_hostsim::Nanos;
use bx_trace::{Dir, EventKind, TraceSink};

/// The simulated PCIe link.
///
/// Each method models one *logical* transaction (a posted write, a DMA read
/// round trip), decomposes it into TLPs per the configuration, accumulates
/// traffic counters, and returns the latency the transaction contributes.
/// Callers decide what to do with the latency (serial submit paths add it to
/// the clock; pipelined fetch engines may overlap it).
#[derive(Debug)]
pub struct PcieLink {
    cfg: LinkConfig,
    counters: TrafficCounters,
    trace: TraceSink,
}

impl PcieLink {
    /// Creates a link with the given configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        PcieLink {
            cfg,
            counters: TrafficCounters::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Installs a flight-recorder sink; every TLP stream emits one event
    /// tagged with its [`TrafficClass`] label. Disabled sinks cost nothing.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    fn trace_tlp(&self, class: TrafficClass, dir: Dir, stream: &TlpStream) {
        self.trace.emit(None, || EventKind::Tlp {
            class: class.label(),
            dir,
            wire_bytes: stream.wire_bytes() as u64,
            payload_bytes: stream.payload_bytes as u64,
            tlps: stream.count as u64,
        });
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// The cumulative traffic counters.
    pub fn counters(&self) -> &TrafficCounters {
        &self.counters
    }

    /// Resets traffic counters (not the configuration).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn wire_time_of(&self, stream: &TlpStream) -> Nanos {
        self.cfg.wire_time(stream.wire_bytes()) + self.cfg.per_tlp_overhead * stream.count as u64
    }

    /// A posted memory write from host to device (doorbell, MMIO register
    /// write). Returns the one-way delivery latency; posted writes do not
    /// stall the sender beyond serialization.
    pub fn host_posted_write(&mut self, class: TrafficClass, len: usize) -> Nanos {
        let stream = segment_write(len, self.cfg.max_payload_size);
        let t = self.wire_time_of(&stream) + self.cfg.propagation;
        self.counters
            .record(class, Direction::HostToDevice, &stream);
        self.trace_tlp(class, Dir::HostToDevice, &stream);
        t
    }

    /// A posted memory write from device to host (CQE post, MSI interrupt,
    /// device-computed results). Returns the one-way delivery latency.
    pub fn device_posted_write(&mut self, class: TrafficClass, len: usize) -> Nanos {
        let stream = segment_write(len, self.cfg.max_payload_size);
        let t = self.wire_time_of(&stream) + self.cfg.propagation;
        self.counters
            .record(class, Direction::DeviceToHost, &stream);
        self.trace_tlp(class, Dir::DeviceToHost, &stream);
        t
    }

    /// A device-issued DMA read of `len` bytes of host memory (SQE fetch, PRP
    /// data fetch, PRP list fetch). Returns the full round-trip latency:
    /// request propagation + host memory access + completion serialization.
    ///
    /// Requests are assumed pipelined (one request latency is paid, not one
    /// per MRRS segment), which matches how DMA engines stream large reads.
    pub fn device_read(&mut self, class: TrafficClass, len: usize) -> Nanos {
        let req = segment_read_requests(len, self.cfg.max_read_request_size);
        let cpl = segment_read_completions(len, self.cfg.max_payload_size);
        let t = self.cfg.propagation * 2
            + self.cfg.host_memory_read
            + self.wire_time_of(&req)
            + self.wire_time_of(&cpl);
        // Requests flow upstream, completions (with data) flow downstream.
        self.counters.record(class, Direction::DeviceToHost, &req);
        self.counters.record(class, Direction::HostToDevice, &cpl);
        self.trace_tlp(class, Dir::DeviceToHost, &req);
        self.trace_tlp(class, Dir::HostToDevice, &cpl);
        t
    }

    /// A host-issued MMIO read of device BAR space (`len` ≤ 8 typical).
    /// Synchronous and expensive — the reason drivers avoid reading doorbells.
    pub fn host_mmio_read(&mut self, class: TrafficClass, len: usize) -> Nanos {
        let req = segment_read_requests(len, self.cfg.max_read_request_size);
        let cpl = segment_read_completions(len, self.cfg.max_payload_size);
        let t = self.cfg.propagation * 2
            + self.cfg.host_memory_read
            + self.wire_time_of(&req)
            + self.wire_time_of(&cpl);
        self.counters.record(class, Direction::HostToDevice, &req);
        self.counters.record(class, Direction::DeviceToHost, &cpl);
        self.trace_tlp(class, Dir::HostToDevice, &req);
        self.trace_tlp(class, Dir::DeviceToHost, &cpl);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> PcieLink {
        PcieLink::new(LinkConfig::gen2_x8())
    }

    #[test]
    fn doorbell_write_traffic() {
        let mut l = link();
        l.host_posted_write(TrafficClass::Doorbell, 4);
        assert_eq!(l.counters().total_bytes(), 4 + 24);
        assert_eq!(l.counters().host_to_device_bytes(), 28);
    }

    #[test]
    fn sqe_fetch_traffic_and_latency() {
        let mut l = link();
        let t = l.device_read(TrafficClass::SqeFetch, 64);
        // Request 24 B upstream + completion 84 B downstream.
        assert_eq!(l.counters().device_to_host_bytes(), 24);
        assert_eq!(l.counters().host_to_device_bytes(), 84);
        // 2*100 propagation + 250 mem + wire times (6+21 rounded) + 2 TLP overheads.
        assert!(
            t >= Nanos::from_ns(450) && t <= Nanos::from_ns(550),
            "t={t}"
        );
    }

    #[test]
    fn four_kib_dma_latency_matches_calibration() {
        // The PRP page fetch cost that yields the paper's ~256 B ByteExpress/PRP
        // latency crossover: about 1.6 us on Gen2 x8.
        let mut l = link();
        let t = l.device_read(TrafficClass::PrpData, 4096);
        assert!(
            t >= Nanos::from_ns(1500) && t <= Nanos::from_ns(1800),
            "4 KiB DMA latency {t} outside calibration band"
        );
    }

    #[test]
    fn traffic_scales_with_pages() {
        let mut l = link();
        l.device_read(TrafficClass::PrpData, 4096);
        let one_page = l.counters().total_bytes();
        l.reset_counters();
        l.device_read(TrafficClass::PrpData, 16384);
        let four_pages = l.counters().total_bytes();
        assert_eq!(four_pages, 4 * one_page);
    }

    #[test]
    fn amplification_for_32_byte_prp_write_exceeds_130x() {
        // Fig 1(c): a 32 B payload still moves a whole 4 KiB page.
        let mut l = link();
        l.device_read(TrafficClass::PrpData, 4096); // page DMA regardless of payload
        let amp = l.counters().total_bytes() as f64 / 32.0;
        assert!(amp > 130.0, "amplification {amp}");
    }

    #[test]
    fn gen4_is_faster_for_same_transfer() {
        let mut g2 = PcieLink::new(LinkConfig::gen2_x8());
        let mut g4 = PcieLink::new(LinkConfig::gen4_x4());
        let t2 = g2.device_read(TrafficClass::PrpData, 65536);
        let t4 = g4.device_read(TrafficClass::PrpData, 65536);
        assert!(t4 < t2);
    }

    #[test]
    fn mmio_read_is_round_trip() {
        let mut l = link();
        let t = l.host_mmio_read(TrafficClass::Mmio, 4);
        assert!(t > l.config().propagation * 2);
        assert_eq!(l.counters().total_tlps(), 2);
    }

    #[test]
    fn wire_bytes_always_exceed_payload() {
        let mut l = link();
        for len in [1usize, 63, 64, 65, 4096, 65536] {
            l.reset_counters();
            l.device_read(TrafficClass::PrpData, len);
            assert!(l.counters().total_bytes() > len as u64);
        }
    }
}
