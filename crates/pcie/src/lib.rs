//! # bx-pcie — PCIe link model
//!
//! Transaction-layer-packet (TLP) accounting and serialization timing for the
//! simulated PCIe link between the host and the SSD. This crate is what turns
//! "the controller fetched a 64-byte SQ entry" into the *wire bytes* and
//! *nanoseconds* that the paper measures with Intel PCM.
//!
//! The model is deliberately at the same altitude the paper's measurements
//! are: every host↔device interaction is decomposed into memory-write
//! (`MWr`), memory-read-request (`MRd`) and completion-with-data (`CplD`)
//! TLPs, each carrying a fixed header + physical-layer framing overhead, with
//! payloads segmented by the link's Max Payload Size (MPS) and read requests
//! by the Max Read Request Size (MRRS). Traffic counters accumulate bytes per
//! direction and per [`TrafficClass`], so benchmarks can report both the
//! paper's aggregate numbers and a breakdown of *where* the bytes went.
//!
//! ## Example
//!
//! ```
//! use bx_pcie::{LinkConfig, PcieLink, TrafficClass};
//!
//! // The paper's platform: PCIe Gen2 ×8.
//! let mut link = PcieLink::new(LinkConfig::gen2_x8());
//! // A 4 KB PRP data fetch: one page of traffic plus TLP overheads.
//! link.device_read(TrafficClass::PrpData, 4096);
//! let total = link.counters().total_bytes();
//! assert!(total > 4096, "wire bytes must exceed payload bytes");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod energy;
pub mod link;
pub mod tlp;

pub use config::{Generation, LinkConfig, LinkConfigError};
pub use counters::{ClassBytes, PcmCounters, TrafficClass, TrafficCounters};
pub use energy::{EnergyModel, Picojoules};
pub use link::PcieLink;
pub use tlp::{TlpKind, TlpStream};
