//! Traffic counters and the PCM-style measurement facade.

use crate::tlp::TlpStream;
use serde::Serialize;
use std::fmt;

/// Why a TLP was generated — lets benchmarks break aggregate traffic down the
/// way the paper's prose does ("doorbell ringing, tail pointer updates,
/// completion signaling" vs. actual data movement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum TrafficClass {
    /// SQ tail doorbell writes (host → device BAR).
    Doorbell,
    /// 64-byte SQ entry fetches (commands *and* inline ByteExpress chunks).
    SqeFetch,
    /// PRP list fetches (the extra DMA when a transfer spans >2 pages).
    PrpList,
    /// Page-granular PRP data transfers.
    PrpData,
    /// SGL descriptor fetches.
    SglDescriptor,
    /// Fine-grained SGL data transfers.
    SglData,
    /// Completion queue entry posts (device → host).
    Cqe,
    /// MSI/MSI-X interrupt writes (device → host).
    Interrupt,
    /// MMIO register reads/writes other than doorbells (admin, BAR setup).
    Mmio,
    /// Device-to-host data (e.g. KV GET results, CSD filter output).
    DeviceToHostData,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 10] = [
        TrafficClass::Doorbell,
        TrafficClass::SqeFetch,
        TrafficClass::PrpList,
        TrafficClass::PrpData,
        TrafficClass::SglDescriptor,
        TrafficClass::SglData,
        TrafficClass::Cqe,
        TrafficClass::Interrupt,
        TrafficClass::Mmio,
        TrafficClass::DeviceToHostData,
    ];

    /// Stable short label (also the `Display` form). `&'static` so layers
    /// below this crate (e.g. the trace recorder) can carry it without a
    /// type dependency.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Doorbell => "doorbell",
            TrafficClass::SqeFetch => "sqe-fetch",
            TrafficClass::PrpList => "prp-list",
            TrafficClass::PrpData => "prp-data",
            TrafficClass::SglDescriptor => "sgl-desc",
            TrafficClass::SglData => "sgl-data",
            TrafficClass::Cqe => "cqe",
            TrafficClass::Interrupt => "interrupt",
            TrafficClass::Mmio => "mmio",
            TrafficClass::DeviceToHostData => "dev-to-host-data",
        }
    }

    fn index(self) -> usize {
        match self {
            TrafficClass::Doorbell => 0,
            TrafficClass::SqeFetch => 1,
            TrafficClass::PrpList => 2,
            TrafficClass::PrpData => 3,
            TrafficClass::SglDescriptor => 4,
            TrafficClass::SglData => 5,
            TrafficClass::Cqe => 6,
            TrafficClass::Interrupt => 7,
            TrafficClass::Mmio => 8,
            TrafficClass::DeviceToHostData => 9,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Direction of a TLP stream relative to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host (root complex) to device (downstream).
    HostToDevice,
    /// Device to host (upstream).
    DeviceToHost,
}

/// Byte totals for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ClassBytes {
    /// Wire bytes (payload + TLP overhead).
    pub wire_bytes: u64,
    /// Payload bytes only.
    pub payload_bytes: u64,
    /// TLP count.
    pub tlps: u64,
}

/// Cumulative traffic counters, per direction and per class.
///
/// This is the source of truth every figure's "PCIe traffic" series reads.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct TrafficCounters {
    host_to_device_wire: u64,
    device_to_host_wire: u64,
    per_class: [ClassBytes; 10],
}

impl TrafficCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a TLP stream.
    pub fn record(&mut self, class: TrafficClass, direction: Direction, stream: &TlpStream) {
        let wire = stream.wire_bytes() as u64;
        match direction {
            Direction::HostToDevice => self.host_to_device_wire += wire,
            Direction::DeviceToHost => self.device_to_host_wire += wire,
        }
        let c = &mut self.per_class[class.index()];
        c.wire_bytes += wire;
        c.payload_bytes += stream.payload_bytes as u64;
        c.tlps += stream.count as u64;
    }

    /// Total wire bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.host_to_device_wire + self.device_to_host_wire
    }

    /// Wire bytes flowing host → device.
    pub fn host_to_device_bytes(&self) -> u64 {
        self.host_to_device_wire
    }

    /// Wire bytes flowing device → host.
    pub fn device_to_host_bytes(&self) -> u64 {
        self.device_to_host_wire
    }

    /// Byte totals for one class.
    pub fn class(&self, class: TrafficClass) -> ClassBytes {
        self.per_class[class.index()]
    }

    /// Sum of payload bytes across all classes.
    pub fn total_payload_bytes(&self) -> u64 {
        self.per_class.iter().map(|c| c.payload_bytes).sum()
    }

    /// Total TLP count.
    pub fn total_tlps(&self) -> u64 {
        self.per_class.iter().map(|c| c.tlps).sum()
    }

    /// Number of doorbell MMIO writes (each SQ tail or CQ head update is one
    /// posted TLP). The batching benchmarks assert this drops while
    /// [`TrafficCounters::non_doorbell_wire_bytes`] stays byte-identical.
    pub fn doorbell_tlps(&self) -> u64 {
        self.class(TrafficClass::Doorbell).tlps
    }

    /// Wire bytes in every class *except* doorbells — the command, payload,
    /// and completion traffic that doorbell coalescing must not perturb.
    pub fn non_doorbell_wire_bytes(&self) -> u64 {
        self.total_bytes() - self.class(TrafficClass::Doorbell).wire_bytes
    }

    /// Wire bytes of pure control traffic (doorbells, CQEs, interrupts,
    /// non-doorbell MMIO) — the paper's "control overhead" bucket, as
    /// opposed to command fetch and data movement.
    pub fn control_wire_bytes(&self) -> u64 {
        self.class(TrafficClass::Doorbell).wire_bytes
            + self.class(TrafficClass::Cqe).wire_bytes
            + self.class(TrafficClass::Interrupt).wire_bytes
            + self.class(TrafficClass::Mmio).wire_bytes
    }

    /// Zeroes all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Difference `self - earlier`, for interval measurements.
    ///
    /// Each count saturates at zero: if `earlier` is not actually an earlier
    /// snapshot of the same counters (e.g. the counters were `reset()`
    /// between the two reads), the mismatched components clamp to zero
    /// instead of wrapping or panicking — interval math must never take a
    /// measurement run down.
    pub fn since(&self, earlier: &TrafficCounters) -> TrafficCounters {
        let mut out = self.clone();
        out.host_to_device_wire = out
            .host_to_device_wire
            .saturating_sub(earlier.host_to_device_wire);
        out.device_to_host_wire = out
            .device_to_host_wire
            .saturating_sub(earlier.device_to_host_wire);
        for (o, e) in out.per_class.iter_mut().zip(earlier.per_class.iter()) {
            o.wire_bytes = o.wire_bytes.saturating_sub(e.wire_bytes);
            o.payload_bytes = o.payload_bytes.saturating_sub(e.payload_bytes);
            o.tlps = o.tlps.saturating_sub(e.tlps);
        }
        out
    }
}

impl fmt::Display for TrafficCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pcie traffic: total={} B (h2d={} B, d2h={} B, {} TLPs)",
            self.total_bytes(),
            self.host_to_device_bytes(),
            self.device_to_host_bytes(),
            self.total_tlps()
        )?;
        for class in TrafficClass::ALL {
            let c = self.class(class);
            if c.tlps > 0 {
                writeln!(
                    f,
                    "  {class:<16} wire={:>12} payload={:>12} tlps={:>9}",
                    c.wire_bytes, c.payload_bytes, c.tlps
                )?;
            }
        }
        Ok(())
    }
}

/// Interval-based traffic reader in the style of Intel PCM: snapshot at the
/// start of a measurement window, read the delta at the end.
///
/// # Example
///
/// ```
/// use bx_pcie::{LinkConfig, PcieLink, PcmCounters, TrafficClass};
///
/// let mut link = PcieLink::new(LinkConfig::gen2_x8());
/// let pcm = PcmCounters::start(&link);
/// link.device_read(TrafficClass::PrpData, 4096);
/// let delta = pcm.stop(&link);
/// assert!(delta.total_bytes() >= 4096);
/// ```
#[derive(Debug, Clone)]
pub struct PcmCounters {
    baseline: TrafficCounters,
}

impl PcmCounters {
    /// Snapshots the link's counters as the measurement baseline.
    pub fn start(link: &crate::link::PcieLink) -> Self {
        PcmCounters {
            baseline: link.counters().clone(),
        }
    }

    /// Returns traffic accumulated since [`PcmCounters::start`].
    pub fn stop(&self, link: &crate::link::PcieLink) -> TrafficCounters {
        link.counters().since(&self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlp::{segment_read_completions, segment_write};

    #[test]
    fn record_accumulates_per_direction() {
        let mut c = TrafficCounters::new();
        c.record(
            TrafficClass::Doorbell,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );
        c.record(
            TrafficClass::Cqe,
            Direction::DeviceToHost,
            &segment_write(16, 256),
        );
        assert_eq!(c.host_to_device_bytes(), 4 + 24);
        assert_eq!(c.device_to_host_bytes(), 16 + 24);
        assert_eq!(c.total_bytes(), 68);
    }

    #[test]
    fn class_breakdown() {
        let mut c = TrafficCounters::new();
        c.record(
            TrafficClass::PrpData,
            Direction::HostToDevice,
            &segment_read_completions(4096, 256),
        );
        let class = c.class(TrafficClass::PrpData);
        assert_eq!(class.payload_bytes, 4096);
        assert_eq!(class.tlps, 16);
        assert_eq!(class.wire_bytes, 4096 + 16 * 20);
        assert_eq!(c.class(TrafficClass::Cqe), ClassBytes::default());
    }

    #[test]
    fn since_computes_interval() {
        let mut c = TrafficCounters::new();
        c.record(
            TrafficClass::Doorbell,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );
        let snap = c.clone();
        c.record(
            TrafficClass::Doorbell,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );
        let delta = c.since(&snap);
        assert_eq!(delta.total_bytes(), 28);
        assert_eq!(delta.class(TrafficClass::Doorbell).tlps, 1);
    }

    /// A "later" snapshot smaller than the baseline (counters reset mid
    /// interval) must saturate to zero, never wrap or panic.
    #[test]
    fn since_saturates_on_underflow() {
        let mut c = TrafficCounters::new();
        c.record(
            TrafficClass::Doorbell,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );
        c.record(
            TrafficClass::Cqe,
            Direction::DeviceToHost,
            &segment_write(16, 256),
        );
        let baseline = c.clone();
        c.reset();
        c.record(
            TrafficClass::Mmio,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );

        let delta = c.since(&baseline);
        // Components smaller than the baseline clamp to zero...
        assert_eq!(delta.class(TrafficClass::Doorbell), ClassBytes::default());
        assert_eq!(delta.class(TrafficClass::Cqe), ClassBytes::default());
        assert_eq!(delta.device_to_host_bytes(), 0);
        // ...while genuinely new traffic still shows (h2d shrank overall, so
        // the direction total clamps, but the fresh class survives).
        assert_eq!(delta.class(TrafficClass::Mmio).tlps, 1);
        assert!(delta.total_bytes() < baseline.total_bytes());
    }

    /// The PCM facade measures exactly the traffic between start and stop.
    #[test]
    fn pcm_counters_measure_the_interval() {
        use crate::config::LinkConfig;
        use crate::link::PcieLink;

        let mut link = PcieLink::new(LinkConfig::gen2_x8());
        // Traffic before the window must not be attributed to it.
        link.host_posted_write(TrafficClass::Mmio, 64);

        let pcm = PcmCounters::start(&link);
        link.device_read(TrafficClass::PrpData, 4096);
        link.device_posted_write(TrafficClass::Cqe, 16);
        let delta = pcm.stop(&link);

        assert_eq!(delta.class(TrafficClass::Mmio), ClassBytes::default());
        assert_eq!(delta.class(TrafficClass::PrpData).payload_bytes, 4096);
        assert_eq!(delta.class(TrafficClass::Cqe).payload_bytes, 16);

        // Traffic after stop() is likewise excluded: stop() is a pure read.
        link.host_posted_write(TrafficClass::Doorbell, 4);
        assert_eq!(
            pcm.stop(&link).class(TrafficClass::Doorbell).tlps,
            1,
            "a second stop() sees the extra doorbell"
        );
        assert_eq!(delta.class(TrafficClass::Doorbell), ClassBytes::default());
    }

    #[test]
    fn accounting_helpers_partition_traffic() {
        let mut c = TrafficCounters::new();
        // Two doorbells, one SQE fetch, one CQE, one interrupt, one admin MMIO.
        c.record(
            TrafficClass::Doorbell,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );
        c.record(
            TrafficClass::Doorbell,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );
        c.record(
            TrafficClass::SqeFetch,
            Direction::DeviceToHost,
            &segment_read_completions(64, 256),
        );
        c.record(
            TrafficClass::Cqe,
            Direction::DeviceToHost,
            &segment_write(16, 256),
        );
        c.record(
            TrafficClass::Interrupt,
            Direction::DeviceToHost,
            &segment_write(4, 256),
        );
        c.record(
            TrafficClass::Mmio,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );

        assert_eq!(c.doorbell_tlps(), 2);
        // non-doorbell + doorbell == total, always.
        assert_eq!(
            c.non_doorbell_wire_bytes() + c.class(TrafficClass::Doorbell).wire_bytes,
            c.total_bytes()
        );
        // control bytes cover exactly the four control classes.
        let expected_control = c.class(TrafficClass::Doorbell).wire_bytes
            + c.class(TrafficClass::Cqe).wire_bytes
            + c.class(TrafficClass::Interrupt).wire_bytes
            + c.class(TrafficClass::Mmio).wire_bytes;
        assert_eq!(c.control_wire_bytes(), expected_control);
        // The SQE fetch is data-plane: not part of the control bucket.
        assert_eq!(
            c.total_bytes() - c.control_wire_bytes(),
            c.class(TrafficClass::SqeFetch).wire_bytes
        );
    }

    #[test]
    fn reset_zeroes() {
        let mut c = TrafficCounters::new();
        c.record(
            TrafficClass::Mmio,
            Direction::HostToDevice,
            &segment_write(4, 256),
        );
        c.reset();
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.total_tlps(), 0);
    }

    #[test]
    fn display_is_nonempty() {
        let mut c = TrafficCounters::new();
        c.record(
            TrafficClass::SqeFetch,
            Direction::DeviceToHost,
            &segment_write(64, 256),
        );
        let s = c.to_string();
        assert!(s.contains("sqe-fetch"));
        assert!(s.contains("pcie traffic"));
    }
}
