//! Link configuration: generation, width, payload limits and timing constants.

use bx_hostsim::Nanos;
use std::fmt;

/// A structurally invalid [`LinkConfig`].
///
/// The config struct's fields are public (ablation studies build them by
/// hand), so validity is enforced at the consumption boundary:
/// [`LinkConfig::validate`] is called by the device builder before a link is
/// wired up, turning a misconfigured link into a hard error instead of the
/// silently clamped traffic numbers it used to produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkConfigError {
    /// `max_payload_size` is not a power of two in 128..=4096.
    BadMaxPayloadSize(usize),
    /// `max_read_request_size` is not a power of two in 128..=4096.
    BadMaxReadRequestSize(usize),
    /// `lanes` is not one of the spec link widths (1, 2, 4, 8, 16, 32).
    BadLaneCount(u32),
}

impl fmt::Display for LinkConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkConfigError::BadMaxPayloadSize(mps) => {
                write!(f, "MPS must be a power of two in 128..=4096, got {mps}")
            }
            LinkConfigError::BadMaxReadRequestSize(mrrs) => {
                write!(f, "MRRS must be a power of two in 128..=4096, got {mrrs}")
            }
            LinkConfigError::BadLaneCount(lanes) => {
                write!(f, "lane count must be 1, 2, 4, 8, 16 or 32, got {lanes}")
            }
        }
    }
}

impl std::error::Error for LinkConfigError {}

/// PCIe generation, determining per-lane raw signalling rate and line-code
/// efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Generation {
    /// 2.5 GT/s, 8b/10b encoding.
    Gen1,
    /// 5.0 GT/s, 8b/10b encoding — the paper's OpenSSD platform.
    Gen2,
    /// 8.0 GT/s, 128b/130b encoding.
    Gen3,
    /// 16.0 GT/s, 128b/130b encoding.
    Gen4,
    /// 32.0 GT/s, 128b/130b encoding.
    Gen5,
}

impl Generation {
    /// Raw per-lane rate in giga-transfers per second.
    pub fn gt_per_sec(self) -> f64 {
        match self {
            Generation::Gen1 => 2.5,
            Generation::Gen2 => 5.0,
            Generation::Gen3 => 8.0,
            Generation::Gen4 => 16.0,
            Generation::Gen5 => 32.0,
        }
    }

    /// Line-code efficiency (payload bits per raw bit).
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            Generation::Gen1 | Generation::Gen2 => 0.8,
            _ => 128.0 / 130.0,
        }
    }
}

/// Full link configuration.
///
/// Defaults mirror the paper's evaluation platform (Cosmos+ OpenSSD attached
/// over PCIe **Gen2 ×8**, 4 KB pages, MPS 256 B, MRRS 512 B); constructors for
/// other generations support the paper's §5 discussion of how newer links
/// shift the trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// PCIe generation.
    pub generation: Generation,
    /// Number of lanes (1, 2, 4, 8, 16).
    pub lanes: u32,
    /// Max Payload Size: the largest TLP data payload, bytes.
    pub max_payload_size: usize,
    /// Max Read Request Size: the largest single read request, bytes.
    pub max_read_request_size: usize,
    /// One-way propagation/pipeline latency through the fabric.
    pub propagation: Nanos,
    /// Host memory access latency seen by a device-issued DMA read
    /// (root-complex + DRAM access).
    pub host_memory_read: Nanos,
    /// Per-TLP processing overhead at each end (DLLP handling, credit update).
    pub per_tlp_overhead: Nanos,
}

impl LinkConfig {
    /// The paper's platform: Gen2 ×8, MPS 256 B, MRRS 512 B.
    pub fn gen2_x8() -> Self {
        LinkConfig {
            generation: Generation::Gen2,
            lanes: 8,
            max_payload_size: 256,
            max_read_request_size: 512,
            propagation: Nanos::from_ns(100),
            host_memory_read: Nanos::from_ns(250),
            per_tlp_overhead: Nanos::from_ns(5),
        }
    }

    /// A modern Gen4 ×4 consumer-SSD link (for the §5 sensitivity discussion).
    pub fn gen4_x4() -> Self {
        LinkConfig {
            generation: Generation::Gen4,
            lanes: 4,
            max_payload_size: 512,
            max_read_request_size: 512,
            propagation: Nanos::from_ns(80),
            host_memory_read: Nanos::from_ns(220),
            per_tlp_overhead: Nanos::from_ns(3),
        }
    }

    /// A Gen5 ×4 link.
    pub fn gen5_x4() -> Self {
        LinkConfig {
            generation: Generation::Gen5,
            lanes: 4,
            max_payload_size: 512,
            max_read_request_size: 1024,
            propagation: Nanos::from_ns(70),
            host_memory_read: Nanos::from_ns(200),
            per_tlp_overhead: Nanos::from_ns(2),
        }
    }

    /// Effective data rate in bytes per nanosecond after line coding.
    ///
    /// Gen2 ×8: 5 GT/s × 8 lanes × 0.8 / 8 bits = 4 B/ns (≈4 GB/s), matching
    /// the platform the paper's latency staircase was measured on.
    pub fn bytes_per_ns(&self) -> f64 {
        self.generation.gt_per_sec() * self.lanes as f64 * self.generation.encoding_efficiency()
            / 8.0
    }

    /// Time to serialize `bytes` onto the wire.
    pub fn wire_time(&self, bytes: usize) -> Nanos {
        Nanos::from_ns((bytes as f64 / self.bytes_per_ns()).ceil() as u64)
    }

    /// Returns a copy with a different Max Payload Size (ablation support).
    pub fn with_max_payload_size(mut self, mps: usize) -> Self {
        assert!(
            mps.is_power_of_two() && (128..=4096).contains(&mps),
            "MPS must be a power of two in 128..=4096, got {mps}"
        );
        self.max_payload_size = mps;
        self
    }

    /// Returns a copy with a different Max Read Request Size.
    pub fn with_max_read_request_size(mut self, mrrs: usize) -> Self {
        assert!(
            mrrs.is_power_of_two() && (128..=4096).contains(&mrrs),
            "MRRS must be a power of two in 128..=4096, got {mrrs}"
        );
        self.max_read_request_size = mrrs;
        self
    }

    /// Checks structural validity: spec lane widths, and MPS/MRRS each a
    /// power of two in 128..=4096 (so a zero or otherwise nonsensical limit
    /// can never reach the TLP segmenters, which reject 0 outright).
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a [`LinkConfigError`].
    pub fn validate(&self) -> Result<(), LinkConfigError> {
        if !matches!(self.lanes, 1 | 2 | 4 | 8 | 16 | 32) {
            return Err(LinkConfigError::BadLaneCount(self.lanes));
        }
        let in_range = |v: usize| v.is_power_of_two() && (128..=4096).contains(&v);
        if !in_range(self.max_payload_size) {
            return Err(LinkConfigError::BadMaxPayloadSize(self.max_payload_size));
        }
        if !in_range(self.max_read_request_size) {
            return Err(LinkConfigError::BadMaxReadRequestSize(
                self.max_read_request_size,
            ));
        }
        Ok(())
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::gen2_x8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_x8_effective_rate_is_4_bytes_per_ns() {
        let cfg = LinkConfig::gen2_x8();
        assert!((cfg.bytes_per_ns() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wire_time_rounds_up() {
        let cfg = LinkConfig::gen2_x8();
        assert_eq!(cfg.wire_time(4096), Nanos::from_ns(1024));
        assert_eq!(cfg.wire_time(1), Nanos::from_ns(1));
        assert_eq!(cfg.wire_time(0), Nanos::ZERO);
    }

    #[test]
    fn generation_rates_ordered() {
        let gens = [
            Generation::Gen1,
            Generation::Gen2,
            Generation::Gen3,
            Generation::Gen4,
            Generation::Gen5,
        ];
        for w in gens.windows(2) {
            assert!(w[0].gt_per_sec() < w[1].gt_per_sec());
        }
    }

    #[test]
    fn gen4_is_faster_than_gen2() {
        assert!(LinkConfig::gen4_x4().bytes_per_ns() > LinkConfig::gen2_x8().bytes_per_ns());
    }

    #[test]
    fn mps_override() {
        let cfg = LinkConfig::gen2_x8().with_max_payload_size(512);
        assert_eq!(cfg.max_payload_size, 512);
    }

    #[test]
    #[should_panic(expected = "MPS must be a power of two")]
    fn bad_mps_panics() {
        let _ = LinkConfig::gen2_x8().with_max_payload_size(300);
    }

    #[test]
    fn stock_configs_validate() {
        for cfg in [
            LinkConfig::gen2_x8(),
            LinkConfig::gen4_x4(),
            LinkConfig::gen5_x4(),
            LinkConfig::default(),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_boundary_values() {
        // 0: the misconfiguration the segmenters used to clamp silently.
        let mut cfg = LinkConfig::gen2_x8();
        cfg.max_payload_size = 0;
        assert_eq!(cfg.validate(), Err(LinkConfigError::BadMaxPayloadSize(0)));

        // 1: a power of two, but below the spec minimum of 128.
        let mut cfg = LinkConfig::gen2_x8();
        cfg.max_payload_size = 1;
        assert_eq!(cfg.validate(), Err(LinkConfigError::BadMaxPayloadSize(1)));

        // Non-power-of-two, in range.
        let mut cfg = LinkConfig::gen2_x8();
        cfg.max_read_request_size = 300;
        assert_eq!(
            cfg.validate(),
            Err(LinkConfigError::BadMaxReadRequestSize(300))
        );

        // Boundaries of the legal range are legal.
        let mut cfg = LinkConfig::gen2_x8();
        cfg.max_payload_size = 128;
        cfg.max_read_request_size = 4096;
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_lane_counts() {
        let mut cfg = LinkConfig::gen2_x8();
        cfg.lanes = 0;
        assert_eq!(cfg.validate(), Err(LinkConfigError::BadLaneCount(0)));
        cfg.lanes = 3;
        assert_eq!(cfg.validate(), Err(LinkConfigError::BadLaneCount(3)));
    }
}
