//! Property tests pinning the wire layout of every registered ring type:
//! encode→decode is the identity on arbitrary bit patterns, and the encoded
//! images have exactly the sizes the const asserts (and bx-lint's wire
//! registry) claim. A layout drift that somehow slips past the const pins
//! fails here on the first shrunk counterexample.

use bx_nvme::inline::{ChunkHeader, REASSEMBLY_HEADER_BYTES};
use bx_nvme::sgl::SglDescriptor;
use bx_nvme::{CompletionEntry, SubmissionEntry};
use proptest::prelude::*;

proptest! {
    /// Any 64-byte image survives SQE decode→encode bit-for-bit, so every
    /// field accessor reads exactly the dwords the encoder wrote.
    #[test]
    fn sqe_wire_image_round_trip(img in proptest::array::uniform32(any::<u16>())) {
        let mut bytes = [0u8; SubmissionEntry::BYTES];
        for (i, w) in img.iter().enumerate() {
            bytes[i * 2..i * 2 + 2].copy_from_slice(&w.to_le_bytes());
        }
        let sqe = SubmissionEntry::from_bytes(&bytes);
        prop_assert_eq!(sqe.to_bytes(), bytes);
    }

    /// Any 16-byte image survives CQE decode→encode bit-for-bit.
    #[test]
    fn cqe_wire_image_round_trip(img in proptest::array::uniform4(any::<u32>())) {
        let mut bytes = [0u8; CompletionEntry::BYTES];
        for (i, dw) in img.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&dw.to_le_bytes());
        }
        let cqe = CompletionEntry::from_bytes(&bytes);
        prop_assert_eq!(cqe.to_bytes(), bytes);
    }

    /// CQE field packing: every constructor input reads back unchanged after
    /// a trip through the wire image.
    #[test]
    fn cqe_fields_survive_wire(
        cid in any::<u16>(),
        sq_id in any::<u16>(),
        sq_head in any::<u16>(),
        phase in any::<bool>(),
        result in any::<u32>(),
    ) {
        let mut cqe = CompletionEntry::new(cid, sq_id, sq_head, bx_nvme::Status::Success, phase);
        cqe.set_result(result);
        let back = CompletionEntry::from_bytes(&cqe.to_bytes());
        prop_assert_eq!(back.cid(), cid);
        prop_assert_eq!(back.sq_id(), sq_id);
        prop_assert_eq!(back.sq_head(), sq_head);
        prop_assert_eq!(back.phase(), phase);
        prop_assert_eq!(back.result(), result);
        prop_assert_eq!(back.status(), bx_nvme::Status::Success);
    }

    /// Reassembly chunk headers round-trip through their 8 wire bytes.
    #[test]
    fn chunk_header_round_trip(
        payload_id in any::<u32>(),
        chunk_no in any::<u16>(),
        total in any::<u16>(),
    ) {
        let hdr = ChunkHeader { payload_id, chunk_no, total };
        let bytes = hdr.to_bytes();
        prop_assert_eq!(bytes.len(), REASSEMBLY_HEADER_BYTES);
        prop_assert_eq!(ChunkHeader::from_bytes(&bytes), hdr);
        // Little-endian field placement is part of the wire contract.
        prop_assert_eq!(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]), payload_id);
    }

    /// SGL descriptors round-trip through their 16 wire bytes for every
    /// descriptor kind the walker understands.
    #[test]
    fn sgl_descriptor_round_trip(
        addr in any::<u64>(),
        len in any::<u32>(),
        kind in 0usize..4,
    ) {
        let addr = bx_hostsim::PhysAddr(addr);
        let d = match kind {
            0 => SglDescriptor::data_block(addr, len),
            1 => SglDescriptor::bit_bucket(len),
            2 => SglDescriptor::segment(addr, len),
            _ => SglDescriptor::last_segment(addr, len),
        };
        let bytes = d.to_bytes();
        prop_assert_eq!(bytes.len(), SglDescriptor::BYTES);
        prop_assert_eq!(SglDescriptor::from_bytes(&bytes).unwrap(), d);
    }
}
