//! Property-based tests over the NVMe protocol codecs.

use bx_hostsim::{HostMemory, PhysAddr, PAGE_SIZE};
use bx_nvme::prp::{pages_spanned, walk, PrpSegments};
use bx_nvme::{inline, CompletionEntry, Status, SubmissionEntry, STATUS_DNR_BIT};
use proptest::prelude::*;

proptest! {
    /// Any 64-byte image decodes and re-encodes to itself: the SQE codec is a
    /// bijection on wire images.
    #[test]
    fn sqe_wire_bijection(bytes in proptest::array::uniform32(any::<u8>())) {
        // Build a full 64-byte image from two 32-byte halves.
        let mut full = [0u8; 64];
        full[..32].copy_from_slice(&bytes);
        full[32..].copy_from_slice(&bytes);
        let sqe = SubmissionEntry::from_bytes(&full);
        prop_assert_eq!(sqe.to_bytes(), full);
    }

    /// Field setters never disturb other fields.
    #[test]
    fn sqe_field_independence(cid in any::<u16>(), nsid in any::<u32>(), len in 1usize..inline::MAX_INLINE_LEN) {
        let mut sqe = SubmissionEntry::zeroed();
        sqe.set_opcode_raw(0xC1);
        sqe.set_cid(cid);
        sqe.set_nsid(nsid);
        inline::set_inline_len(&mut sqe, len);
        sqe.set_prp1(PhysAddr(0xAAAA_0000));
        prop_assert_eq!(sqe.cid(), cid);
        prop_assert_eq!(sqe.nsid(), nsid);
        prop_assert_eq!(inline::inline_len(&sqe), Some(len));
        prop_assert_eq!(sqe.opcode_raw(), 0xC1);
    }

    /// CQE round-trips all fields through the 16-byte image.
    #[test]
    fn cqe_round_trip(cid in any::<u16>(), sqid in any::<u16>(), head in any::<u16>(), phase in any::<bool>(), result in any::<u32>()) {
        let mut cqe = CompletionEntry::new(cid, sqid, head, Status::Success, phase);
        cqe.set_result(result);
        let back = CompletionEntry::from_bytes(&cqe.to_bytes());
        prop_assert_eq!(back.cid(), cid);
        prop_assert_eq!(back.sq_id(), sqid);
        prop_assert_eq!(back.sq_head(), head);
        prop_assert_eq!(back.phase(), phase);
        prop_assert_eq!(back.result(), result);
    }

    /// Inline chunk encode/decode is the identity for any payload.
    #[test]
    fn chunk_codec_identity(payload in proptest::collection::vec(any::<u8>(), 1..5000)) {
        let chunks = inline::encode_chunks(&payload);
        prop_assert_eq!(chunks.len(), inline::chunks_for_len(payload.len()));
        prop_assert_eq!(inline::decode_chunks(&chunks, payload.len()), payload);
    }

    /// Reassembly-mode chunks reconstruct the payload from any arrival order.
    #[test]
    fn reassembly_any_order(payload in proptest::collection::vec(any::<u8>(), 1..2000), seed in any::<u64>()) {
        let chunks = inline::encode_reassembly_chunks(7, &payload);
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut out = vec![0u8; payload.len()];
        for &i in &order {
            let (hdr, data) = inline::split_reassembly_chunk(&chunks[i]);
            let off = hdr.chunk_no as usize * inline::REASSEMBLY_CHUNK_PAYLOAD;
            let take = (payload.len() - off).min(inline::REASSEMBLY_CHUNK_PAYLOAD);
            out[off..off + take].copy_from_slice(&data[..take]);
        }
        prop_assert_eq!(out, payload);
    }

    /// PRP build→walk covers exactly the payload bytes for arbitrary
    /// offset/length combinations.
    #[test]
    fn prp_build_walk_exact_cover(offset in 0usize..PAGE_SIZE, len in 1usize..(20 * PAGE_SIZE)) {
        let mut mem = HostMemory::with_capacity(64 * PAGE_SIZE);
        let need = pages_spanned(offset, len);
        prop_assume!(need <= 24);
        let pages: Vec<PhysAddr> = (0..need).map(|_| mem.alloc_page().unwrap().addr()).collect();
        let prp = PrpSegments::build(&mut mem, &pages, offset, len).unwrap();
        let segs = walk(&mem, prp.prp1, prp.prp2, len, |_, _| {}).unwrap();
        // Exact coverage, in order, no overlaps.
        let total: usize = segs.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, len);
        prop_assert_eq!(segs[0].addr.page_offset(), offset);
        for (i, seg) in segs.iter().enumerate() {
            prop_assert_eq!(seg.addr.page_base(), pages[i]);
            if i > 0 {
                prop_assert!(seg.addr.is_page_aligned());
            }
        }
    }

    /// Status wire codec: decoding an encoding is the identity.
    #[test]
    fn status_wire_stable(code in 0u16..0x7FFF) {
        let s = Status::from_wire(code);
        prop_assert_eq!(Status::from_wire(s.to_wire()), s);
    }

    /// Encode→decode is the identity on every 15-bit wire code — unknown
    /// and vendor codes survive verbatim through `Status::Unknown` instead
    /// of collapsing to a catch-all.
    #[test]
    fn status_roundtrip_preserves_every_wire_code(code in 0u16..0x8000) {
        prop_assert_eq!(Status::from_wire(code).to_wire(), code);
    }

    /// A wire code that decodes to `Unknown` with the DNR (do-not-retry)
    /// bit set must never be classified retriable.
    #[test]
    fn unknown_with_dnr_is_never_retriable(code in 0u16..0x8000) {
        let s = Status::from_wire(code | STATUS_DNR_BIT);
        if matches!(s, Status::Unknown(_)) {
            prop_assert!(!s.is_retriable());
        }
    }
}
