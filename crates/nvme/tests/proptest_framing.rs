//! Property tests over the transfer-framing codecs: BandSlim head/fragment
//! packing and SGL descriptor chains.

use bx_hostsim::{HostMemory, PhysAddr, PAGE_SIZE};
use bx_nvme::sgl::{walk as sgl_walk, SglDescriptor};
use bx_nvme::{bandslim, IoOpcode, SubmissionEntry};
use proptest::prelude::*;

proptest! {
    /// The BandSlim head + fragment train reconstructs any payload, at any
    /// head-embedding capacity.
    #[test]
    fn bandslim_framing_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 1..2000),
        embed_cap in 0usize..=bandslim::HEAD_CAPACITY,
    ) {
        let mut head = SubmissionEntry::io(IoOpcode::KvPut, 7, 1);
        let embedded = bandslim::encode_head(&mut head, &payload, embed_cap);
        prop_assert_eq!(embedded, payload.len().min(embed_cap));
        prop_assert_eq!(bandslim::head_len(&head), Some(payload.len()));
        prop_assert_eq!(bandslim::head_embedded(&head), embedded);

        // Controller-side reconstruction: head prefix + fragments.
        let mut out = bandslim::decode_head(&head, embedded);
        let mut off = embedded;
        let mut frag_no = 0u32;
        while off < payload.len() {
            let take = (payload.len() - off).min(bandslim::FRAG_CAPACITY);
            let frag = bandslim::encode_frag(7, 1, frag_no, &payload[off..off + take]);
            prop_assert!(bandslim::is_frag(&frag));
            // Survive the wire.
            let frag = SubmissionEntry::from_bytes(&frag.to_bytes());
            let (no, data) = bandslim::decode_frag(&frag, take);
            prop_assert_eq!(no, frag_no);
            out.extend_from_slice(&data);
            off += take;
            frag_no += 1;
        }
        prop_assert_eq!(
            1 + frag_no as usize,
            bandslim::commands_for_len(payload.len(), embed_cap)
        );
        prop_assert_eq!(out, payload);
    }

    /// Head embedding never corrupts the command's key/opcode fields.
    #[test]
    fn bandslim_head_preserves_command_fields(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        key in proptest::array::uniform4(any::<u32>()),
        cid in any::<u16>(),
    ) {
        let mut sqe = SubmissionEntry::io(IoOpcode::KvPut, cid, 1);
        for (i, k) in key.iter().enumerate() {
            sqe.set_cdw(10 + i, *k);
        }
        bandslim::encode_head(&mut sqe, &payload, bandslim::HEAD_CAPACITY);
        prop_assert_eq!(sqe.opcode_raw(), IoOpcode::KvPut as u8);
        prop_assert_eq!(sqe.cid(), cid);
        for (i, k) in key.iter().enumerate() {
            prop_assert_eq!(sqe.cdw(10 + i), *k);
        }
    }

    /// A multi-extent SGL chain walks back exactly the extents written.
    #[test]
    fn sgl_chain_walk_exact(
        lens in proptest::collection::vec(1u32..5000, 1..20),
    ) {
        let mut mem = HostMemory::with_capacity(64 * PAGE_SIZE);
        // Descriptor array at a fixed page; data addresses synthetic.
        let seg_page = mem.alloc_page().unwrap().addr();
        let mut expected = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let addr = PhysAddr(0x10_0000 + (i as u64) * 0x1_0000);
            let d = SglDescriptor::data_block(addr, len);
            mem.write(seg_page.offset((i * 16) as u64), &d.to_bytes()).unwrap();
            expected.push((Some(addr), len as usize));
        }
        let total: usize = lens.iter().map(|&l| l as usize).sum();
        let first = SglDescriptor::last_segment(seg_page, (lens.len() * 16) as u32);
        let extents = sgl_walk(&mem, first, total, |_, _| {}).unwrap();
        let got: Vec<(Option<PhysAddr>, usize)> =
            extents.iter().map(|e| (e.addr, e.len)).collect();
        prop_assert_eq!(got, expected);
    }

    /// SGL length accounting: a wrong expected length is always rejected.
    #[test]
    fn sgl_length_mismatch_always_detected(len in 1u32..10000, delta in 1usize..100) {
        let mem = HostMemory::with_capacity(PAGE_SIZE);
        let d = SglDescriptor::data_block(PhysAddr(64), len);
        let over = sgl_walk(&mem, d, len as usize + delta, |_, _| {}).is_err();
        prop_assert!(over);
        let short_len = (len as usize).saturating_sub(delta);
        let under = sgl_walk(&mem, d, short_len, |_, _| {}).is_err();
        prop_assert!(under, "walk accepted a short length");
    }
}
