//! Property-based tests over queue-ring occupancy math.
//!
//! Regression territory for the `used_slots` bug: the original
//! `tail.wrapping_sub(head) % depth` reduces mod 65536 *before* reducing mod
//! depth, which only agrees with ring arithmetic when depth divides 65536 —
//! i.e. only at power-of-two depths. These properties run the rings at
//! arbitrary depths (primes included) and check the invariants that the old
//! math violated.

use bx_hostsim::{DmaRegion, PhysAddr, PAGE_SIZE};
use bx_nvme::{CqProducer, CqRing, QueueId, SqRing, CQE_BYTES, SQE_BYTES};
use proptest::prelude::*;

fn sq(depth: u16) -> SqRing {
    let region = DmaRegion::new(PhysAddr(PAGE_SIZE as u64), depth as usize * SQE_BYTES);
    SqRing::new(QueueId(1), region, depth)
}

fn cq(depth: u16) -> CqRing {
    let region = DmaRegion::new(PhysAddr(PAGE_SIZE as u64), depth as usize * CQE_BYTES);
    CqRing::new(QueueId(1), region, depth)
}

/// A deterministic xorshift so each test case walks its own push/complete
/// schedule without needing proptest to generate a full op sequence.
fn next(seed: &mut u64) -> u64 {
    let mut x = *seed;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *seed = x;
    x
}

proptest! {
    /// The one-slot-open invariant holds at every depth, at every step:
    /// `used + free == depth - 1`, and `used` always equals the number of
    /// pushes minus completions (the model a ring is supposed to implement).
    #[test]
    fn occupancy_matches_outstanding_model(depth in 2u16..=1024, seed in any::<u64>()) {
        let mut q = sq(depth);
        let mut seed = seed | 1;
        let mut pushed: u64 = 0;
        let mut completed: u64 = 0;
        for _ in 0..300 {
            let outstanding = (pushed - completed) as u16;
            let push = q.can_push(1) && (outstanding == 0 || next(&mut seed) % 2 == 0);
            if push {
                q.push_slot();
                pushed += 1;
            } else {
                // Consume between 1 and all outstanding entries.
                let take = 1 + next(&mut seed) % outstanding as u64;
                completed += take;
                q.complete_up_to((completed % depth as u64) as u16);
            }
            let outstanding = (pushed - completed) as u16;
            prop_assert_eq!(q.used_slots(), outstanding);
            prop_assert_eq!(q.free_slots(), depth - 1 - outstanding);
            prop_assert!(q.tail() < depth);
            prop_assert!(q.head() < depth);
        }
    }

    /// Producer and consumer indices never desync across many laps: after
    /// `n` pushes the tail is at `n mod depth`, after completing all of them
    /// the ring reads empty again — for *any* depth, prime or not.
    #[test]
    fn full_laps_return_to_empty(depth in 2u16..=1024, laps in 1u32..5) {
        let mut q = sq(depth);
        let mut total: u64 = 0;
        for _ in 0..laps {
            // Fill to capacity, then drain completely.
            while q.can_push(1) {
                let idx = q.push_slot();
                prop_assert_eq!(idx as u64, total % depth as u64);
                total += 1;
            }
            prop_assert_eq!(q.used_slots(), depth - 1);
            prop_assert_eq!(q.free_slots(), 0);
            q.complete_up_to((total % depth as u64) as u16);
            prop_assert_eq!(q.used_slots(), 0);
            prop_assert_eq!(q.free_slots(), depth - 1);
        }
    }

    /// The CQ phase bit flips exactly on head wrap — after `k` pops the
    /// expected phase is `initial ^ (k / depth odd)` — and the device-side
    /// producer stays in lockstep (same slot, same phase) forever.
    #[test]
    fn cq_phase_flips_exactly_on_wrap(depth in 2u16..=1024, pops in 1u32..4000) {
        let mut ring = cq(depth);
        let mut prod = CqProducer::new(depth);
        for k in 0..pops {
            let wraps = k / depth as u32;
            prop_assert_eq!(ring.expected_phase(), wraps % 2 == 0);
            prop_assert_eq!(ring.head() as u32, k % depth as u32);
            let (slot, phase) = prod.produce();
            prop_assert_eq!(slot, ring.head());
            prop_assert_eq!(phase, ring.expected_phase());
            ring.pop_slot();
        }
    }

    /// Directly pins the arithmetic identity the bug broke: for any valid
    /// (head, tail) pair, `used_slots` equals `(tail - head) mod depth`
    /// computed in wide integers — not `(tail -16 head) % depth`.
    #[test]
    fn used_slots_is_true_modular_distance(depth in 2u16..=1024, head_steps in 0u16..1024, extra in 0u16..1024) {
        let head = head_steps % depth;
        let used = extra % depth;
        // Drive the ring to (head, head + used mod depth) via real ops.
        let mut q = sq(depth);
        let mut pushed: u64 = 0;
        for _ in 0..head {
            q.push_slot();
            pushed += 1;
        }
        q.complete_up_to(head);
        prop_assume!(used <= depth - 1);
        for _ in 0..used {
            q.push_slot();
            pushed += 1;
        }
        let tail = (pushed % depth as u64) as u16;
        prop_assert_eq!(q.tail(), tail);
        let truth = (tail as i32 - head as i32).rem_euclid(depth as i32) as u16;
        prop_assert_eq!(q.used_slots(), truth);
        // And the old formula disagrees somewhere on every non-pow2 depth —
        // when it does disagree here, the fix must win.
        let old = (tail.wrapping_sub(head)) % depth;
        if old != truth {
            prop_assert_ne!(q.used_slots(), old);
        }
    }
}
