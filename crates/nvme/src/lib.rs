//! # bx-nvme — NVMe protocol data model
//!
//! Bit-exact NVMe structures shared by the host driver (`bx-driver`) and the
//! simulated controller (`bx-ssd`):
//!
//! * 64-byte submission queue entries ([`SubmissionEntry`]) and 16-byte
//!   completion queue entries ([`CompletionEntry`]), encoded/decoded to the
//!   exact wire layout — the ByteExpress mechanism is *defined* in terms of
//!   this layout (a reserved dword carries the inline payload length).
//! * PRP ([`prp`]) and SGL ([`sgl`]) data-pointer construction and parsing.
//! * Queue-ring geometry and doorbell state ([`queue`]).
//! * The NVMe-passthrough command surface ([`passthru`]) that computational
//!   storage APIs (KV-SSD, CSD) ride on.
//! * ByteExpress framing helpers ([`inline`]): chunk counts, the reserved-field
//!   length encoding, and the chunk-header codec used by the out-of-order
//!   reassembly extension.
//!
//! ## Example: building the paper's inline-write command
//!
//! ```
//! use bx_nvme::{IoOpcode, SubmissionEntry, inline};
//!
//! let mut sqe = SubmissionEntry::io(IoOpcode::Write, 42 /* cid */, 1 /* nsid */);
//! inline::set_inline_len(&mut sqe, 100);
//! assert_eq!(inline::inline_len(&sqe), Some(100));
//! assert_eq!(inline::chunks_for_len(100), 2); // two 64-byte SQ slots
//!
//! // Encode/decode round-trips through the exact 64-byte wire image.
//! let wire = sqe.to_bytes();
//! assert_eq!(SubmissionEntry::from_bytes(&wire), sqe);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod bandslim;
pub mod cqe;
pub mod identify;
pub mod inline;
pub mod opcode;
pub mod passthru;
pub mod prp;
pub mod queue;
pub mod sgl;
pub mod sqe;
pub mod status;

pub use cqe::CompletionEntry;
pub use identify::{IdentifyController, VendorCaps, IDENTIFY_BYTES};
pub use inline::{ChunkHeader, BYTEEXPRESS_CHUNK_SIZE, REASSEMBLY_HEADER_BYTES};
pub use opcode::{AdminOpcode, IoOpcode, Opcode};
pub use passthru::PassthruCmd;
pub use prp::{PrpError, PrpSegments};
pub use queue::{CqProducer, CqRing, DoorbellArray, QueueId, SqRing, CQE_BYTES, SQE_BYTES};
pub use sgl::{SglDescriptor, SglError};
pub use sqe::SubmissionEntry;
pub use status::{Status, STATUS_DNR_BIT};
