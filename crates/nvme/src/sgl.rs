//! Scatter-Gather List descriptors.
//!
//! SGL is the NVMe alternative to PRP that the paper's §5 compares against:
//! a single data-block descriptor can reference a small contiguous region, so
//! SGL avoids page-granular amplification — but the Linux driver only enables
//! it above a 32 KB threshold by default, and PRP remains mandatory over
//! PCIe. We implement the subset needed for that comparison: data-block
//! descriptors, bit-bucket descriptors, and (last-)segment chaining.

use bx_hostsim::{HostMemory, MemError, PhysAddr};
use std::fmt;

/// SGL descriptor types (high nibble of byte 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SglDescriptorType {
    /// A contiguous data block.
    DataBlock,
    /// A bit bucket: discards read data (paper §5: placeholders for unused
    /// read segments).
    BitBucket,
    /// A segment: pointer to the next array of descriptors.
    Segment,
    /// The last segment pointer.
    LastSegment,
}

impl SglDescriptorType {
    fn code(self) -> u8 {
        match self {
            SglDescriptorType::DataBlock => 0x0,
            SglDescriptorType::BitBucket => 0x1,
            SglDescriptorType::Segment => 0x2,
            SglDescriptorType::LastSegment => 0x3,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0x0 => SglDescriptorType::DataBlock,
            0x1 => SglDescriptorType::BitBucket,
            0x2 => SglDescriptorType::Segment,
            0x3 => SglDescriptorType::LastSegment,
            _ => return None,
        })
    }
}

/// Errors from SGL construction or traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SglError {
    /// An unknown descriptor type code was encountered.
    UnknownType(u8),
    /// Host memory error while walking segments.
    Mem(MemError),
    /// Descriptor chain did not describe `len` bytes.
    LengthMismatch {
        /// Bytes described by the chain.
        described: usize,
        /// Bytes the command claimed.
        expected: usize,
    },
    /// Segment nesting exceeded the sane limit (loop protection).
    TooDeep,
}

impl fmt::Display for SglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SglError::UnknownType(t) => write!(f, "unknown sgl descriptor type {t:#x}"),
            SglError::Mem(e) => write!(f, "sgl memory error: {e}"),
            SglError::LengthMismatch {
                described,
                expected,
            } => {
                write!(
                    f,
                    "sgl length mismatch: described {described}, expected {expected}"
                )
            }
            SglError::TooDeep => write!(f, "sgl segment chain too deep"),
        }
    }
}

impl std::error::Error for SglError {}

impl From<MemError> for SglError {
    fn from(e: MemError) -> Self {
        SglError::Mem(e)
    }
}

/// One 16-byte SGL descriptor.
///
/// Layout: address (bytes 0–7, LE), length (bytes 8–11, LE), reserved
/// (bytes 12–14), type in the high nibble of byte 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SglDescriptor {
    /// Descriptor type.
    pub kind: SglDescriptorType,
    /// Target address (data block or next segment).
    pub addr: PhysAddr,
    /// Byte length (data length, bucket size, or segment byte length).
    pub len: u32,
}

// Wire-layout pin: one SGL descriptor is exactly 16 bytes on the wire (the
// in-memory struct is larger; only the encoded image is layout-bearing).
const _: () = assert!(SglDescriptor::BYTES == 16);

impl SglDescriptor {
    /// Size of the encoded wire image in bytes.
    pub const BYTES: usize = 16;

    /// A data-block descriptor over `len` bytes at `addr` — the fine-grained
    /// reference that lets SGL avoid page-granular transfers.
    pub fn data_block(addr: PhysAddr, len: u32) -> Self {
        SglDescriptor {
            kind: SglDescriptorType::DataBlock,
            addr,
            len,
        }
    }

    /// A bit-bucket descriptor discarding `len` bytes.
    pub fn bit_bucket(len: u32) -> Self {
        SglDescriptor {
            kind: SglDescriptorType::BitBucket,
            addr: PhysAddr(0),
            len,
        }
    }

    /// A (non-last) segment descriptor pointing at `len` bytes of descriptors.
    pub fn segment(addr: PhysAddr, len: u32) -> Self {
        SglDescriptor {
            kind: SglDescriptorType::Segment,
            addr,
            len,
        }
    }

    /// A last-segment descriptor.
    pub fn last_segment(addr: PhysAddr, len: u32) -> Self {
        SglDescriptor {
            kind: SglDescriptorType::LastSegment,
            addr,
            len,
        }
    }

    /// Encodes to the 16-byte wire image.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.addr.0.to_le_bytes());
        out[8..12].copy_from_slice(&self.len.to_le_bytes());
        out[15] = self.kind.code() << 4;
        out
    }

    /// Decodes from a 16-byte wire image.
    ///
    /// # Errors
    ///
    /// [`SglError::UnknownType`] for unrecognized descriptor type codes.
    pub fn from_bytes(b: &[u8; 16]) -> Result<Self, SglError> {
        let kind =
            SglDescriptorType::from_code(b[15] >> 4).ok_or(SglError::UnknownType(b[15] >> 4))?;
        Ok(SglDescriptor {
            kind,
            addr: PhysAddr(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ])),
            len: u32::from_le_bytes([b[8], b[9], b[10], b[11]]),
        })
    }
}

/// A resolved data extent from an SGL walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SglExtent {
    /// Host address; `None` for bit-bucket extents (data is discarded).
    pub addr: Option<PhysAddr>,
    /// Length in bytes.
    pub len: usize,
}

/// Walks an SGL starting from the descriptor embedded in the command,
/// following segment descriptors through host memory, and returns the data
/// extents.
///
/// `on_segment_read(addr, bytes)` is invoked for each descriptor-array fetch
/// so callers can account its PCIe traffic.
///
/// # Errors
///
/// * [`SglError::LengthMismatch`] if the chain does not describe `expected_len`.
/// * [`SglError::UnknownType`] / [`SglError::Mem`] / [`SglError::TooDeep`] on
///   malformed chains.
pub fn walk(
    mem: &HostMemory,
    first: SglDescriptor,
    expected_len: usize,
    mut on_segment_read: impl FnMut(PhysAddr, usize),
) -> Result<Vec<SglExtent>, SglError> {
    let mut extents = Vec::new();
    let mut described = 0usize;
    let mut depth = 0usize;
    let mut cursor = Some(first);

    while let Some(desc) = cursor.take() {
        match desc.kind {
            SglDescriptorType::DataBlock => {
                extents.push(SglExtent {
                    addr: Some(desc.addr),
                    len: desc.len as usize,
                });
                described += desc.len as usize;
            }
            SglDescriptorType::BitBucket => {
                extents.push(SglExtent {
                    addr: None,
                    len: desc.len as usize,
                });
                described += desc.len as usize;
            }
            SglDescriptorType::Segment | SglDescriptorType::LastSegment => {
                depth += 1;
                if depth > 16 {
                    return Err(SglError::TooDeep);
                }
                on_segment_read(desc.addr, desc.len as usize);
                let count = desc.len as usize / 16;
                let mut next_cursor = None;
                for i in 0..count {
                    let mut raw = [0u8; 16];
                    mem.read(desc.addr.offset((i * 16) as u64), &mut raw)?;
                    let d = SglDescriptor::from_bytes(&raw)?;
                    match d.kind {
                        SglDescriptorType::DataBlock => {
                            extents.push(SglExtent {
                                addr: Some(d.addr),
                                len: d.len as usize,
                            });
                            described += d.len as usize;
                        }
                        SglDescriptorType::BitBucket => {
                            extents.push(SglExtent {
                                addr: None,
                                len: d.len as usize,
                            });
                            described += d.len as usize;
                        }
                        SglDescriptorType::Segment | SglDescriptorType::LastSegment => {
                            // Per spec, a segment pointer may only be the last
                            // descriptor in a segment.
                            next_cursor = Some(d);
                        }
                    }
                }
                cursor = next_cursor;
            }
        }
    }

    if described != expected_len {
        return Err(SglError::LengthMismatch {
            described,
            expected: expected_len,
        });
    }
    Ok(extents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_hostsim::PAGE_SIZE;

    #[test]
    fn descriptor_round_trip() {
        for d in [
            SglDescriptor::data_block(PhysAddr(0x1234), 100),
            SglDescriptor::bit_bucket(512),
            SglDescriptor::segment(PhysAddr(0x8000), 64),
            SglDescriptor::last_segment(PhysAddr(0x9000), 32),
        ] {
            assert_eq!(SglDescriptor::from_bytes(&d.to_bytes()).unwrap(), d);
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut b = [0u8; 16];
        b[15] = 0xF0;
        assert_eq!(
            SglDescriptor::from_bytes(&b).unwrap_err(),
            SglError::UnknownType(0xF)
        );
    }

    #[test]
    fn single_data_block_walk() {
        let mem = HostMemory::with_capacity(PAGE_SIZE);
        let d = SglDescriptor::data_block(PhysAddr(64), 100);
        let extents = walk(&mem, d, 100, |_, _| {}).unwrap();
        assert_eq!(extents.len(), 1);
        assert_eq!(extents[0].addr, Some(PhysAddr(64)));
        assert_eq!(extents[0].len, 100);
    }

    #[test]
    fn length_mismatch_detected() {
        let mem = HostMemory::with_capacity(PAGE_SIZE);
        let d = SglDescriptor::data_block(PhysAddr(64), 100);
        assert_eq!(
            walk(&mem, d, 101, |_, _| {}).unwrap_err(),
            SglError::LengthMismatch {
                described: 100,
                expected: 101
            }
        );
    }

    #[test]
    fn segment_chain_walk() {
        let mut mem = HostMemory::with_capacity(8 * PAGE_SIZE);
        // Two data blocks described in a segment array at 0x1000.
        let seg_addr = PhysAddr(0x1000);
        let d1 = SglDescriptor::data_block(PhysAddr(0x2000), 30);
        let d2 = SglDescriptor::data_block(PhysAddr(0x3000), 70);
        mem.write(seg_addr, &d1.to_bytes()).unwrap();
        mem.write(seg_addr.offset(16), &d2.to_bytes()).unwrap();

        let first = SglDescriptor::last_segment(seg_addr, 32);
        let mut fetches = Vec::new();
        let extents = walk(&mem, first, 100, |a, l| fetches.push((a, l))).unwrap();
        assert_eq!(extents.len(), 2);
        assert_eq!(fetches, vec![(seg_addr, 32)]);
        assert_eq!(extents[1].len, 70);
    }

    #[test]
    fn bit_bucket_counts_toward_length() {
        let mem = HostMemory::with_capacity(PAGE_SIZE);
        let d = SglDescriptor::bit_bucket(4096);
        let extents = walk(&mem, d, 4096, |_, _| {}).unwrap();
        assert_eq!(extents[0].addr, None);
    }

    #[test]
    fn two_level_chain() {
        let mut mem = HostMemory::with_capacity(8 * PAGE_SIZE);
        // Segment A: one data block + pointer to last segment B.
        let seg_a = PhysAddr(0x1000);
        let seg_b = PhysAddr(0x4000);
        let d1 = SglDescriptor::data_block(PhysAddr(0x2000), 10);
        let to_b = SglDescriptor::last_segment(seg_b, 16);
        mem.write(seg_a, &d1.to_bytes()).unwrap();
        mem.write(seg_a.offset(16), &to_b.to_bytes()).unwrap();
        let d2 = SglDescriptor::data_block(PhysAddr(0x5000), 20);
        mem.write(seg_b, &d2.to_bytes()).unwrap();

        let first = SglDescriptor::segment(seg_a, 32);
        let mut seg_reads = 0;
        let extents = walk(&mem, first, 30, |_, _| seg_reads += 1).unwrap();
        assert_eq!(extents.len(), 2);
        assert_eq!(seg_reads, 2);
    }
}
