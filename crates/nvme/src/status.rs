//! Completion status codes.

use std::fmt;

/// Bit in the wire status field marking "do not retry" (mirrors NVMe's DNR
/// bit). Only consulted for [`Status::Unknown`] codes, where the variant
/// itself carries no retriability semantics.
pub const STATUS_DNR_BIT: u16 = 0x4000;

/// NVMe completion status (generic command set plus the vendor codes the
/// computational-storage substrates return).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Status {
    /// Successful completion.
    #[default]
    Success,
    /// Invalid command opcode.
    InvalidOpcode,
    /// Invalid field in command.
    InvalidField,
    /// Data transfer error.
    DataTransferError,
    /// Internal device error.
    InternalError,
    /// Command aborted (host-requested or driver-timeout synthetic
    /// completion).
    CommandAborted,
    /// LBA out of range.
    LbaOutOfRange,
    /// Capacity exceeded.
    CapacityExceeded,
    /// Vendor: key does not exist (KV-SSD GET/DELETE).
    KvKeyNotFound,
    /// Vendor: key or value exceeds device limits.
    KvInvalidSize,
    /// Vendor: CSD task failed to parse or reference a known table.
    CsdBadTask,
    /// A wire encoding this driver build does not recognize. The raw code is
    /// preserved so logs and retry classification ([`Status::is_retriable`])
    /// can still act on it instead of collapsing everything into
    /// [`Status::InternalError`].
    Unknown(u16),
}

impl Status {
    /// Whether the command succeeded.
    pub fn is_success(self) -> bool {
        self == Status::Success
    }

    /// Classifies the status for the driver's retry path: `true` for
    /// transient conditions where resubmitting the same command may succeed
    /// (transfer glitches, device-internal hiccups, aborts/timeouts), `false`
    /// for deterministic command faults that would fail identically on every
    /// attempt (malformed commands, out-of-range addresses, semantic KV/CSD
    /// errors). Unknown codes are retriable unless the encoding carries the
    /// [`STATUS_DNR_BIT`].
    pub fn is_retriable(self) -> bool {
        match self {
            Status::DataTransferError | Status::InternalError | Status::CommandAborted => true,
            Status::Unknown(w) => w & STATUS_DNR_BIT == 0,
            Status::Success
            | Status::InvalidOpcode
            | Status::InvalidField
            | Status::LbaOutOfRange
            | Status::CapacityExceeded
            | Status::KvKeyNotFound
            | Status::KvInvalidSize
            | Status::CsdBadTask => false,
        }
    }

    /// Encodes into the CQE status field layout: status code in bits 7:0,
    /// status code type in bits 10:8 (0 = generic, 7 = vendor).
    pub fn to_wire(self) -> u16 {
        match self {
            Status::Success => 0x00,
            Status::InvalidOpcode => 0x01,
            Status::InvalidField => 0x02,
            Status::DataTransferError => 0x04,
            Status::InternalError => 0x06,
            Status::CommandAborted => 0x07,
            Status::LbaOutOfRange => 0x80,
            Status::CapacityExceeded => 0x81,
            Status::KvKeyNotFound => (7 << 8) | 0x10,
            Status::KvInvalidSize => (7 << 8) | 0x11,
            Status::CsdBadTask => (7 << 8) | 0x20,
            Status::Unknown(w) => w,
        }
    }

    /// Decodes from the CQE status field. Codes without a named variant
    /// decode to [`Status::Unknown`] with the raw encoding preserved, so
    /// `to_wire(from_wire(w)) == w` for every `w`.
    pub fn from_wire(w: u16) -> Status {
        match w {
            0x00 => Status::Success,
            0x01 => Status::InvalidOpcode,
            0x02 => Status::InvalidField,
            0x04 => Status::DataTransferError,
            0x06 => Status::InternalError,
            0x07 => Status::CommandAborted,
            0x80 => Status::LbaOutOfRange,
            0x81 => Status::CapacityExceeded,
            w if w == (7 << 8) | 0x10 => Status::KvKeyNotFound,
            w if w == (7 << 8) | 0x11 => Status::KvInvalidSize,
            w if w == (7 << 8) | 0x20 => Status::CsdBadTask,
            _ => Status::Unknown(w),
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Success => f.write_str("success"),
            Status::InvalidOpcode => f.write_str("invalid opcode"),
            Status::InvalidField => f.write_str("invalid field"),
            Status::DataTransferError => f.write_str("data transfer error"),
            Status::InternalError => f.write_str("internal error"),
            Status::CommandAborted => f.write_str("command aborted"),
            Status::LbaOutOfRange => f.write_str("lba out of range"),
            Status::CapacityExceeded => f.write_str("capacity exceeded"),
            Status::KvKeyNotFound => f.write_str("key not found"),
            Status::KvInvalidSize => f.write_str("invalid key/value size"),
            Status::CsdBadTask => f.write_str("bad csd task"),
            Status::Unknown(w) => write!(f, "unknown status 0x{w:04X}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for s in [
            Status::Success,
            Status::InvalidOpcode,
            Status::InvalidField,
            Status::DataTransferError,
            Status::InternalError,
            Status::CommandAborted,
            Status::LbaOutOfRange,
            Status::CapacityExceeded,
            Status::KvKeyNotFound,
            Status::KvInvalidSize,
            Status::CsdBadTask,
        ] {
            assert_eq!(Status::from_wire(s.to_wire()), s);
        }
    }

    #[test]
    fn unknown_wire_preserves_raw_code() {
        assert_eq!(Status::from_wire(0x7777), Status::Unknown(0x7777));
        assert_eq!(Status::from_wire(0x7777).to_wire(), 0x7777);
    }

    #[test]
    fn success_predicate() {
        assert!(Status::Success.is_success());
        assert!(!Status::KvKeyNotFound.is_success());
    }

    #[test]
    fn retriability_classification() {
        assert!(Status::DataTransferError.is_retriable());
        assert!(Status::InternalError.is_retriable());
        assert!(Status::CommandAborted.is_retriable());
        assert!(!Status::Success.is_retriable());
        assert!(!Status::InvalidOpcode.is_retriable());
        assert!(!Status::LbaOutOfRange.is_retriable());
        assert!(!Status::KvKeyNotFound.is_retriable());
        assert!(Status::Unknown(0x0123).is_retriable());
        assert!(!Status::Unknown(0x0123 | STATUS_DNR_BIT).is_retriable());
    }

    #[test]
    fn vendor_codes_use_vendor_type() {
        assert_eq!(Status::KvKeyNotFound.to_wire() >> 8, 7);
        assert_eq!(Status::CsdBadTask.to_wire() >> 8, 7);
        assert_eq!(Status::Success.to_wire() >> 8, 0);
    }
}
