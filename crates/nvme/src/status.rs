//! Completion status codes.

use std::fmt;

/// NVMe completion status (generic command set plus the vendor codes the
/// computational-storage substrates return).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Status {
    /// Successful completion.
    #[default]
    Success,
    /// Invalid command opcode.
    InvalidOpcode,
    /// Invalid field in command.
    InvalidField,
    /// Data transfer error.
    DataTransferError,
    /// Internal device error.
    InternalError,
    /// LBA out of range.
    LbaOutOfRange,
    /// Capacity exceeded.
    CapacityExceeded,
    /// Vendor: key does not exist (KV-SSD GET/DELETE).
    KvKeyNotFound,
    /// Vendor: key or value exceeds device limits.
    KvInvalidSize,
    /// Vendor: CSD task failed to parse or reference a known table.
    CsdBadTask,
}

impl Status {
    /// Whether the command succeeded.
    pub fn is_success(self) -> bool {
        self == Status::Success
    }

    /// Encodes into the CQE status field layout: status code in bits 7:0,
    /// status code type in bits 10:8 (0 = generic, 7 = vendor).
    pub fn to_wire(self) -> u16 {
        match self {
            Status::Success => 0x00,
            Status::InvalidOpcode => 0x01,
            Status::InvalidField => 0x02,
            Status::DataTransferError => 0x04,
            Status::InternalError => 0x06,
            Status::LbaOutOfRange => 0x80,
            Status::CapacityExceeded => 0x81,
            Status::KvKeyNotFound => (7 << 8) | 0x10,
            Status::KvInvalidSize => (7 << 8) | 0x11,
            Status::CsdBadTask => (7 << 8) | 0x20,
        }
    }

    /// Decodes from the CQE status field. Unknown encodings map to
    /// [`Status::InternalError`] (the driver treats them as fatal anyway).
    pub fn from_wire(w: u16) -> Status {
        match w {
            0x00 => Status::Success,
            0x01 => Status::InvalidOpcode,
            0x02 => Status::InvalidField,
            0x04 => Status::DataTransferError,
            0x80 => Status::LbaOutOfRange,
            0x81 => Status::CapacityExceeded,
            w if w == (7 << 8) | 0x10 => Status::KvKeyNotFound,
            w if w == (7 << 8) | 0x11 => Status::KvInvalidSize,
            w if w == (7 << 8) | 0x20 => Status::CsdBadTask,
            _ => Status::InternalError,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Success => "success",
            Status::InvalidOpcode => "invalid opcode",
            Status::InvalidField => "invalid field",
            Status::DataTransferError => "data transfer error",
            Status::InternalError => "internal error",
            Status::LbaOutOfRange => "lba out of range",
            Status::CapacityExceeded => "capacity exceeded",
            Status::KvKeyNotFound => "key not found",
            Status::KvInvalidSize => "invalid key/value size",
            Status::CsdBadTask => "bad csd task",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for s in [
            Status::Success,
            Status::InvalidOpcode,
            Status::InvalidField,
            Status::DataTransferError,
            Status::LbaOutOfRange,
            Status::CapacityExceeded,
            Status::KvKeyNotFound,
            Status::KvInvalidSize,
            Status::CsdBadTask,
        ] {
            assert_eq!(Status::from_wire(s.to_wire()), s);
        }
    }

    #[test]
    fn unknown_wire_maps_to_internal_error() {
        assert_eq!(Status::from_wire(0x7777), Status::InternalError);
    }

    #[test]
    fn success_predicate() {
        assert!(Status::Success.is_success());
        assert!(!Status::KvKeyNotFound.is_success());
    }

    #[test]
    fn vendor_codes_use_vendor_type() {
        assert_eq!(Status::KvKeyNotFound.to_wire() >> 8, 7);
        assert_eq!(Status::CsdBadTask.to_wire() >> 8, 7);
        assert_eq!(Status::Success.to_wire() >> 8, 0);
    }
}
