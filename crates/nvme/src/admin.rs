//! Admin command construction and field extraction.
//!
//! Builders the driver uses during bring-up and teardown, plus the
//! controller-side accessors that pull the queue parameters back out of the
//! command — both ends share this module so the field layout can't drift.

use crate::opcode::AdminOpcode;
use crate::sqe::SubmissionEntry;
use bx_hostsim::PhysAddr;

/// CNS value selecting the Identify Controller data structure.
pub const CNS_CONTROLLER: u32 = 0x01;

/// Builds an Identify (controller) command; the 4 KB response lands in the
/// PRP-described buffer.
pub fn identify_controller(cid: u16, buffer: PhysAddr) -> SubmissionEntry {
    let mut sqe = SubmissionEntry::zeroed();
    sqe.set_opcode_raw(AdminOpcode::Identify as u8);
    sqe.set_cid(cid);
    sqe.set_prp1(buffer);
    sqe.set_data_len(crate::identify::IDENTIFY_BYTES as u32);
    sqe.set_cdw(10, CNS_CONTROLLER);
    sqe
}

/// Builds a Create I/O Completion Queue command.
///
/// Layout per spec: CDW10 = QID | (QSIZE−1)<<16; CDW11 bit 0 = physically
/// contiguous, bit 1 = interrupts enabled.
pub fn create_io_cq(cid: u16, qid: u16, depth: u16, base: PhysAddr) -> SubmissionEntry {
    let mut sqe = SubmissionEntry::zeroed();
    sqe.set_opcode_raw(AdminOpcode::CreateIoCq as u8);
    sqe.set_cid(cid);
    sqe.set_prp1(base);
    sqe.set_cdw(10, qid as u32 | ((depth as u32 - 1) << 16));
    sqe.set_cdw(11, 0b11); // contiguous + interrupts
    sqe
}

/// Builds a Create I/O Submission Queue command.
///
/// CDW10 as for the CQ; CDW11 bit 0 = physically contiguous, bits 31:16 =
/// the CQ this SQ completes into.
pub fn create_io_sq(cid: u16, qid: u16, depth: u16, base: PhysAddr, cqid: u16) -> SubmissionEntry {
    let mut sqe = SubmissionEntry::zeroed();
    sqe.set_opcode_raw(AdminOpcode::CreateIoSq as u8);
    sqe.set_cid(cid);
    sqe.set_prp1(base);
    sqe.set_cdw(10, qid as u32 | ((depth as u32 - 1) << 16));
    sqe.set_cdw(11, 0b1 | ((cqid as u32) << 16));
    sqe
}

/// Builds a Delete I/O Submission Queue command.
pub fn delete_io_sq(cid: u16, qid: u16) -> SubmissionEntry {
    let mut sqe = SubmissionEntry::zeroed();
    sqe.set_opcode_raw(AdminOpcode::DeleteIoSq as u8);
    sqe.set_cid(cid);
    sqe.set_cdw(10, qid as u32);
    sqe
}

/// Builds a Delete I/O Completion Queue command.
pub fn delete_io_cq(cid: u16, qid: u16) -> SubmissionEntry {
    let mut sqe = SubmissionEntry::zeroed();
    sqe.set_opcode_raw(AdminOpcode::DeleteIoCq as u8);
    sqe.set_cid(cid);
    sqe.set_cdw(10, qid as u32);
    sqe
}

/// Controller-side view of a queue-creation command's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueParams {
    /// Queue id.
    pub qid: u16,
    /// Depth in entries.
    pub depth: u16,
    /// Ring base address.
    pub base: PhysAddr,
    /// Completion queue id (SQ creation only).
    pub cqid: u16,
}

/// Extracts queue parameters from a create-queue command.
pub fn queue_params(sqe: &SubmissionEntry) -> QueueParams {
    let cdw10 = sqe.cdw(10);
    QueueParams {
        qid: (cdw10 & 0xFFFF) as u16,
        depth: ((cdw10 >> 16) as u16).wrapping_add(1),
        base: sqe.prp1(),
        cqid: (sqe.cdw(11) >> 16) as u16,
    }
}

/// Extracts the target queue id from a delete-queue command.
pub fn delete_target(sqe: &SubmissionEntry) -> u16 {
    (sqe.cdw(10) & 0xFFFF) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_sq_round_trip() {
        let sqe = create_io_sq(3, 2, 256, PhysAddr(0x8000), 2);
        assert_eq!(sqe.opcode_raw(), AdminOpcode::CreateIoSq as u8);
        let p = queue_params(&sqe);
        assert_eq!(p.qid, 2);
        assert_eq!(p.depth, 256);
        assert_eq!(p.base, PhysAddr(0x8000));
        assert_eq!(p.cqid, 2);
    }

    #[test]
    fn create_cq_round_trip() {
        let sqe = create_io_cq(1, 5, 1024, PhysAddr(0x4000));
        let p = queue_params(&sqe);
        assert_eq!(p.qid, 5);
        assert_eq!(p.depth, 1024);
        assert_eq!(p.base, PhysAddr(0x4000));
    }

    #[test]
    fn delete_round_trip() {
        assert_eq!(delete_target(&delete_io_sq(1, 7)), 7);
        assert_eq!(delete_target(&delete_io_cq(1, 9)), 9);
    }

    #[test]
    fn identify_carries_buffer_and_cns() {
        let sqe = identify_controller(1, PhysAddr(0x2000));
        assert_eq!(sqe.prp1(), PhysAddr(0x2000));
        assert_eq!(sqe.cdw(10), CNS_CONTROLLER);
        assert_eq!(sqe.data_len(), 4096);
    }

    #[test]
    fn max_depth_encodes_as_zero_based() {
        // Depth 65536 would overflow; spec is 0-based, so u16::MAX + 1 caps.
        let sqe = create_io_sq(0, 1, u16::MAX, PhysAddr(0), 1);
        assert_eq!(queue_params(&sqe).depth, u16::MAX);
    }
}
