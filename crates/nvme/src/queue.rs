//! Queue-ring geometry and doorbell state.
//!
//! [`SqRing`]/[`CqRing`] are *views* of rings living in simulated host memory:
//! they hold base address, depth and the producer/consumer indices owned by
//! their side, and compute slot addresses and occupancy. The driver owns the
//! SQ tail and CQ head; the controller owns the SQ head and CQ tail; each
//! side learns the other's index through doorbells and CQE fields, exactly as
//! in the spec.

use crate::sqe::SubmissionEntry;
use bx_hostsim::{DmaRegion, PhysAddr};
use std::fmt;

/// Size of one submission queue entry in bytes.
pub const SQE_BYTES: usize = SubmissionEntry::BYTES;
/// Size of one completion queue entry in bytes.
pub const CQE_BYTES: usize = crate::cqe::CompletionEntry::BYTES;

/// A submission/completion queue identifier (0 is the admin queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueueId(pub u16);

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Geometry and index state of one submission queue ring.
#[derive(Debug, Clone)]
pub struct SqRing {
    id: QueueId,
    region: DmaRegion,
    depth: u16,
    /// Producer index (next free slot). Owned by the driver.
    tail: u16,
    /// Consumer index, as last reported by the controller via CQE `sq_head`.
    head: u16,
}

impl SqRing {
    /// Creates a ring over `region`, which must hold exactly `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if the region size does not equal `depth * 64` or depth < 2.
    pub fn new(id: QueueId, region: DmaRegion, depth: u16) -> Self {
        assert!(depth >= 2, "queue depth must be >= 2");
        assert_eq!(
            region.len(),
            depth as usize * SQE_BYTES,
            "SQ region size must match depth"
        );
        SqRing {
            id,
            region,
            depth,
            tail: 0,
            head: 0,
        }
    }

    /// The queue identifier.
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// Ring depth in entries.
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Current producer (tail) index.
    pub fn tail(&self) -> u16 {
        self.tail
    }

    /// Last known consumer (head) index.
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Host address of slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= depth`.
    pub fn slot_addr(&self, idx: u16) -> PhysAddr {
        assert!(idx < self.depth, "slot {idx} out of range");
        self.region.at(idx as usize * SQE_BYTES)
    }

    /// Number of free slots (one slot is always kept open to distinguish
    /// full from empty).
    pub fn free_slots(&self) -> u16 {
        self.depth - 1 - self.used_slots()
    }

    /// Number of occupied slots.
    ///
    /// Both indices stay strictly in `[0, depth)`, so occupancy needs an
    /// explicit wrap branch: `tail.wrapping_sub(head)` reduces mod 65536,
    /// and following it with `% depth` only agrees with ring arithmetic
    /// when `depth` divides 65536. At depth 100 with head 90 / tail 10 it
    /// reports 56 instead of 20 — under-admitting on some index pairs and
    /// over-admitting (overwriting unfetched entries) on others.
    pub fn used_slots(&self) -> u16 {
        debug_assert!(
            self.tail < self.depth && self.head < self.depth,
            "ring indices escaped [0, depth)"
        );
        let used = if self.tail >= self.head {
            self.tail - self.head
        } else {
            self.depth - self.head + self.tail
        };
        debug_assert!(used < self.depth, "occupancy exceeds ring capacity");
        used
    }

    /// Whether `n` more entries can be placed.
    pub fn can_push(&self, n: u16) -> bool {
        self.free_slots() >= n
    }

    /// Claims the next slot, returning its index, and advances the tail.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full — callers must check [`SqRing::can_push`];
    /// a real driver blocks or fails the request instead of overrunning.
    pub fn push_slot(&mut self) -> u16 {
        assert!(self.can_push(1), "SQ overflow on {}", self.id);
        let idx = self.tail;
        self.tail = (self.tail + 1) % self.depth;
        debug_assert!(self.used_slots() >= 1, "push left the ring empty");
        idx
    }

    /// Records the controller's reported head (from a CQE), freeing slots.
    pub fn complete_up_to(&mut self, head: u16) {
        assert!(head < self.depth, "reported head {head} out of range");
        self.head = head;
    }
}

/// Geometry and index state of one completion queue ring.
#[derive(Debug, Clone)]
pub struct CqRing {
    id: QueueId,
    region: DmaRegion,
    depth: u16,
    /// Consumer index. Owned by the driver.
    head: u16,
    /// The phase value the driver expects for a *new* entry.
    expected_phase: bool,
}

impl CqRing {
    /// Creates a ring over `region`, which must hold exactly `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if the region size does not equal `depth * 16` or depth < 2.
    pub fn new(id: QueueId, region: DmaRegion, depth: u16) -> Self {
        assert!(depth >= 2, "queue depth must be >= 2");
        assert_eq!(
            region.len(),
            depth as usize * CQE_BYTES,
            "CQ region size must match depth"
        );
        CqRing {
            id,
            region,
            depth,
            head: 0,
            expected_phase: true,
        }
    }

    /// The queue identifier.
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// Ring depth in entries.
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Current consumer (head) index.
    pub fn head(&self) -> u16 {
        self.head
    }

    /// The phase tag value that marks a fresh entry at the current head.
    pub fn expected_phase(&self) -> bool {
        self.expected_phase
    }

    /// Host address of slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= depth`.
    pub fn slot_addr(&self, idx: u16) -> PhysAddr {
        assert!(idx < self.depth, "slot {idx} out of range");
        self.region.at(idx as usize * CQE_BYTES)
    }

    /// Advances the head after consuming one entry, flipping the expected
    /// phase on wrap.
    pub fn pop_slot(&mut self) -> u16 {
        let idx = self.head;
        self.head = (self.head + 1) % self.depth;
        if self.head == 0 {
            self.expected_phase = !self.expected_phase;
        }
        debug_assert!(idx < self.depth, "consumed slot out of range");
        idx
    }
}

/// The controller's private per-queue producer state for a CQ: tail index and
/// current phase. Lives device-side.
#[derive(Debug, Clone)]
pub struct CqProducer {
    depth: u16,
    tail: u16,
    phase: bool,
}

impl CqProducer {
    /// Creates producer state for a CQ of `depth` entries.
    pub fn new(depth: u16) -> Self {
        CqProducer {
            depth,
            tail: 0,
            phase: true,
        }
    }

    /// The slot the next CQE goes to, and the phase to stamp it with.
    /// Advances the tail.
    pub fn produce(&mut self) -> (u16, bool) {
        debug_assert!(self.tail < self.depth, "CQ producer tail out of range");
        let out = (self.tail, self.phase);
        self.tail = (self.tail + 1) % self.depth;
        if self.tail == 0 {
            self.phase = !self.phase;
        }
        out
    }
}

/// The BAR-resident doorbell registers: one SQ-tail and one CQ-head doorbell
/// per queue pair.
///
/// The driver writes these via posted MMIO writes; the controller polls them.
#[derive(Debug, Clone)]
pub struct DoorbellArray {
    sq_tails: Vec<u16>,
    cq_heads: Vec<u16>,
}

impl DoorbellArray {
    /// Creates doorbells for `queues` queue pairs, all zero.
    pub fn new(queues: usize) -> Self {
        DoorbellArray {
            sq_tails: vec![0; queues],
            cq_heads: vec![0; queues],
        }
    }

    /// Number of queue pairs.
    pub fn queues(&self) -> usize {
        self.sq_tails.len()
    }

    /// Writes the SQ tail doorbell for `q`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range queue id.
    pub fn ring_sq_tail(&mut self, q: QueueId, tail: u16) {
        debug_assert!(
            (q.0 as usize) < self.sq_tails.len(),
            "queue id out of range"
        );
        // bx-lint: allow(panic-freedom, reason = "out-of-range queue id is a documented panic (BAR access fault in hardware)")
        self.sq_tails[q.0 as usize] = tail;
    }

    /// Reads the SQ tail doorbell for `q` (controller side).
    pub fn sq_tail(&self, q: QueueId) -> u16 {
        // bx-lint: allow(panic-freedom, reason = "out-of-range queue id is a documented panic (BAR access fault in hardware)")
        self.sq_tails[q.0 as usize]
    }

    /// Writes the CQ head doorbell for `q`.
    pub fn ring_cq_head(&mut self, q: QueueId, head: u16) {
        debug_assert!(
            (q.0 as usize) < self.cq_heads.len(),
            "queue id out of range"
        );
        // bx-lint: allow(panic-freedom, reason = "out-of-range queue id is a documented panic (BAR access fault in hardware)")
        self.cq_heads[q.0 as usize] = head;
    }

    /// Reads the CQ head doorbell for `q` (controller side).
    pub fn cq_head(&self, q: QueueId) -> u16 {
        // bx-lint: allow(panic-freedom, reason = "out-of-range queue id is a documented panic (BAR access fault in hardware)")
        self.cq_heads[q.0 as usize]
    }

    /// A power cut: doorbells are BAR-resident volatile registers, so every
    /// tail and head returns to its power-on value of zero.
    pub fn power_cut(&mut self) {
        self.sq_tails.fill(0);
        self.cq_heads.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_hostsim::PAGE_SIZE;

    fn sq(depth: u16) -> SqRing {
        let bytes = depth as usize * SQE_BYTES;
        let region = DmaRegion::new(PhysAddr(PAGE_SIZE as u64), bytes);
        SqRing::new(QueueId(1), region, depth)
    }

    #[test]
    fn slot_addresses_are_64_byte_strided() {
        let q = sq(64);
        assert_eq!(q.slot_addr(0), PhysAddr(4096));
        assert_eq!(q.slot_addr(1), PhysAddr(4096 + 64));
        assert_eq!(q.slot_addr(63), PhysAddr(4096 + 63 * 64));
    }

    #[test]
    fn occupancy_tracking() {
        let mut q = sq(8);
        assert_eq!(q.free_slots(), 7);
        for _ in 0..7 {
            q.push_slot();
        }
        assert_eq!(q.free_slots(), 0);
        assert!(!q.can_push(1));
        q.complete_up_to(3);
        assert_eq!(q.free_slots(), 3);
        assert!(q.can_push(3));
        assert!(!q.can_push(4));
    }

    #[test]
    fn tail_wraps() {
        let mut q = sq(4);
        q.push_slot();
        q.push_slot();
        q.push_slot();
        q.complete_up_to(3);
        assert_eq!(q.push_slot(), 3);
        assert_eq!(q.tail(), 0);
        assert_eq!(q.push_slot(), 0);
    }

    #[test]
    fn occupancy_wraps_at_non_power_of_two_depth() {
        // The ISSUE example: depth 100, head 90, tail 10 must report 20
        // occupied slots. The old `wrapping_sub % depth` math said 56.
        let mut q = sq(100);
        for _ in 0..90 {
            q.push_slot();
        }
        q.complete_up_to(90);
        assert_eq!(q.used_slots(), 0);
        for _ in 0..20 {
            q.push_slot();
        }
        assert_eq!(q.head(), 90);
        assert_eq!(q.tail(), 10);
        assert_eq!(q.used_slots(), 20);
        assert_eq!(q.free_slots(), 79);
    }

    #[test]
    fn non_power_of_two_depth_never_over_admits() {
        // depth 7, head 1, tail 0 is a full ring (6 used, 0 free). The old
        // math computed 65535 % 7 == 1 used, i.e. 5 free — can_push would
        // have allowed overwriting five unfetched entries.
        let mut q = sq(7);
        q.push_slot();
        q.complete_up_to(1);
        for _ in 0..6 {
            q.push_slot();
        }
        assert_eq!(q.head(), 1);
        assert_eq!(q.tail(), 0);
        assert_eq!(q.used_slots(), 6);
        assert_eq!(q.free_slots(), 0);
        assert!(!q.can_push(1));
    }

    #[test]
    fn occupancy_consistent_over_full_lap_at_prime_depth() {
        // March a prime-depth ring through several laps; occupancy must
        // track pushes minus completions exactly at every step.
        let mut q = sq(13);
        let mut pushed = 0u32;
        let mut completed = 0u32;
        for step in 0..100u32 {
            if q.can_push(1) && (step % 3 != 2 || completed == pushed) {
                q.push_slot();
                pushed += 1;
            } else {
                completed += 1;
                q.complete_up_to((completed % 13) as u16);
            }
            let outstanding = (pushed - completed) as u16;
            assert_eq!(q.used_slots(), outstanding, "step {step}");
            assert_eq!(q.free_slots(), 12 - outstanding, "step {step}");
        }
    }

    #[test]
    #[should_panic(expected = "SQ overflow")]
    fn overflow_panics() {
        let mut q = sq(2);
        q.push_slot();
        q.push_slot();
    }

    #[test]
    fn cq_phase_flips_on_wrap() {
        let region = DmaRegion::new(PhysAddr(0), 4 * CQE_BYTES);
        let mut cq = CqRing::new(QueueId(1), region, 4);
        assert!(cq.expected_phase());
        for _ in 0..4 {
            cq.pop_slot();
        }
        assert!(!cq.expected_phase());
        for _ in 0..4 {
            cq.pop_slot();
        }
        assert!(cq.expected_phase());
    }

    #[test]
    fn cq_producer_matches_consumer_phase() {
        let region = DmaRegion::new(PhysAddr(0), 4 * CQE_BYTES);
        let mut cq = CqRing::new(QueueId(1), region, 4);
        let mut prod = CqProducer::new(4);
        for i in 0..10u16 {
            let (slot, phase) = prod.produce();
            assert_eq!(slot, cq.head(), "iteration {i}");
            assert_eq!(phase, cq.expected_phase(), "iteration {i}");
            cq.pop_slot();
        }
    }

    #[test]
    fn doorbells_store_per_queue() {
        let mut db = DoorbellArray::new(3);
        db.ring_sq_tail(QueueId(1), 5);
        db.ring_sq_tail(QueueId(2), 9);
        db.ring_cq_head(QueueId(1), 2);
        assert_eq!(db.sq_tail(QueueId(1)), 5);
        assert_eq!(db.sq_tail(QueueId(2)), 9);
        assert_eq!(db.sq_tail(QueueId(0)), 0);
        assert_eq!(db.cq_head(QueueId(1)), 2);
        assert_eq!(db.queues(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        sq(4).slot_addr(4);
    }
}
