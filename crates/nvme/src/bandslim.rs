//! BandSlim framing: the state-of-the-art NVMe *CMD-based* transfer the paper
//! compares against (§3.2, Park et al., ICPP '24).
//!
//! BandSlim embeds payload fragments directly into NVMe command fields and
//! issues a serialized train of commands per payload:
//!
//! * The **head command** (the real operation, e.g. KV PUT) can embed up to
//!   [`HEAD_CAPACITY`] = 32 payload bytes in its unused fields (MPTR + DPTR +
//!   CDW14/15 — CDW10..13 stay reserved for the key). This is why the paper
//!   notes BandSlim "transmits sub-32-byte payloads within a single CMD".
//! * **Fragment commands** (opcode [`FRAG_OPCODE`]) carry up to
//!   [`FRAG_CAPACITY`] = 48 bytes each (MPTR + DPTR + CDW10..15), with the
//!   fragment index in CDW3. Fragments are consumed silently by the
//!   controller; only the head command receives a completion.
//!
//! The per-fragment costs this framing cannot avoid — command generation,
//!   doorbell rings, and full command fetch/decode on the device — are
//! exactly the overheads ByteExpress's inline SQ chunks eliminate (§3.3).

use crate::sqe::SubmissionEntry;

/// Payload bytes embeddable in the head command.
pub const HEAD_CAPACITY: usize = 32;
/// Payload bytes per fragment command.
pub const FRAG_CAPACITY: usize = 48;
/// Vendor opcode for BandSlim fragment-carrier commands.
pub const FRAG_OPCODE: u8 = 0xCF;

/// Magic tag in the top byte of CDW2 marking a BandSlim head command.
const BANDSLIM_MAGIC: u32 = 0xB5;

/// Byte ranges of the 64-byte SQE image used to carry payload.
/// Head: MPTR (16..24) + DPTR (24..40) + CDW14/15 (56..64) = 32 B.
const HEAD_REGIONS: [(usize, usize); 2] = [(16, 40), (56, 64)];
/// Fragment: MPTR + DPTR + CDW10..15 (16..64) = 48 B.
const FRAG_REGION: (usize, usize) = (16, 64);

// Wire-layout pins: the advertised capacities must equal the byte regions the
// codecs actually read/write, or encode/decode silently truncate payload.
const _: () = assert!(
    HEAD_CAPACITY == 32
        && (HEAD_REGIONS[0].1 - HEAD_REGIONS[0].0) + (HEAD_REGIONS[1].1 - HEAD_REGIONS[1].0)
            == HEAD_CAPACITY
);
const _: () = assert!(FRAG_CAPACITY == 48 && FRAG_REGION.1 - FRAG_REGION.0 == FRAG_CAPACITY);

/// Marks `sqe` as a BandSlim head command with total payload `len`, and
/// embeds the first [`HEAD_CAPACITY`] bytes (or `embed_cap` if smaller) of
/// `payload` into its spare fields. Returns the number of bytes embedded.
///
/// `embed_cap` lets callers model workloads where the head command cannot
/// spare fields for payload (e.g. CSD task commands): pass 0 to embed
/// nothing.
///
/// # Panics
///
/// Panics if `len` exceeds 24 bits or `embed_cap > HEAD_CAPACITY`.
pub fn encode_head(sqe: &mut SubmissionEntry, payload: &[u8], embed_cap: usize) -> usize {
    assert!(payload.len() < (1 << 24), "bandslim payload too large");
    assert!(
        embed_cap <= HEAD_CAPACITY,
        "embed_cap exceeds head capacity"
    );
    sqe.set_cdw2((BANDSLIM_MAGIC << 24) | payload.len() as u32);
    let mut img = sqe.to_bytes();
    let mut taken = 0usize;
    for (start, end) in HEAD_REGIONS {
        while taken < payload.len() && taken < embed_cap {
            let off = start + taken_in_region(taken, start, end);
            if off >= end {
                break;
            }
            img[off] = payload[taken];
            taken += 1;
        }
        if taken >= payload.len() || taken >= embed_cap {
            break;
        }
    }
    *sqe = SubmissionEntry::from_bytes(&img);
    // Re-apply the tag: the regions above exclude CDW2/CDW3 so it survives,
    // but be explicit for safety.
    sqe.set_cdw2((BANDSLIM_MAGIC << 24) | payload.len() as u32);
    // Record how many bytes are embedded so the controller can split
    // head-embedded payload from fragment-carried payload.
    sqe.set_cdw3(taken as u32);
    taken
}

/// Number of payload bytes embedded in a BandSlim head command (recorded by
/// [`encode_head`] in CDW3).
pub fn head_embedded(sqe: &SubmissionEntry) -> usize {
    (sqe.cdw3() & 0xFF) as usize
}

// Offset-within-region bookkeeping for multi-region head embedding.
fn taken_in_region(taken: usize, start: usize, end: usize) -> usize {
    let first_len = HEAD_REGIONS[0].1 - HEAD_REGIONS[0].0;
    if (start, end) == HEAD_REGIONS[0] {
        taken
    } else {
        taken - first_len
    }
}

/// Reads the total payload length from a BandSlim head command, or `None`
/// if the command is not BandSlim-framed.
pub fn head_len(sqe: &SubmissionEntry) -> Option<usize> {
    let v = sqe.cdw2();
    (v >> 24 == BANDSLIM_MAGIC).then_some((v & 0x00FF_FFFF) as usize)
}

/// Extracts the embedded payload prefix (`embedded` bytes) from a head
/// command.
pub fn decode_head(sqe: &SubmissionEntry, embedded: usize) -> Vec<u8> {
    assert!(embedded <= HEAD_CAPACITY);
    let img = sqe.to_bytes();
    let mut out = Vec::with_capacity(embedded);
    for (start, end) in HEAD_REGIONS {
        for &b in &img[start..end] {
            if out.len() == embedded {
                return out;
            }
            out.push(b);
        }
    }
    out
}

/// Builds a fragment command carrying `data` (≤ 48 bytes) as fragment
/// `frag_no`, associated with head command `cid`.
///
/// # Panics
///
/// Panics if `data` exceeds [`FRAG_CAPACITY`].
pub fn encode_frag(cid: u16, nsid: u32, frag_no: u32, data: &[u8]) -> SubmissionEntry {
    assert!(data.len() <= FRAG_CAPACITY, "fragment too large");
    let mut sqe = SubmissionEntry::zeroed();
    sqe.set_opcode_raw(FRAG_OPCODE);
    sqe.set_cid(cid);
    sqe.set_nsid(nsid);
    sqe.set_cdw3(frag_no);
    let mut img = sqe.to_bytes();
    img[FRAG_REGION.0..FRAG_REGION.0 + data.len()].copy_from_slice(data);
    SubmissionEntry::from_bytes(&img)
}

/// Whether `sqe` is a BandSlim fragment command.
pub fn is_frag(sqe: &SubmissionEntry) -> bool {
    sqe.opcode_raw() == FRAG_OPCODE
}

/// Extracts `(frag_no, data)` from a fragment command. `take` is the number
/// of meaningful bytes (the last fragment may be partial).
///
/// # Panics
///
/// Panics if `take` exceeds [`FRAG_CAPACITY`].
pub fn decode_frag(sqe: &SubmissionEntry, take: usize) -> (u32, Vec<u8>) {
    assert!(take <= FRAG_CAPACITY);
    let img = sqe.to_bytes();
    (
        sqe.cdw3(),
        img[FRAG_REGION.0..FRAG_REGION.0 + take].to_vec(),
    )
}

/// Number of commands (head + fragments) BandSlim issues for `len` payload
/// bytes, embedding up to `embed_cap` in the head.
pub fn commands_for_len(len: usize, embed_cap: usize) -> usize {
    if len <= embed_cap {
        1
    } else {
        1 + (len - embed_cap).div_ceil(FRAG_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::IoOpcode;

    #[test]
    fn head_embeds_small_payload() {
        let mut sqe = SubmissionEntry::io(IoOpcode::KvPut, 1, 1);
        sqe.set_cdw(10, 0xAABB); // key field must survive embedding
        let payload = [7u8; 20];
        let taken = encode_head(&mut sqe, &payload, HEAD_CAPACITY);
        assert_eq!(taken, 20);
        assert_eq!(head_len(&sqe), Some(20));
        assert_eq!(decode_head(&sqe, 20), payload);
        assert_eq!(sqe.cdw(10), 0xAABB);
        assert_eq!(sqe.opcode_raw(), 0xC1);
    }

    #[test]
    fn head_caps_at_capacity() {
        let mut sqe = SubmissionEntry::io(IoOpcode::KvPut, 1, 1);
        let payload = [3u8; 100];
        let taken = encode_head(&mut sqe, &payload, HEAD_CAPACITY);
        assert_eq!(taken, HEAD_CAPACITY);
        assert_eq!(head_len(&sqe), Some(100));
        assert_eq!(decode_head(&sqe, taken), vec![3u8; 32]);
    }

    #[test]
    fn zero_embed_cap_for_csd_style_heads() {
        let mut sqe = SubmissionEntry::io(IoOpcode::CsdExec, 1, 1);
        let taken = encode_head(&mut sqe, &[1, 2, 3], 0);
        assert_eq!(taken, 0);
        assert_eq!(head_len(&sqe), Some(3));
    }

    #[test]
    fn non_bandslim_head_is_none() {
        let sqe = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        assert_eq!(head_len(&sqe), None);
    }

    #[test]
    fn frag_round_trip() {
        let data: Vec<u8> = (0..48).collect();
        let sqe = encode_frag(9, 1, 3, &data);
        assert!(is_frag(&sqe));
        assert_eq!(sqe.cid(), 9);
        let (no, back) = decode_frag(&sqe, 48);
        assert_eq!(no, 3);
        assert_eq!(back, data);
    }

    #[test]
    fn partial_frag() {
        let sqe = encode_frag(1, 1, 0, &[5; 10]);
        let (_, back) = decode_frag(&sqe, 10);
        assert_eq!(back, vec![5; 10]);
    }

    #[test]
    fn command_counts() {
        // Embedding head: the paper's single-CMD case for sub-32 B payloads.
        assert_eq!(commands_for_len(20, HEAD_CAPACITY), 1);
        assert_eq!(commands_for_len(32, HEAD_CAPACITY), 1);
        assert_eq!(commands_for_len(33, HEAD_CAPACITY), 2);
        assert_eq!(commands_for_len(128, HEAD_CAPACITY), 3); // 32 + 48 + 48
        assert_eq!(commands_for_len(4096, HEAD_CAPACITY), 1 + 85); // (4096-32)/48 = 84.6
                                                                   // CSD-style: no head embedding.
        assert_eq!(commands_for_len(20, 0), 2);
        assert_eq!(commands_for_len(96, 0), 3);
    }

    #[test]
    fn embedded_payload_survives_wire_round_trip() {
        let mut sqe = SubmissionEntry::io(IoOpcode::KvPut, 4, 2);
        let payload: Vec<u8> = (0..32).collect();
        encode_head(&mut sqe, &payload, HEAD_CAPACITY);
        let back = SubmissionEntry::from_bytes(&sqe.to_bytes());
        assert_eq!(decode_head(&back, 32), payload);
    }
}
