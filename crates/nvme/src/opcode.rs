//! Command opcodes.
//!
//! Standard NVM command-set opcodes plus the vendor-specific range used by
//! the computational-storage substrates, mirroring how real KV-SSD and CSD
//! prototypes encode their operations into passthrough commands (§2.1 of the
//! paper).

use std::fmt;

/// Admin command opcodes (the subset the simulation uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AdminOpcode {
    /// Delete I/O submission queue.
    DeleteIoSq = 0x00,
    /// Create I/O submission queue.
    CreateIoSq = 0x01,
    /// Delete I/O completion queue.
    DeleteIoCq = 0x04,
    /// Create I/O completion queue.
    CreateIoCq = 0x05,
    /// Identify controller/namespace.
    Identify = 0x06,
}

/// I/O command opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IoOpcode {
    /// Flush.
    Flush = 0x00,
    /// Block write.
    Write = 0x01,
    /// Block read.
    Read = 0x02,
    /// Vendor-specific: key-value PUT (KV-SSD substrate).
    KvPut = 0xC1,
    /// Vendor-specific: key-value GET.
    KvGet = 0xC2,
    /// Vendor-specific: key-value DELETE.
    KvDelete = 0xC3,
    /// Vendor-specific: key-value iterator open/next.
    KvIter = 0xC4,
    /// Vendor-specific: bulk PUT of multiple key-value pairs in one command
    /// (the batching alternative the paper's §2.2.1 discusses).
    KvBatchPut = 0xC5,
    /// Vendor-specific: rebuild the key index from the on-media log
    /// (post-power-cycle recovery).
    KvRecover = 0xC6,
    /// Vendor-specific: CSD SQL-pushdown task submission.
    CsdExec = 0xD0,
    /// Vendor-specific: CSD filter-result readback.
    CsdReadResult = 0xD1,
    /// Vendor-specific: CSD table-schema registration.
    CsdCreateTable = 0xD4,
    /// Vendor-specific: CSD bulk row load into a table.
    CsdLoadRows = 0xD5,
}

impl IoOpcode {
    /// Decodes an opcode byte.
    pub fn from_u8(v: u8) -> Option<IoOpcode> {
        Some(match v {
            0x00 => IoOpcode::Flush,
            0x01 => IoOpcode::Write,
            0x02 => IoOpcode::Read,
            0xC1 => IoOpcode::KvPut,
            0xC2 => IoOpcode::KvGet,
            0xC3 => IoOpcode::KvDelete,
            0xC4 => IoOpcode::KvIter,
            0xC5 => IoOpcode::KvBatchPut,
            0xC6 => IoOpcode::KvRecover,
            0xD0 => IoOpcode::CsdExec,
            0xD1 => IoOpcode::CsdReadResult,
            0xD4 => IoOpcode::CsdCreateTable,
            0xD5 => IoOpcode::CsdLoadRows,
            _ => return None,
        })
    }

    /// Whether this opcode moves data from host to device.
    pub fn is_host_to_device(self) -> bool {
        matches!(
            self,
            IoOpcode::Write
                | IoOpcode::KvPut
                | IoOpcode::KvBatchPut
                | IoOpcode::CsdExec
                | IoOpcode::CsdCreateTable
                | IoOpcode::CsdLoadRows
        )
    }

    /// Whether this is a vendor-specific (passthrough-style) opcode.
    pub fn is_vendor_specific(self) -> bool {
        (self as u8) >= 0xC0
    }
}

impl fmt::Display for IoOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoOpcode::Flush => "flush",
            IoOpcode::Write => "write",
            IoOpcode::Read => "read",
            IoOpcode::KvPut => "kv-put",
            IoOpcode::KvGet => "kv-get",
            IoOpcode::KvDelete => "kv-delete",
            IoOpcode::KvIter => "kv-iter",
            IoOpcode::KvBatchPut => "kv-batch-put",
            IoOpcode::KvRecover => "kv-recover",
            IoOpcode::CsdExec => "csd-exec",
            IoOpcode::CsdReadResult => "csd-read-result",
            IoOpcode::CsdCreateTable => "csd-create-table",
            IoOpcode::CsdLoadRows => "csd-load-rows",
        };
        f.write_str(s)
    }
}

/// Either kind of opcode, tagged by queue type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// An admin-queue opcode.
    Admin(AdminOpcode),
    /// An I/O-queue opcode.
    Io(IoOpcode),
}

impl Opcode {
    /// The raw opcode byte.
    pub fn as_u8(self) -> u8 {
        match self {
            Opcode::Admin(a) => a as u8,
            Opcode::Io(i) => i as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_opcode_round_trip() {
        for op in [
            IoOpcode::Flush,
            IoOpcode::Write,
            IoOpcode::Read,
            IoOpcode::KvPut,
            IoOpcode::KvGet,
            IoOpcode::KvDelete,
            IoOpcode::KvIter,
            IoOpcode::KvBatchPut,
            IoOpcode::KvRecover,
            IoOpcode::CsdExec,
            IoOpcode::CsdReadResult,
            IoOpcode::CsdCreateTable,
            IoOpcode::CsdLoadRows,
        ] {
            assert_eq!(IoOpcode::from_u8(op as u8), Some(op));
        }
    }

    #[test]
    fn unknown_opcode_is_none() {
        assert_eq!(IoOpcode::from_u8(0x7F), None);
        assert_eq!(IoOpcode::from_u8(0xFF), None);
    }

    #[test]
    fn direction_classification() {
        assert!(IoOpcode::Write.is_host_to_device());
        assert!(IoOpcode::KvPut.is_host_to_device());
        assert!(IoOpcode::CsdExec.is_host_to_device());
        assert!(!IoOpcode::Read.is_host_to_device());
        assert!(!IoOpcode::KvGet.is_host_to_device());
    }

    #[test]
    fn vendor_specific_range() {
        assert!(IoOpcode::KvPut.is_vendor_specific());
        assert!(IoOpcode::CsdExec.is_vendor_specific());
        assert!(!IoOpcode::Write.is_vendor_specific());
    }

    #[test]
    fn opcode_as_u8() {
        assert_eq!(Opcode::Io(IoOpcode::Write).as_u8(), 0x01);
        assert_eq!(Opcode::Admin(AdminOpcode::Identify).as_u8(), 0x06);
    }
}
