//! The 16-byte completion queue entry.

use crate::status::Status;
use std::fmt;

/// A 16-byte NVMe completion queue entry.
///
/// # Layout (dwords)
///
/// | DW | Contents                                              |
/// |----|-------------------------------------------------------|
/// | 0  | command-specific result (e.g. value length for KV GET)|
/// | 1  | reserved                                              |
/// | 2  | SQ head pointer (15:0), SQ identifier (31:16)         |
/// | 3  | CID (15:0), phase tag (16), status (31:17)            |
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompletionEntry {
    raw: [u32; 4],
}

// Wire-layout pin: one CQE is exactly one 16-byte CQ slot.
const _: () = assert!(CompletionEntry::BYTES == 16);
const _: () = assert!(core::mem::size_of::<CompletionEntry>() == CompletionEntry::BYTES);

impl CompletionEntry {
    /// Size of the wire image in bytes.
    pub const BYTES: usize = 16;

    /// Builds a completion for command `cid` on submission queue `sq_id`.
    pub fn new(cid: u16, sq_id: u16, sq_head: u16, status: Status, phase: bool) -> Self {
        let mut e = CompletionEntry { raw: [0; 4] };
        e.raw[2] = sq_head as u32 | ((sq_id as u32) << 16);
        e.raw[3] = cid as u32 | ((phase as u32) << 16) | ((status.to_wire() as u32 & 0x7FFF) << 17);
        e
    }

    /// Command-specific result dword (DW0).
    pub fn result(&self) -> u32 {
        self.raw[0]
    }

    /// Sets the command-specific result dword.
    pub fn set_result(&mut self, v: u32) {
        self.raw[0] = v;
    }

    /// SQ head pointer at completion time (for SQ flow control).
    pub fn sq_head(&self) -> u16 {
        (self.raw[2] & 0xFFFF) as u16
    }

    /// The submission queue this completion belongs to.
    pub fn sq_id(&self) -> u16 {
        (self.raw[2] >> 16) as u16
    }

    /// The command identifier being completed.
    pub fn cid(&self) -> u16 {
        (self.raw[3] & 0xFFFF) as u16
    }

    /// The phase tag, which flips each time the ring wraps; the host uses it
    /// to detect new entries without a head register read.
    pub fn phase(&self) -> bool {
        (self.raw[3] >> 16) & 1 == 1
    }

    /// The completion status.
    pub fn status(&self) -> Status {
        Status::from_wire(((self.raw[3] >> 17) & 0x7FFF) as u16)
    }

    /// Encodes to the 16-byte wire image.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, dw) in self.raw.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&dw.to_le_bytes());
        }
        out
    }

    /// Decodes from a 16-byte wire image.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        let mut raw = [0u32; 4];
        for (i, r) in raw.iter_mut().enumerate() {
            *r = u32::from_le_bytes([
                bytes[i * 4],
                bytes[i * 4 + 1],
                bytes[i * 4 + 2],
                bytes[i * 4 + 3],
            ]);
        }
        CompletionEntry { raw }
    }
}

impl fmt::Debug for CompletionEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionEntry")
            .field("cid", &self.cid())
            .field("sq_id", &self.sq_id())
            .field("sq_head", &self.sq_head())
            .field("status", &self.status())
            .field("phase", &self.phase())
            .field("result", &self.result())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_round_trip() {
        let mut e = CompletionEntry::new(0xABCD, 3, 17, Status::KvKeyNotFound, true);
        e.set_result(0xDEAD_BEEF);
        assert_eq!(e.cid(), 0xABCD);
        assert_eq!(e.sq_id(), 3);
        assert_eq!(e.sq_head(), 17);
        assert_eq!(e.status(), Status::KvKeyNotFound);
        assert!(e.phase());
        assert_eq!(e.result(), 0xDEAD_BEEF);
    }

    #[test]
    fn wire_round_trip() {
        let e = CompletionEntry::new(7, 1, 200, Status::Success, false);
        assert_eq!(CompletionEntry::from_bytes(&e.to_bytes()), e);
    }

    #[test]
    fn phase_bit_isolated() {
        let t = CompletionEntry::new(0, 0, 0, Status::Success, true);
        let f = CompletionEntry::new(0, 0, 0, Status::Success, false);
        assert!(t.phase());
        assert!(!f.phase());
        assert_eq!(t.status(), f.status());
        assert_eq!(t.cid(), f.cid());
    }

    #[test]
    fn debug_contains_status() {
        let s = format!(
            "{:?}",
            CompletionEntry::new(1, 2, 3, Status::InvalidField, true)
        );
        assert!(s.contains("InvalidField"));
    }
}
