//! ByteExpress framing: the reserved-field length encoding and 64-byte chunk
//! codec.
//!
//! This module is the protocol heart of the paper (§3.3). Two framing modes
//! are provided:
//!
//! * **Queue-local mode** (the paper's implemented design): chunks are raw
//!   64-byte slices of the payload placed in consecutive SQ slots after the
//!   command. The SQE's reserved CDW2 carries the payload length (tagged with
//!   a magic byte so ordinary commands, whose CDW2 is zero, are unaffected);
//!   ordering is guaranteed by the SQ lock on the host and queue-local
//!   fetching on the device.
//! * **Reassembly mode** (the paper's §3.3.2 future-work extension): each
//!   chunk carries an 8-byte [`ChunkHeader`] (payload id, chunk number, total
//!   count) + 56 payload bytes, allowing the controller to accept chunks
//!   out of order and across queues, placing each directly at its DRAM offset.

use crate::sqe::SubmissionEntry;

/// Size of one inline chunk — one SQ entry.
pub const BYTEEXPRESS_CHUNK_SIZE: usize = 64;

/// Header bytes per chunk in reassembly mode.
pub const REASSEMBLY_HEADER_BYTES: usize = 8;

/// Payload bytes per chunk in reassembly mode.
pub const REASSEMBLY_CHUNK_PAYLOAD: usize = BYTEEXPRESS_CHUNK_SIZE - REASSEMBLY_HEADER_BYTES;

// Wire-layout pins: a chunk fills exactly one 64-byte SQ slot, and the
// reassembly header + payload partition it with no slack.
const _: () = assert!(BYTEEXPRESS_CHUNK_SIZE == 64);
const _: () = assert!(REASSEMBLY_HEADER_BYTES + REASSEMBLY_CHUNK_PAYLOAD == BYTEEXPRESS_CHUNK_SIZE);
const _: () = assert!(core::mem::size_of::<ChunkHeader>() == 8 && REASSEMBLY_HEADER_BYTES == 8);

/// Magic tag in the top byte of CDW2 marking a ByteExpress command. Ordinary
/// NVM commands leave the reserved dword zero, so the tag cannot collide.
const INLINE_MAGIC: u32 = 0xBE;

/// Maximum payload length expressible in the 24-bit length field.
pub const MAX_INLINE_LEN: usize = (1 << 24) - 1;

/// Marks `sqe` as a ByteExpress command carrying `len` inline payload bytes.
///
/// This is the driver-side half of the paper's "repurpose a reserved field"
/// step: the length is written into CDW2 (reserved in NVM I/O commands).
///
/// # Panics
///
/// Panics if `len` is zero or exceeds [`MAX_INLINE_LEN`].
pub fn set_inline_len(sqe: &mut SubmissionEntry, len: usize) {
    assert!(len > 0, "inline payload cannot be empty");
    assert!(len <= MAX_INLINE_LEN, "inline payload too large: {len}");
    sqe.set_cdw2((INLINE_MAGIC << 24) | len as u32);
}

/// Reads the inline payload length, if `sqe` uses ByteExpress semantics.
///
/// Returns `None` for ordinary commands (CDW2 untagged), which is how the
/// controller decides between the PRP path and the inline-chunk path.
pub fn inline_len(sqe: &SubmissionEntry) -> Option<usize> {
    let v = sqe.cdw2();
    if v >> 24 == INLINE_MAGIC {
        let len = (v & 0x00FF_FFFF) as usize;
        (len > 0).then_some(len)
    } else {
        None
    }
}

/// Clears ByteExpress marking (used when a hybrid engine falls back to PRP).
pub fn clear_inline(sqe: &mut SubmissionEntry) {
    sqe.set_cdw2(0);
}

/// Number of 64-byte SQ slots needed for `len` payload bytes in queue-local
/// mode.
pub fn chunks_for_len(len: usize) -> usize {
    len.div_ceil(BYTEEXPRESS_CHUNK_SIZE)
}

/// Number of SQ slots needed in reassembly mode (56 payload bytes per chunk).
pub fn chunks_for_len_reassembly(len: usize) -> usize {
    len.div_ceil(REASSEMBLY_CHUNK_PAYLOAD)
}

/// Writes queue-local chunk `chunk_no` of `payload` into `out`, zero-padding
/// the tail. Returns the number of payload bytes placed.
///
/// The allocation-free counterpart of [`encode_chunks`] for the driver's hot
/// submit path: the caller owns one stack buffer and encodes each chunk into
/// it just before pushing the SQ slot, instead of materializing the whole
/// train as a `Vec`.
///
/// # Panics
///
/// Panics if `chunk_no` is not a valid chunk index for `payload`
/// (i.e. `chunk_no >= chunks_for_len(payload.len())`).
pub fn encode_chunk_into(
    payload: &[u8],
    chunk_no: usize,
    out: &mut [u8; BYTEEXPRESS_CHUNK_SIZE],
) -> usize {
    let off = chunk_no * BYTEEXPRESS_CHUNK_SIZE;
    assert!(
        off < payload.len() || (payload.is_empty() && chunk_no == 0),
        "chunk {chunk_no} out of range for {} payload bytes",
        payload.len()
    );
    let take = (payload.len() - off).min(BYTEEXPRESS_CHUNK_SIZE);
    out[..take].copy_from_slice(&payload[off..off + take]);
    out[take..].fill(0);
    take
}

/// Writes reassembly-mode chunk `chunk_no` of `payload` (header + up to 56
/// payload bytes, zero-padded) into `out`. Returns the number of payload
/// bytes placed. The allocation-free counterpart of
/// [`encode_reassembly_chunks`].
///
/// # Panics
///
/// Panics if the payload needs more than `u16::MAX` chunks or `chunk_no` is
/// out of range.
pub fn encode_reassembly_chunk_into(
    payload_id: u32,
    payload: &[u8],
    chunk_no: usize,
    out: &mut [u8; BYTEEXPRESS_CHUNK_SIZE],
) -> usize {
    let total = chunks_for_len_reassembly(payload.len());
    assert!(total <= u16::MAX as usize, "payload needs too many chunks");
    let off = chunk_no * REASSEMBLY_CHUNK_PAYLOAD;
    assert!(
        off < payload.len() || (payload.is_empty() && chunk_no == 0),
        "chunk {chunk_no} out of range for {} payload bytes",
        payload.len()
    );
    let hdr = ChunkHeader {
        payload_id,
        chunk_no: chunk_no as u16,
        total: total as u16,
    };
    out[..REASSEMBLY_HEADER_BYTES].copy_from_slice(&hdr.to_bytes());
    let take = (payload.len() - off).min(REASSEMBLY_CHUNK_PAYLOAD);
    out[REASSEMBLY_HEADER_BYTES..REASSEMBLY_HEADER_BYTES + take]
        .copy_from_slice(&payload[off..off + take]);
    out[REASSEMBLY_HEADER_BYTES + take..].fill(0);
    take
}

/// Splits `payload` into 64-byte queue-local chunks, zero-padding the last.
pub fn encode_chunks(payload: &[u8]) -> Vec<[u8; BYTEEXPRESS_CHUNK_SIZE]> {
    payload
        .chunks(BYTEEXPRESS_CHUNK_SIZE)
        .map(|c| {
            let mut out = [0u8; BYTEEXPRESS_CHUNK_SIZE];
            out[..c.len()].copy_from_slice(c);
            out
        })
        .collect()
}

/// Reconstructs a payload of `len` bytes from queue-local chunks.
///
/// # Panics
///
/// Panics if the chunk train is shorter than `len` requires.
pub fn decode_chunks(chunks: &[[u8; BYTEEXPRESS_CHUNK_SIZE]], len: usize) -> Vec<u8> {
    assert!(
        chunks.len() >= chunks_for_len(len),
        "chunk train too short: {} chunks for {len} bytes",
        chunks.len()
    );
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        let take = (len - out.len()).min(BYTEEXPRESS_CHUNK_SIZE);
        out.extend_from_slice(&c[..take]);
        if out.len() == len {
            break;
        }
    }
    out
}

/// Per-chunk metadata for the out-of-order reassembly extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkHeader {
    /// Identifies which in-flight payload this chunk belongs to.
    pub payload_id: u32,
    /// Zero-based chunk index.
    pub chunk_no: u16,
    /// Total number of chunks in the payload.
    pub total: u16,
}

impl ChunkHeader {
    /// Encodes into the 8 header bytes.
    pub fn to_bytes(self) -> [u8; REASSEMBLY_HEADER_BYTES] {
        let mut out = [0u8; REASSEMBLY_HEADER_BYTES];
        out[0..4].copy_from_slice(&self.payload_id.to_le_bytes());
        out[4..6].copy_from_slice(&self.chunk_no.to_le_bytes());
        out[6..8].copy_from_slice(&self.total.to_le_bytes());
        out
    }

    /// Decodes from the 8 header bytes.
    pub fn from_bytes(b: &[u8; REASSEMBLY_HEADER_BYTES]) -> Self {
        ChunkHeader {
            payload_id: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            chunk_no: u16::from_le_bytes([b[4], b[5]]),
            total: u16::from_le_bytes([b[6], b[7]]),
        }
    }
}

/// Splits `payload` into self-describing reassembly-mode chunks.
///
/// # Panics
///
/// Panics if the payload needs more than `u16::MAX` chunks.
pub fn encode_reassembly_chunks(
    payload_id: u32,
    payload: &[u8],
) -> Vec<[u8; BYTEEXPRESS_CHUNK_SIZE]> {
    let total = chunks_for_len_reassembly(payload.len());
    assert!(total <= u16::MAX as usize, "payload needs too many chunks");
    payload
        .chunks(REASSEMBLY_CHUNK_PAYLOAD)
        .enumerate()
        .map(|(i, c)| {
            let mut out = [0u8; BYTEEXPRESS_CHUNK_SIZE];
            let hdr = ChunkHeader {
                payload_id,
                chunk_no: i as u16,
                total: total as u16,
            };
            out[..REASSEMBLY_HEADER_BYTES].copy_from_slice(&hdr.to_bytes());
            out[REASSEMBLY_HEADER_BYTES..REASSEMBLY_HEADER_BYTES + c.len()].copy_from_slice(c);
            out
        })
        .collect()
}

/// Splits a reassembly-mode chunk into its header and payload slice.
pub fn split_reassembly_chunk(chunk: &[u8; BYTEEXPRESS_CHUNK_SIZE]) -> (ChunkHeader, &[u8]) {
    let mut hdr = [0u8; REASSEMBLY_HEADER_BYTES];
    hdr.copy_from_slice(&chunk[..REASSEMBLY_HEADER_BYTES]);
    (
        ChunkHeader::from_bytes(&hdr),
        &chunk[REASSEMBLY_HEADER_BYTES..],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::IoOpcode;

    #[test]
    fn inline_len_round_trip() {
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        assert_eq!(inline_len(&sqe), None);
        set_inline_len(&mut sqe, 100);
        assert_eq!(inline_len(&sqe), Some(100));
        clear_inline(&mut sqe);
        assert_eq!(inline_len(&sqe), None);
    }

    #[test]
    fn ordinary_command_is_not_inline() {
        let mut sqe = SubmissionEntry::io(IoOpcode::Write, 1, 1);
        sqe.set_cdw2(4096); // a stray value without the magic tag
        assert_eq!(inline_len(&sqe), None);
    }

    #[test]
    fn max_len_accepted() {
        let mut sqe = SubmissionEntry::zeroed();
        set_inline_len(&mut sqe, MAX_INLINE_LEN);
        assert_eq!(inline_len(&sqe), Some(MAX_INLINE_LEN));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn zero_len_panics() {
        set_inline_len(&mut SubmissionEntry::zeroed(), 0);
    }

    #[test]
    fn chunk_counts() {
        assert_eq!(chunks_for_len(1), 1);
        assert_eq!(chunks_for_len(64), 1);
        assert_eq!(chunks_for_len(65), 2);
        assert_eq!(chunks_for_len(128), 2);
        assert_eq!(chunks_for_len(4096), 64);
        assert_eq!(chunks_for_len_reassembly(56), 1);
        assert_eq!(chunks_for_len_reassembly(57), 2);
        assert_eq!(chunks_for_len_reassembly(112), 2);
    }

    #[test]
    fn chunk_encode_decode_round_trip() {
        for len in [1usize, 63, 64, 65, 100, 128, 300, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let chunks = encode_chunks(&payload);
            assert_eq!(chunks.len(), chunks_for_len(len));
            assert_eq!(decode_chunks(&chunks, len), payload);
        }
    }

    #[test]
    fn last_chunk_zero_padded() {
        let chunks = encode_chunks(&[0xFF; 65]);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1][0], 0xFF);
        assert!(chunks[1][1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn chunk_header_round_trip() {
        let h = ChunkHeader {
            payload_id: 0xCAFE_BABE,
            chunk_no: 17,
            total: 42,
        };
        assert_eq!(ChunkHeader::from_bytes(&h.to_bytes()), h);
    }

    #[test]
    fn reassembly_round_trip() {
        for len in [1usize, 55, 56, 57, 200, 1000] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let chunks = encode_reassembly_chunks(9, &payload);
            assert_eq!(chunks.len(), chunks_for_len_reassembly(len));
            // Reassemble manually, in reverse order to prove order-independence.
            let mut out = vec![0u8; len];
            for c in chunks.iter().rev() {
                let (hdr, data) = split_reassembly_chunk(c);
                assert_eq!(hdr.payload_id, 9);
                assert_eq!(hdr.total as usize, chunks.len());
                let off = hdr.chunk_no as usize * REASSEMBLY_CHUNK_PAYLOAD;
                let take = (len - off).min(REASSEMBLY_CHUNK_PAYLOAD);
                out[off..off + take].copy_from_slice(&data[..take]);
            }
            assert_eq!(out, payload);
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn decode_short_train_panics() {
        decode_chunks(&encode_chunks(&[0u8; 64]), 65);
    }

    #[test]
    fn incremental_encoders_match_bulk_encoders() {
        // The allocation-free per-chunk encoders must produce byte-identical
        // SQ slot images to the Vec-returning bulk encoders — this is what
        // keeps the driver rework wire-transparent.
        for len in [1usize, 55, 56, 57, 63, 64, 65, 128, 300, 1000, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();

            let bulk = encode_chunks(&payload);
            let mut slot = [0xA5u8; BYTEEXPRESS_CHUNK_SIZE]; // dirty buffer
            for (i, expect) in bulk.iter().enumerate() {
                let placed = encode_chunk_into(&payload, i, &mut slot);
                assert_eq!(&slot, expect, "queue-local chunk {i} at len {len}");
                assert!(placed > 0 && placed <= BYTEEXPRESS_CHUNK_SIZE);
            }

            let bulk = encode_reassembly_chunks(0xBEEF, &payload);
            let mut slot = [0x5Au8; BYTEEXPRESS_CHUNK_SIZE];
            for (i, expect) in bulk.iter().enumerate() {
                let placed = encode_reassembly_chunk_into(0xBEEF, &payload, i, &mut slot);
                assert_eq!(&slot, expect, "reassembly chunk {i} at len {len}");
                assert!(placed > 0 && placed <= REASSEMBLY_CHUNK_PAYLOAD);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn incremental_encoder_rejects_out_of_range_chunk() {
        let mut slot = [0u8; BYTEEXPRESS_CHUNK_SIZE];
        let _ = encode_chunk_into(&[0u8; 64], 1, &mut slot);
    }
}
