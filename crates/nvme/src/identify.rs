//! The Identify Controller data structure.
//!
//! A compact, versioned rendition of the 4 KB Identify page: enough fields
//! for the driver to negotiate queue limits and transfer capabilities —
//! including the vendor-specific capability bits that advertise ByteExpress
//! support, mirroring how a real deployment would gate the driver-side
//! feature (the paper's mechanism requires both ends to agree).

use std::fmt;

/// Vendor capability flags (byte 3072 of the identify page, vendor region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VendorCaps {
    /// Device fetches ByteExpress inline chunk trains (queue-local).
    pub byteexpress: bool,
    /// Device supports the identifier-based out-of-order reassembly
    /// extension (§3.3.2).
    pub reassembly: bool,
    /// Device consumes BandSlim fragment commands.
    pub bandslim: bool,
    /// Device executes KV vendor commands.
    pub key_value: bool,
    /// Device executes CSD pushdown commands.
    pub csd: bool,
}

impl VendorCaps {
    fn to_byte(self) -> u8 {
        (self.byteexpress as u8)
            | (self.reassembly as u8) << 1
            | (self.bandslim as u8) << 2
            | (self.key_value as u8) << 3
            | (self.csd as u8) << 4
    }

    fn from_byte(b: u8) -> Self {
        VendorCaps {
            byteexpress: b & 1 != 0,
            reassembly: b & 2 != 0,
            bandslim: b & 4 != 0,
            key_value: b & 8 != 0,
            csd: b & 16 != 0,
        }
    }
}

/// Size of the identify page.
pub const IDENTIFY_BYTES: usize = 4096;

/// Identify Controller data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifyController {
    /// PCI vendor id.
    pub vid: u16,
    /// Serial number (ASCII, ≤20 bytes).
    pub serial: String,
    /// Model number (ASCII, ≤40 bytes).
    pub model: String,
    /// Firmware revision (ASCII, ≤8 bytes).
    pub firmware: String,
    /// Maximum data transfer size as a power of two of the page size
    /// (0 = unlimited).
    pub mdts: u8,
    /// Submission queue entry size (log2; 6 = 64 bytes).
    pub sqes: u8,
    /// Completion queue entry size (log2; 4 = 16 bytes).
    pub cqes: u8,
    /// Number of namespaces.
    pub nn: u32,
    /// SGL support (bit 0 of SGLS).
    pub sgl_supported: bool,
    /// Vendor capability flags.
    pub vendor: VendorCaps,
}

impl Default for IdentifyController {
    fn default() -> Self {
        IdentifyController {
            vid: 0xB1E,
            serial: "BX-0001".to_string(),
            model: "ByteExpress Simulated OpenSSD".to_string(),
            firmware: "bx1.0".to_string(),
            mdts: 5, // 2^5 pages = 128 KB
            sqes: 6,
            cqes: 4,
            nn: 1,
            sgl_supported: true,
            vendor: VendorCaps {
                byteexpress: true,
                reassembly: true,
                bandslim: true,
                key_value: false,
                csd: false,
            },
        }
    }
}

impl IdentifyController {
    /// Encodes into the 4 KB identify page layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut page = vec![0u8; IDENTIFY_BYTES];
        page[0..2].copy_from_slice(&self.vid.to_le_bytes());
        write_ascii(&mut page[4..24], &self.serial);
        write_ascii(&mut page[24..64], &self.model);
        write_ascii(&mut page[64..72], &self.firmware);
        page[77] = self.mdts;
        page[512] = self.sqes;
        page[513] = self.cqes;
        page[516..520].copy_from_slice(&self.nn.to_le_bytes());
        page[536] = self.sgl_supported as u8;
        page[3072] = self.vendor.to_byte();
        page
    }

    /// Decodes from an identify page.
    ///
    /// Returns `None` if the buffer is too small or the ASCII fields are
    /// malformed.
    pub fn decode(page: &[u8]) -> Option<Self> {
        if page.len() < IDENTIFY_BYTES {
            return None;
        }
        Some(IdentifyController {
            vid: u16::from_le_bytes([page[0], page[1]]),
            serial: read_ascii(&page[4..24])?,
            model: read_ascii(&page[24..64])?,
            firmware: read_ascii(&page[64..72])?,
            mdts: page[77],
            sqes: page[512],
            cqes: page[513],
            nn: u32::from_le_bytes([page[516], page[517], page[518], page[519]]),
            sgl_supported: page[536] & 1 != 0,
            vendor: VendorCaps::from_byte(page[3072]),
        })
    }
}

impl fmt::Display for IdentifyController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (fw {}, serial {}) mdts=2^{} pages, sgl={}, bx={}, reasm={}",
            self.model.trim(),
            self.firmware.trim(),
            self.serial.trim(),
            self.mdts,
            self.sgl_supported,
            self.vendor.byteexpress,
            self.vendor.reassembly
        )
    }
}

fn write_ascii(dst: &mut [u8], s: &str) {
    // NVMe ASCII fields are space-padded.
    dst.fill(b' ');
    let bytes = s.as_bytes();
    let take = bytes.len().min(dst.len());
    dst[..take].copy_from_slice(&bytes[..take]);
}

fn read_ascii(src: &[u8]) -> Option<String> {
    let s = std::str::from_utf8(src).ok()?;
    Some(s.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let id = IdentifyController::default();
        let page = id.encode();
        assert_eq!(page.len(), IDENTIFY_BYTES);
        assert_eq!(IdentifyController::decode(&page), Some(id));
    }

    #[test]
    fn vendor_caps_bits() {
        let caps = VendorCaps {
            byteexpress: true,
            reassembly: false,
            bandslim: true,
            key_value: true,
            csd: false,
        };
        assert_eq!(VendorCaps::from_byte(caps.to_byte()), caps);
    }

    #[test]
    fn ascii_fields_space_padded() {
        let page = IdentifyController::default().encode();
        assert_eq!(&page[4..11], b"BX-0001");
        assert_eq!(page[11], b' ');
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(IdentifyController::decode(&[0u8; 100]), None);
    }

    #[test]
    fn long_strings_truncate() {
        let id = IdentifyController {
            serial: "X".repeat(100),
            ..Default::default()
        };
        let decoded = IdentifyController::decode(&id.encode()).unwrap();
        assert_eq!(decoded.serial.len(), 20);
    }

    #[test]
    fn display_mentions_model() {
        let s = IdentifyController::default().to_string();
        assert!(s.contains("ByteExpress Simulated OpenSSD"));
    }
}
