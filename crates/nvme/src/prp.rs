//! Physical Region Page (PRP) construction and traversal.
//!
//! PRP is the page-granular data-pointer scheme the paper targets: every
//! transfer is described as whole 4 KB pages (the first possibly offset), so
//! even a 32-byte payload occupies — and moves — a full page (§2.3).
//!
//! * The **driver** uses [`PrpSegments::build`] to describe a host buffer:
//!   PRP1, PRP2, and, for transfers spanning more than two pages, a PRP list
//!   written into freshly allocated host pages (with list chaining for very
//!   large transfers).
//! * The **controller** uses [`walk`] to recover the page list, reporting each
//!   PRP-list DMA read through a callback so the caller can account its PCIe
//!   traffic.

use bx_hostsim::{HostMemory, MemError, PageRef, PhysAddr, PAGE_SIZE};
use std::fmt;

/// Number of 8-byte PRP entries in one 4 KB list page.
pub const ENTRIES_PER_LIST_PAGE: usize = PAGE_SIZE / 8;

/// Errors from PRP construction or traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrpError {
    /// Transfer length zero is not describable by PRP.
    EmptyTransfer,
    /// A PRP entry after the first was not page-aligned.
    Misaligned(PhysAddr),
    /// Host memory error while reading/writing a PRP list.
    Mem(MemError),
    /// The provided page set does not cover the transfer length.
    ShortPageSet {
        /// Pages provided.
        have: usize,
        /// Pages required.
        need: usize,
    },
}

impl fmt::Display for PrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrpError::EmptyTransfer => write!(f, "zero-length transfer"),
            PrpError::Misaligned(a) => write!(f, "prp entry not page-aligned: {a}"),
            PrpError::Mem(e) => write!(f, "prp list memory error: {e}"),
            PrpError::ShortPageSet { have, need } => {
                write!(f, "page set too small: have {have}, need {need}")
            }
        }
    }
}

impl std::error::Error for PrpError {}

impl From<MemError> for PrpError {
    fn from(e: MemError) -> Self {
        PrpError::Mem(e)
    }
}

/// A built PRP description of a host buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrpSegments {
    /// PRP1: first data page (may carry an intra-page offset).
    pub prp1: PhysAddr,
    /// PRP2: zero, second data page, or PRP-list pointer.
    pub prp2: PhysAddr,
    /// Pages allocated to hold PRP lists (caller frees after completion).
    pub list_pages: Vec<PageRef>,
    /// Total transfer length described.
    pub len: usize,
}

impl PrpSegments {
    /// Number of data pages the transfer touches.
    pub fn page_count(&self) -> usize {
        pages_spanned(self.prp1.page_offset(), self.len)
    }

    /// Builds PRP entries (and list pages if needed) for a buffer made of
    /// `pages` whole page frames, carrying `len` bytes starting at byte
    /// `offset` within the first page.
    ///
    /// # Errors
    ///
    /// * [`PrpError::EmptyTransfer`] for `len == 0`.
    /// * [`PrpError::ShortPageSet`] if `pages` cannot hold `offset + len`.
    /// * [`PrpError::Mem`] if list pages cannot be allocated/written.
    pub fn build(
        mem: &mut HostMemory,
        pages: &[PhysAddr],
        offset: usize,
        len: usize,
    ) -> Result<PrpSegments, PrpError> {
        if len == 0 {
            return Err(PrpError::EmptyTransfer);
        }
        assert!(offset < PAGE_SIZE, "offset must be within the first page");
        let need = pages_spanned(offset, len);
        if pages.len() < need {
            return Err(PrpError::ShortPageSet {
                have: pages.len(),
                need,
            });
        }
        for &p in &pages[..need] {
            if !p.is_page_aligned() {
                return Err(PrpError::Misaligned(p));
            }
        }

        let prp1 = pages[0].offset(offset as u64);
        let mut list_pages = Vec::new();

        let prp2 = match need {
            1 => PhysAddr(0),
            2 => pages[1],
            _ => {
                // Entries 1..need go into a chained list.
                let tail = &pages[1..need];
                write_list(mem, tail, &mut list_pages)?
            }
        };

        Ok(PrpSegments {
            prp1,
            prp2,
            list_pages,
            len,
        })
    }

    /// Releases the PRP-list pages back to the allocator.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError::BadFree`] if a page was already freed.
    pub fn free_lists(self, mem: &mut HostMemory) -> Result<(), MemError> {
        for p in self.list_pages {
            mem.free_page(p)?;
        }
        Ok(())
    }
}

/// Number of pages spanned by `len` bytes starting at `offset` into a page.
pub fn pages_spanned(offset: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    (offset + len).div_ceil(PAGE_SIZE)
}

fn write_list(
    mem: &mut HostMemory,
    entries: &[PhysAddr],
    list_pages: &mut Vec<PageRef>,
) -> Result<PhysAddr, PrpError> {
    // Each list page holds ENTRIES_PER_LIST_PAGE entries; when more remain,
    // the final slot chains to the next list page.
    let page = mem.alloc_page()?;
    list_pages.push(page);
    let base = page.addr();

    let fits = entries.len() <= ENTRIES_PER_LIST_PAGE;
    let direct = if fits {
        entries.len()
    } else {
        ENTRIES_PER_LIST_PAGE - 1
    };
    for (i, &e) in entries[..direct].iter().enumerate() {
        mem.write_u64(base.offset((i * 8) as u64), e.0)?;
    }
    if !fits {
        let next = write_list(mem, &entries[direct..], list_pages)?;
        mem.write_u64(
            base.offset(((ENTRIES_PER_LIST_PAGE - 1) * 8) as u64),
            next.0,
        )?;
    }
    Ok(base)
}

/// One contiguous piece of a PRP transfer, as seen by the controller's DMA
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrpSegment {
    /// Host address of the piece.
    pub addr: PhysAddr,
    /// Length in bytes.
    pub len: usize,
}

/// Controller-side PRP traversal: recovers the data segments for a transfer
/// of `len` bytes described by `prp1`/`prp2`.
///
/// `on_list_read(addr, bytes)` is invoked for every PRP-list page the
/// controller must DMA from host memory, so the caller can charge the PCIe
/// link for those reads (the paper's PRP-list overhead).
///
/// # Errors
///
/// * [`PrpError::EmptyTransfer`] for `len == 0`.
/// * [`PrpError::Misaligned`] if a list entry or PRP2 is not page-aligned.
/// * [`PrpError::Mem`] on out-of-bounds list reads.
pub fn walk(
    mem: &HostMemory,
    prp1: PhysAddr,
    prp2: PhysAddr,
    len: usize,
    mut on_list_read: impl FnMut(PhysAddr, usize),
) -> Result<Vec<PrpSegment>, PrpError> {
    if len == 0 {
        return Err(PrpError::EmptyTransfer);
    }
    let mut segments = Vec::new();
    let mut remaining = len;

    // First segment: from the PRP1 offset to page end.
    let first_len = remaining.min(PAGE_SIZE - prp1.page_offset());
    segments.push(PrpSegment {
        addr: prp1,
        len: first_len,
    });
    remaining -= first_len;
    if remaining == 0 {
        return Ok(segments);
    }

    let total_pages = pages_spanned(prp1.page_offset(), len);
    if total_pages == 2 {
        if !prp2.is_page_aligned() {
            return Err(PrpError::Misaligned(prp2));
        }
        segments.push(PrpSegment {
            addr: prp2,
            len: remaining,
        });
        return Ok(segments);
    }

    // PRP list walk.
    let mut list_addr = prp2;
    if !list_addr.is_page_aligned() {
        return Err(PrpError::Misaligned(list_addr));
    }
    let mut entries_left = total_pages - 1;
    while remaining > 0 {
        let in_this_page = entries_left.min(if entries_left <= ENTRIES_PER_LIST_PAGE {
            ENTRIES_PER_LIST_PAGE
        } else {
            ENTRIES_PER_LIST_PAGE - 1
        });
        // The controller fetches the list page (or the used prefix of it).
        let fetch_bytes = if entries_left > ENTRIES_PER_LIST_PAGE {
            PAGE_SIZE
        } else {
            entries_left * 8
        };
        on_list_read(list_addr, fetch_bytes);

        for i in 0..in_this_page {
            let entry = PhysAddr(mem.read_u64(list_addr.offset((i * 8) as u64))?);
            if !entry.is_page_aligned() {
                return Err(PrpError::Misaligned(entry));
            }
            let seg_len = remaining.min(PAGE_SIZE);
            segments.push(PrpSegment {
                addr: entry,
                len: seg_len,
            });
            remaining -= seg_len;
        }
        entries_left -= in_this_page;
        if entries_left > 0 {
            let next =
                PhysAddr(mem.read_u64(list_addr.offset(((ENTRIES_PER_LIST_PAGE - 1) * 8) as u64))?);
            if !next.is_page_aligned() {
                return Err(PrpError::Misaligned(next));
            }
            list_addr = next;
        }
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> HostMemory {
        HostMemory::with_capacity(4096 * PAGE_SIZE)
    }

    fn alloc_pages(m: &mut HostMemory, n: usize) -> Vec<PhysAddr> {
        (0..n).map(|_| m.alloc_page().unwrap().addr()).collect()
    }

    #[test]
    fn single_page_uses_prp1_only() {
        let mut m = mem();
        let pages = alloc_pages(&mut m, 1);
        let prp = PrpSegments::build(&mut m, &pages, 0, 100).unwrap();
        assert_eq!(prp.prp1, pages[0]);
        assert_eq!(prp.prp2, PhysAddr(0));
        assert!(prp.list_pages.is_empty());
        assert_eq!(prp.page_count(), 1);
    }

    #[test]
    fn two_pages_use_prp2_directly() {
        let mut m = mem();
        let pages = alloc_pages(&mut m, 2);
        let prp = PrpSegments::build(&mut m, &pages, 0, PAGE_SIZE + 1).unwrap();
        assert_eq!(prp.prp2, pages[1]);
        assert!(prp.list_pages.is_empty());
    }

    #[test]
    fn offset_pushes_into_second_page() {
        let mut m = mem();
        let pages = alloc_pages(&mut m, 2);
        // 4096 bytes starting at offset 1 touch two pages.
        let prp = PrpSegments::build(&mut m, &pages, 1, PAGE_SIZE).unwrap();
        assert_eq!(prp.prp1, pages[0].offset(1));
        assert_eq!(prp.prp2, pages[1]);
        assert_eq!(prp.page_count(), 2);
    }

    #[test]
    fn many_pages_build_list() {
        let mut m = mem();
        let pages = alloc_pages(&mut m, 5);
        let prp = PrpSegments::build(&mut m, &pages, 0, 5 * PAGE_SIZE).unwrap();
        assert_eq!(prp.list_pages.len(), 1);
        assert_eq!(prp.prp2, prp.list_pages[0].addr());
    }

    #[test]
    fn walk_round_trips_build() {
        let mut m = mem();
        for (offset, len) in [
            (0usize, 1usize),
            (0, PAGE_SIZE),
            (100, 300),
            (0, PAGE_SIZE + 1),
            (4000, 200),
            (0, 7 * PAGE_SIZE),
            (123, 10 * PAGE_SIZE),
        ] {
            let need = pages_spanned(offset, len);
            let pages = alloc_pages(&mut m, need);
            let prp = PrpSegments::build(&mut m, &pages, offset, len).unwrap();
            let segs = walk(&m, prp.prp1, prp.prp2, len, |_, _| {}).unwrap();
            let total: usize = segs.iter().map(|s| s.len).sum();
            assert_eq!(total, len, "offset={offset} len={len}");
            assert_eq!(segs[0].addr, pages[0].offset(offset as u64));
            for (seg, &page) in segs.iter().zip(pages.iter()) {
                assert_eq!(seg.addr.page_base(), page);
            }
        }
    }

    #[test]
    fn walk_reports_list_reads() {
        let mut m = mem();
        let pages = alloc_pages(&mut m, 8);
        let prp = PrpSegments::build(&mut m, &pages, 0, 8 * PAGE_SIZE).unwrap();
        let mut list_reads = Vec::new();
        walk(&m, prp.prp1, prp.prp2, 8 * PAGE_SIZE, |a, b| {
            list_reads.push((a, b))
        })
        .unwrap();
        assert_eq!(list_reads.len(), 1);
        assert_eq!(list_reads[0].0, prp.prp2);
        assert_eq!(list_reads[0].1, 7 * 8); // seven remaining entries
    }

    #[test]
    fn chained_list_beyond_one_page() {
        let mut m = HostMemory::with_capacity(3000 * PAGE_SIZE);
        let n = ENTRIES_PER_LIST_PAGE + 5; // forces chaining: n-1 entries > 512
        let pages = alloc_pages(&mut m, n);
        let len = n * PAGE_SIZE;
        let prp = PrpSegments::build(&mut m, &pages, 0, len).unwrap();
        assert_eq!(prp.list_pages.len(), 2);
        let mut list_reads = 0;
        let segs = walk(&m, prp.prp1, prp.prp2, len, |_, _| list_reads += 1).unwrap();
        assert_eq!(segs.len(), n);
        assert_eq!(list_reads, 2);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, len);
    }

    #[test]
    fn short_page_set_rejected() {
        let mut m = mem();
        let pages = alloc_pages(&mut m, 1);
        let err = PrpSegments::build(&mut m, &pages, 0, PAGE_SIZE + 1).unwrap_err();
        assert_eq!(err, PrpError::ShortPageSet { have: 1, need: 2 });
    }

    #[test]
    fn zero_len_rejected() {
        let mut m = mem();
        let pages = alloc_pages(&mut m, 1);
        assert_eq!(
            PrpSegments::build(&mut m, &pages, 0, 0).unwrap_err(),
            PrpError::EmptyTransfer
        );
        assert_eq!(
            walk(&m, PhysAddr(0), PhysAddr(0), 0, |_, _| {}).unwrap_err(),
            PrpError::EmptyTransfer
        );
    }

    #[test]
    fn misaligned_prp2_rejected() {
        let mut m = mem();
        let pages = alloc_pages(&mut m, 2);
        // Hand-build a bogus transfer: PRP2 not aligned.
        let err = walk(&m, pages[0], pages[1].offset(3), PAGE_SIZE * 2, |_, _| {}).unwrap_err();
        assert!(matches!(err, PrpError::Misaligned(_)));
    }

    #[test]
    fn free_lists_returns_pages() {
        let mut m = mem();
        let before = m.allocator().free_pages();
        let pages = alloc_pages(&mut m, 5);
        let prp = PrpSegments::build(&mut m, &pages, 0, 5 * PAGE_SIZE).unwrap();
        prp.free_lists(&mut m).unwrap();
        assert_eq!(m.allocator().free_pages(), before - 5);
    }

    #[test]
    fn pages_spanned_math() {
        assert_eq!(pages_spanned(0, 0), 0);
        assert_eq!(pages_spanned(0, 1), 1);
        assert_eq!(pages_spanned(0, PAGE_SIZE), 1);
        assert_eq!(pages_spanned(0, PAGE_SIZE + 1), 2);
        assert_eq!(pages_spanned(PAGE_SIZE - 1, 2), 2);
        assert_eq!(pages_spanned(1, PAGE_SIZE), 2);
    }
}
