//! The 64-byte submission queue entry.
//!
//! Stored as the raw 16 little-endian dwords of the wire format, with typed
//! accessors over the fields the simulation uses. Keeping the wire image
//! primary (instead of a field struct that gets serialized) means the
//! "repurpose a reserved field" trick at the heart of ByteExpress is expressed
//! exactly the way the kernel patch expresses it: a write into CDW2 of an
//! otherwise ordinary command.

use crate::opcode::IoOpcode;
use bx_hostsim::PhysAddr;
use std::fmt;

/// PSDT field values (CDW0 bits 15:14): how the data pointer is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPointerKind {
    /// PRP1/PRP2.
    Prp,
    /// SGL, descriptor in DPTR.
    Sgl,
}

/// A 64-byte NVMe submission queue entry.
///
/// # Layout (dwords)
///
/// | DW    | Contents                                             |
/// |-------|------------------------------------------------------|
/// | 0     | opcode (7:0), flags (15:8, incl. PSDT), CID (31:16)  |
/// | 1     | NSID                                                 |
/// | 2–3   | reserved — **CDW2 carries the ByteExpress inline length** |
/// | 4–5   | MPTR                                                 |
/// | 6–9   | DPTR (PRP1+PRP2, or one SGL descriptor)              |
/// | 10–15 | CDW10–CDW15 (command-specific)                       |
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubmissionEntry {
    raw: [u32; 16],
}

// Wire-layout pin: one SQE is exactly one 64-byte SQ slot, in memory and on
// the wire. Anything that changes this silently breaks chunk-train geometry.
const _: () = assert!(SubmissionEntry::BYTES == 64);
const _: () = assert!(core::mem::size_of::<SubmissionEntry>() == SubmissionEntry::BYTES);

impl SubmissionEntry {
    /// Size of the wire image in bytes.
    pub const BYTES: usize = 64;

    /// An all-zero entry (opcode 0 = Flush; used as a blank slate).
    pub fn zeroed() -> Self {
        SubmissionEntry { raw: [0; 16] }
    }

    /// Creates an I/O command entry with opcode, command identifier and
    /// namespace.
    pub fn io(opcode: IoOpcode, cid: u16, nsid: u32) -> Self {
        let mut e = Self::zeroed();
        e.set_opcode_raw(opcode as u8);
        e.set_cid(cid);
        e.set_nsid(nsid);
        e
    }

    // --- CDW0 ---

    /// The raw opcode byte.
    pub fn opcode_raw(&self) -> u8 {
        (self.raw[0] & 0xFF) as u8
    }

    /// Sets the raw opcode byte.
    pub fn set_opcode_raw(&mut self, op: u8) {
        self.raw[0] = (self.raw[0] & !0xFF) | op as u32;
    }

    /// The decoded I/O opcode, if recognized.
    pub fn io_opcode(&self) -> Option<IoOpcode> {
        IoOpcode::from_u8(self.opcode_raw())
    }

    /// The command identifier (unique per queue among in-flight commands).
    pub fn cid(&self) -> u16 {
        (self.raw[0] >> 16) as u16
    }

    /// Sets the command identifier.
    pub fn set_cid(&mut self, cid: u16) {
        self.raw[0] = (self.raw[0] & 0x0000_FFFF) | ((cid as u32) << 16);
    }

    /// How the data pointer should be interpreted (PSDT bits).
    pub fn data_pointer_kind(&self) -> DataPointerKind {
        if (self.raw[0] >> 14) & 0b11 == 0 {
            DataPointerKind::Prp
        } else {
            DataPointerKind::Sgl
        }
    }

    /// Selects PRP or SGL data-pointer interpretation.
    pub fn set_data_pointer_kind(&mut self, kind: DataPointerKind) {
        let bits = match kind {
            DataPointerKind::Prp => 0b00u32,
            DataPointerKind::Sgl => 0b01u32,
        };
        self.raw[0] = (self.raw[0] & !(0b11 << 14)) | (bits << 14);
    }

    // --- DW1 ---

    /// Namespace identifier.
    pub fn nsid(&self) -> u32 {
        self.raw[1]
    }

    /// Sets the namespace identifier.
    pub fn set_nsid(&mut self, nsid: u32) {
        self.raw[1] = nsid;
    }

    // --- DW2/DW3 (reserved in ordinary NVM commands) ---

    /// Raw CDW2 — the reserved dword ByteExpress repurposes.
    pub fn cdw2(&self) -> u32 {
        self.raw[2]
    }

    /// Sets raw CDW2.
    pub fn set_cdw2(&mut self, v: u32) {
        self.raw[2] = v;
    }

    /// Raw CDW3 (reserved; used by the reassembly extension for a payload id).
    pub fn cdw3(&self) -> u32 {
        self.raw[3]
    }

    /// Sets raw CDW3.
    pub fn set_cdw3(&mut self, v: u32) {
        self.raw[3] = v;
    }

    // --- DPTR ---

    /// PRP entry 1 (byte address of the first data page/offset).
    pub fn prp1(&self) -> PhysAddr {
        PhysAddr(self.raw[6] as u64 | ((self.raw[7] as u64) << 32))
    }

    /// Sets PRP entry 1.
    pub fn set_prp1(&mut self, a: PhysAddr) {
        self.raw[6] = a.0 as u32;
        self.raw[7] = (a.0 >> 32) as u32;
    }

    /// PRP entry 2 (second page, or PRP-list pointer when >2 pages).
    pub fn prp2(&self) -> PhysAddr {
        PhysAddr(self.raw[8] as u64 | ((self.raw[9] as u64) << 32))
    }

    /// Sets PRP entry 2.
    pub fn set_prp2(&mut self, a: PhysAddr) {
        self.raw[8] = a.0 as u32;
        self.raw[9] = (a.0 >> 32) as u32;
    }

    /// The 16 DPTR bytes as an SGL descriptor image (valid when
    /// [`SubmissionEntry::data_pointer_kind`] is [`DataPointerKind::Sgl`]).
    pub fn sgl_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, dw) in self.raw[6..10].iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&dw.to_le_bytes());
        }
        out
    }

    /// Writes an SGL descriptor image into DPTR.
    pub fn set_sgl_bytes(&mut self, bytes: &[u8; 16]) {
        for i in 0..4 {
            self.raw[6 + i] = u32::from_le_bytes([
                bytes[i * 4],
                bytes[i * 4 + 1],
                bytes[i * 4 + 2],
                bytes[i * 4 + 3],
            ]);
        }
    }

    // --- command-specific dwords ---

    /// Command-specific dword 10..=15 (`n` must be in 10..=15).
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside 10..=15.
    pub fn cdw(&self, n: usize) -> u32 {
        assert!((10..=15).contains(&n), "cdw index {n} out of range");
        self.raw[n]
    }

    /// Sets command-specific dword `n` (10..=15).
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside 10..=15.
    pub fn set_cdw(&mut self, n: usize, v: u32) {
        assert!((10..=15).contains(&n), "cdw index {n} out of range");
        self.raw[n] = v;
    }

    /// Starting LBA for block I/O (CDW10/11).
    pub fn slba(&self) -> u64 {
        self.raw[10] as u64 | ((self.raw[11] as u64) << 32)
    }

    /// Sets the starting LBA.
    pub fn set_slba(&mut self, lba: u64) {
        self.raw[10] = lba as u32;
        self.raw[11] = (lba >> 32) as u32;
    }

    /// Number of logical blocks, 0-based as in the spec (CDW12 bits 15:0).
    pub fn nlb0(&self) -> u16 {
        (self.raw[12] & 0xFFFF) as u16
    }

    /// Sets the 0-based number of logical blocks.
    pub fn set_nlb0(&mut self, nlb0: u16) {
        self.raw[12] = (self.raw[12] & !0xFFFF) | nlb0 as u32;
    }

    /// The data-phase transfer length in bytes.
    ///
    /// By workspace convention the length lives in the low 24 bits of CDW2,
    /// shared with the transfer-method tag in the top byte (`0x00` for
    /// DPTR-described transfers, `0xBE` for ByteExpress inline trains,
    /// `0xB5` for BandSlim). Keeping the length out of CDW10–15 leaves the
    /// command-specific dwords free for vendor commands (e.g. a 16-byte key
    /// in CDW10–13).
    pub fn data_len(&self) -> u32 {
        self.raw[2] & 0x00FF_FFFF
    }

    /// Sets the transfer length with the plain (DPTR) tag. ByteExpress and
    /// BandSlim framing overwrite CDW2 with their own tag + the same length.
    pub fn set_data_len(&mut self, len: u32) {
        assert!(len < (1 << 24), "transfer length {len} exceeds 24 bits");
        self.raw[2] = len;
    }

    // --- wire image ---

    /// Encodes to the 64-byte wire image (little-endian dwords).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, dw) in self.raw.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&dw.to_le_bytes());
        }
        out
    }

    /// Decodes from a 64-byte wire image.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let mut raw = [0u32; 16];
        for (i, r) in raw.iter_mut().enumerate() {
            *r = u32::from_le_bytes([
                bytes[i * 4],
                bytes[i * 4 + 1],
                bytes[i * 4 + 2],
                bytes[i * 4 + 3],
            ]);
        }
        SubmissionEntry { raw }
    }

    /// The raw dwords (for protocol-level tests).
    pub fn raw_dwords(&self) -> &[u32; 16] {
        &self.raw
    }
}

impl Default for SubmissionEntry {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for SubmissionEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubmissionEntry")
            .field("opcode", &format_args!("{:#04x}", self.opcode_raw()))
            .field("cid", &self.cid())
            .field("nsid", &self.nsid())
            .field("cdw2", &self.cdw2())
            .field("prp1", &self.prp1())
            .field("prp2", &self.prp2())
            .field("slba", &self.slba())
            .field("data_len", &self.data_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_all_zero() {
        assert_eq!(SubmissionEntry::zeroed().to_bytes(), [0u8; 64]);
    }

    #[test]
    fn io_constructor_sets_header() {
        let e = SubmissionEntry::io(IoOpcode::KvPut, 0xBEEF, 7);
        assert_eq!(e.opcode_raw(), 0xC1);
        assert_eq!(e.io_opcode(), Some(IoOpcode::KvPut));
        assert_eq!(e.cid(), 0xBEEF);
        assert_eq!(e.nsid(), 7);
    }

    #[test]
    fn cid_does_not_clobber_opcode() {
        let mut e = SubmissionEntry::io(IoOpcode::Write, 0, 1);
        e.set_cid(0xFFFF);
        assert_eq!(e.opcode_raw(), 0x01);
        e.set_opcode_raw(0x02);
        assert_eq!(e.cid(), 0xFFFF);
    }

    #[test]
    fn prp_fields_round_trip_64_bit() {
        let mut e = SubmissionEntry::zeroed();
        e.set_prp1(PhysAddr(0x1234_5678_9ABC_D000));
        e.set_prp2(PhysAddr(0xFFFF_FFFF_FFFF_F000));
        assert_eq!(e.prp1(), PhysAddr(0x1234_5678_9ABC_D000));
        assert_eq!(e.prp2(), PhysAddr(0xFFFF_FFFF_FFFF_F000));
    }

    #[test]
    fn wire_image_is_little_endian() {
        let mut e = SubmissionEntry::zeroed();
        e.set_opcode_raw(0x01);
        e.set_cid(0x0302);
        let b = e.to_bytes();
        assert_eq!(b[0], 0x01); // opcode is byte 0
        assert_eq!(b[2], 0x02); // CID low byte
        assert_eq!(b[3], 0x03); // CID high byte
    }

    #[test]
    fn byte_round_trip() {
        let mut e = SubmissionEntry::io(IoOpcode::CsdExec, 9, 3);
        e.set_cdw2(100);
        e.set_cdw3(0xA5A5_A5A5);
        e.set_prp1(PhysAddr(0x2000));
        e.set_slba(1 << 40);
        e.set_nlb0(15);
        e.set_data_len(4096);
        e.set_cdw(15, 77);
        assert_eq!(SubmissionEntry::from_bytes(&e.to_bytes()), e);
    }

    #[test]
    fn psdt_selects_sgl() {
        let mut e = SubmissionEntry::zeroed();
        assert_eq!(e.data_pointer_kind(), DataPointerKind::Prp);
        e.set_data_pointer_kind(DataPointerKind::Sgl);
        assert_eq!(e.data_pointer_kind(), DataPointerKind::Sgl);
        // Opcode untouched.
        assert_eq!(e.opcode_raw(), 0);
        e.set_data_pointer_kind(DataPointerKind::Prp);
        assert_eq!(e.data_pointer_kind(), DataPointerKind::Prp);
    }

    #[test]
    fn sgl_bytes_round_trip() {
        let mut e = SubmissionEntry::zeroed();
        let desc: [u8; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        e.set_sgl_bytes(&desc);
        assert_eq!(e.sgl_bytes(), desc);
        // Shares storage with PRP fields (same DPTR dwords).
        assert_ne!(e.prp1(), PhysAddr(0));
    }

    #[test]
    fn slba_round_trip() {
        let mut e = SubmissionEntry::zeroed();
        e.set_slba(u64::MAX - 5);
        assert_eq!(e.slba(), u64::MAX - 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cdw_out_of_range_panics() {
        SubmissionEntry::zeroed().cdw(9);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", SubmissionEntry::io(IoOpcode::Read, 1, 1));
        assert!(s.contains("opcode"));
    }
}
