//! The NVMe-passthrough command surface.
//!
//! Computational-storage stacks (KV-SSDs, CSDs) talk to their devices by
//! encoding application operations into custom NVMe commands and handing
//! them to the driver through the passthrough interface, bypassing the block
//! layer (paper §2.1, Figure 2). [`PassthruCmd`] mirrors the relevant fields
//! of Linux's `nvme_passthru_cmd`: the user supplies an opcode, the
//! command-specific dwords, and a data buffer; the *driver* chooses how the
//! data moves (PRP, SGL, BandSlim fragments, or inline ByteExpress chunks) —
//! which is exactly the property that lets ByteExpress slot in "while
//! preserving full compatibility with existing APIs".

use crate::opcode::IoOpcode;

/// Direction of the passthrough data buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataDirection {
    /// No data transfer.
    #[default]
    None,
    /// Host buffer is written to the device.
    ToDevice,
    /// Device fills the host buffer.
    FromDevice,
}

/// A user-level passthrough command, before the driver turns it into a
/// [`crate::SubmissionEntry`] plus a data-transfer plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassthruCmd {
    /// I/O opcode (typically vendor-specific).
    pub opcode: u8,
    /// Namespace id.
    pub nsid: u32,
    /// Command-specific dwords 10..=15.
    pub cdw10_15: [u32; 6],
    /// The data payload (to-device) or expected length (from-device).
    pub data: Vec<u8>,
    /// Expected response length for from-device transfers.
    pub response_len: usize,
    /// Buffer direction.
    pub direction: DataDirection,
}

impl PassthruCmd {
    /// A command carrying `data` to the device.
    pub fn to_device(opcode: IoOpcode, nsid: u32, data: Vec<u8>) -> Self {
        PassthruCmd {
            opcode: opcode as u8,
            nsid,
            data,
            direction: DataDirection::ToDevice,
            ..Default::default()
        }
    }

    /// A command expecting `response_len` bytes back from the device.
    pub fn from_device(opcode: IoOpcode, nsid: u32, response_len: usize) -> Self {
        PassthruCmd {
            opcode: opcode as u8,
            nsid,
            response_len,
            direction: DataDirection::FromDevice,
            ..Default::default()
        }
    }

    /// A command with no data phase.
    pub fn no_data(opcode: IoOpcode, nsid: u32) -> Self {
        PassthruCmd {
            opcode: opcode as u8,
            nsid,
            direction: DataDirection::None,
            ..Default::default()
        }
    }

    /// Sets command-specific dword `n` (10..=15), builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside 10..=15.
    pub fn with_cdw(mut self, n: usize, v: u32) -> Self {
        assert!((10..=15).contains(&n), "cdw index {n} out of range");
        self.cdw10_15[n - 10] = v;
        self
    }

    /// The payload length for to-device commands, else 0.
    pub fn data_len(&self) -> usize {
        match self.direction {
            DataDirection::ToDevice => self.data.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_device_carries_payload() {
        let c = PassthruCmd::to_device(IoOpcode::KvPut, 1, vec![1, 2, 3]);
        assert_eq!(c.opcode, 0xC1);
        assert_eq!(c.data_len(), 3);
        assert_eq!(c.direction, DataDirection::ToDevice);
    }

    #[test]
    fn from_device_has_zero_data_len() {
        let c = PassthruCmd::from_device(IoOpcode::KvGet, 1, 4096);
        assert_eq!(c.data_len(), 0);
        assert_eq!(c.response_len, 4096);
    }

    #[test]
    fn cdw_builder() {
        let c = PassthruCmd::no_data(IoOpcode::Flush, 1)
            .with_cdw(10, 0xAAAA)
            .with_cdw(15, 0xBBBB);
        assert_eq!(c.cdw10_15[0], 0xAAAA);
        assert_eq!(c.cdw10_15[5], 0xBBBB);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cdw_panics() {
        let _ = PassthruCmd::no_data(IoOpcode::Flush, 1).with_cdw(9, 0);
    }
}
