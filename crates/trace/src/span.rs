//! Span reconstruction: folding the flat event stream back into per-command
//! lifecycles.

use crate::event::{CmdKey, Event, EventKind};
use bx_hostsim::Nanos;
use std::collections::HashMap;

/// One command's reconstructed lifecycle: submit → fetch → complete →
/// consume, plus recovery-ladder annotations.
///
/// Command ids are reused, so several spans can share a [`CmdKey`]; each
/// `SqeInsert` event opens a fresh span instance for its key.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub key: CmdKey,
    pub method: &'static str,
    pub opcode: u8,
    pub len: usize,
    /// When the SQE was written (span start).
    pub submitted: Nanos,
    /// When the controller fetched the SQE.
    pub fetched: Option<Nanos>,
    /// When the controller posted the CQE.
    pub completed: Option<Nanos>,
    /// When the driver consumed the CQE (span end on the happy path).
    pub consumed: Option<Nanos>,
    /// Completion status as consumed by the driver, if any.
    pub status: Option<u16>,
    /// The driver reaped this attempt on timeout.
    pub reaped: bool,
    /// Number of events attributed to this span.
    pub events: usize,
}

impl Span {
    /// A full submit→fetch→complete→consume lifecycle was observed.
    pub fn is_complete(&self) -> bool {
        self.fetched.is_some() && self.completed.is_some() && self.consumed.is_some()
    }

    /// Submit-to-consume latency for complete spans.
    pub fn latency(&self) -> Option<Nanos> {
        self.consumed.map(|end| end.saturating_sub(self.submitted))
    }
}

/// Folds an event stream (in emission order) into spans, one per `SqeInsert`.
///
/// Later stage events (`SqeFetch`, `CqePost`, `CompletionConsumed`, recovery
/// events) attach to the most recent span with the same [`CmdKey`]. Events
/// with no command tag, or tagged before any submit for their key (e.g. admin
/// traffic recorded mid-setup), are ignored.
pub fn reconstruct_spans(events: &[Event]) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    let mut open: HashMap<CmdKey, usize> = HashMap::new();

    for event in events {
        let Some(key) = event.cmd else { continue };
        if let EventKind::SqeInsert {
            method,
            opcode,
            len,
        } = event.kind
        {
            open.insert(key, spans.len());
            spans.push(Span {
                key,
                method,
                opcode,
                len,
                submitted: event.at,
                fetched: None,
                completed: None,
                consumed: None,
                status: None,
                reaped: false,
                events: 1,
            });
            continue;
        }
        let Some(&idx) = open.get(&key) else { continue };
        let span = &mut spans[idx];
        span.events += 1;
        match event.kind {
            EventKind::SqeFetch { .. } => span.fetched = Some(event.at),
            EventKind::CqePost { .. } => span.completed = Some(event.at),
            EventKind::CompletionConsumed { status } => {
                span.consumed = Some(event.at);
                span.status = Some(status);
            }
            EventKind::TimeoutReap => span.reaped = true,
            _ => {}
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, cmd: Option<CmdKey>, kind: EventKind) -> Event {
        Event {
            at: Nanos::from_ns(at),
            cmd,
            kind,
        }
    }

    #[test]
    fn lifecycle_folds_into_one_span() {
        let key = CmdKey::new(1, 0);
        let events = vec![
            ev(
                0,
                Some(key),
                EventKind::SqeInsert {
                    method: "ByteExpress",
                    opcode: 0x01,
                    len: 64,
                },
            ),
            ev(100, Some(key), EventKind::SqeFetch { opcode: 0x01 }),
            ev(900, Some(key), EventKind::CqePost { status: 0 }),
            ev(1000, Some(key), EventKind::CompletionConsumed { status: 0 }),
        ];
        let spans = reconstruct_spans(&events);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert!(s.is_complete());
        assert_eq!(s.latency(), Some(Nanos::from_ns(1000)));
        assert_eq!(s.method, "ByteExpress");
        assert_eq!(s.status, Some(0));
    }

    #[test]
    fn cid_reuse_opens_a_new_span() {
        let key = CmdKey::new(1, 3);
        let submit = EventKind::SqeInsert {
            method: "PRP",
            opcode: 0x02,
            len: 4096,
        };
        let events = vec![
            ev(0, Some(key), submit.clone()),
            ev(10, Some(key), EventKind::SqeFetch { opcode: 0x02 }),
            ev(20, Some(key), EventKind::CompletionConsumed { status: 0 }),
            ev(30, Some(key), submit),
            ev(40, Some(key), EventKind::TimeoutReap),
        ];
        let spans = reconstruct_spans(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].consumed, Some(Nanos::from_ns(20)));
        assert!(spans[1].reaped);
        assert_eq!(spans[1].consumed, None);
    }

    #[test]
    fn untagged_and_orphan_events_are_ignored() {
        let events = vec![
            ev(
                0,
                None,
                EventKind::Tlp {
                    class: "doorbell",
                    dir: crate::Dir::HostToDevice,
                    wire_bytes: 24,
                    payload_bytes: 4,
                    tlps: 1,
                },
            ),
            // Fetch for a key that never submitted.
            ev(
                5,
                Some(CmdKey::new(0, 9)),
                EventKind::SqeFetch { opcode: 0 },
            ),
        ];
        assert!(reconstruct_spans(&events).is_empty());
    }
}
