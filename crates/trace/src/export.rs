//! Trace exporters: Chrome-trace-event JSON (loadable in `chrome://tracing`
//! and Perfetto) and a compact human-readable timeline dump.

use crate::event::Event;
use crate::span::reconstruct_spans;
use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Virtual nanoseconds → Chrome-trace microsecond timestamps (float, so
/// sub-microsecond resolution survives).
fn ts_us(ns: u64) -> Value {
    Value::F64(ns as f64 / 1000.0)
}

/// Lowers an event stream into the Chrome trace-event JSON object format:
/// `{"traceEvents": [...], "displayTimeUnit": "ns"}`.
///
/// Each reconstructed command span becomes a `"ph": "X"` complete event
/// (named `method op=.. len=..`, `tid` = queue id) and every raw event
/// becomes a `"ph": "i"` instant with the event payload in `args`, so both
/// the per-command gantt rows and the raw cross-layer stream are visible in
/// the viewer.
pub fn chrome_trace(events: &[Event]) -> Value {
    let mut trace_events = Vec::new();

    for span in reconstruct_spans(events) {
        // Open spans (reaped / still in flight) end at their last observed
        // stage so they stay visible rather than vanishing.
        let end = span
            .consumed
            .or(span.completed)
            .or(span.fetched)
            .unwrap_or(span.submitted);
        let dur = end.saturating_sub(span.submitted);
        trace_events.push(Value::object([
            (
                "name",
                format!("{} op={:#04x} len={}", span.method, span.opcode, span.len).to_value(),
            ),
            ("cat", "cmd".to_value()),
            ("ph", "X".to_value()),
            ("ts", ts_us(span.submitted.as_ns())),
            ("dur", ts_us(dur.as_ns())),
            ("pid", Value::U64(1)),
            ("tid", span.key.qid.to_value()),
            (
                "args",
                Value::object([
                    ("qid", span.key.qid.to_value()),
                    ("cid", span.key.cid.to_value()),
                    ("opcode", span.opcode.to_value()),
                    ("method", span.method.to_value()),
                    ("len", span.len.to_value()),
                    ("complete", span.is_complete().to_value()),
                    ("reaped", span.reaped.to_value()),
                    ("status", span.status.to_value()),
                ]),
            ),
        ]));
    }

    for event in events {
        trace_events.push(Value::object([
            ("name", event.kind.name().to_value()),
            ("cat", event.kind.layer().to_value()),
            ("ph", "i".to_value()),
            ("s", "t".to_value()),
            ("ts", ts_us(event.at.as_ns())),
            ("pid", Value::U64(1)),
            (
                "tid",
                event.cmd.map(|c| c.qid).unwrap_or_default().to_value(),
            ),
            ("args", event.to_value()),
        ]));
    }

    Value::object([
        ("traceEvents", Value::Array(trace_events)),
        ("displayTimeUnit", "ns".to_value()),
    ])
}

/// `chrome_trace` rendered to a JSON string.
pub fn chrome_trace_json(events: &[Event]) -> String {
    chrome_trace(events).to_json()
}

/// A compact, line-oriented timeline for terminals and diffs:
///
/// ```text
///      1.220us  driver      q1/c0   sqe-insert ByteExpress op=0x01 len=64
///      2.410us  link        -       sqe-fetch d2h wire=90B ...
/// ```
pub fn timeline(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        let cmd = event
            .cmd
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:>12}  {:<10} {:<8} {}",
            event.at.to_string(),
            event.kind.layer(),
            cmd,
            event.kind
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CmdKey, EventKind};
    use bx_hostsim::Nanos;

    fn sample_events() -> Vec<Event> {
        let key = CmdKey::new(1, 0);
        let mk = |at: u64, cmd: Option<CmdKey>, kind: EventKind| Event {
            at: Nanos::from_ns(at),
            cmd,
            kind,
        };
        vec![
            mk(
                0,
                Some(key),
                EventKind::SqeInsert {
                    method: "ByteExpress",
                    opcode: 0x01,
                    len: 64,
                },
            ),
            mk(
                50,
                None,
                EventKind::Tlp {
                    class: "doorbell",
                    dir: crate::Dir::HostToDevice,
                    wire_bytes: 24,
                    payload_bytes: 4,
                    tlps: 1,
                },
            ),
            mk(100, Some(key), EventKind::SqeFetch { opcode: 0x01 }),
            mk(900, Some(key), EventKind::CqePost { status: 0 }),
            mk(1000, Some(key), EventKind::CompletionConsumed { status: 0 }),
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_and_instants() {
        let events = sample_events();
        let json = chrome_trace_json(&events);
        let parsed = Value::parse_json(&json).expect("exporter output must parse");
        let trace_events = parsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 1 span + 5 instants.
        assert_eq!(trace_events.len(), 6);
        let span = &trace_events[0];
        assert_eq!(span.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(span.get("tid").and_then(Value::as_u64), Some(1));
        assert_eq!(span.get("dur").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("complete"))
                .and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn timeline_lists_every_event() {
        let events = sample_events();
        let text = timeline(&events);
        assert_eq!(text.lines().count(), events.len());
        assert!(text.contains("sqe-insert ByteExpress"));
        assert!(text.contains("q1/c0"));
        assert!(text.contains("doorbell"));
    }
}
