//! The flight-recorder event taxonomy.
//!
//! Every layer of the simulated stack emits [`Event`]s into a shared
//! [`crate::TraceSink`]: the driver (submit path and recovery ladder), the
//! PCIe link (one event per TLP batch), the controller (fetch, reassembly,
//! completion) and the backend (NAND operations, garbage collection). Events
//! are timestamped in virtual time and — where a command is in scope — tagged
//! with a [`CmdKey`] so a command's full lifecycle can be reconstructed as a
//! span (see [`crate::reconstruct_spans`]).
//!
//! Cross-crate references (transfer method, traffic class) are carried as
//! `&'static str` labels rather than typed enums so this crate can sit below
//! `bx-pcie`/`bx-driver` in the dependency graph.

use bx_hostsim::Nanos;
use serde::{Serialize, Value};
use std::fmt;

/// Identifies one submission-queue slot occupancy: queue id + command id.
///
/// Command ids are reused once a slot completes, so a `CmdKey` alone is not
/// globally unique — a new `SqeInsert` event for the same key starts a new
/// span instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct CmdKey {
    pub qid: u16,
    pub cid: u16,
}

impl CmdKey {
    pub fn new(qid: u16, cid: u16) -> Self {
        Self { qid, cid }
    }
}

impl fmt::Display for CmdKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}/c{}", self.qid, self.cid)
    }
}

/// Direction of a link-level transfer, host perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Dir {
    HostToDevice,
    DeviceToHost,
}

impl Dir {
    pub fn label(self) -> &'static str {
        match self {
            Dir::HostToDevice => "h2d",
            Dir::DeviceToHost => "d2h",
        }
    }
}

/// What happened. Grouped by the layer that emits it; [`EventKind::layer`]
/// recovers the grouping for display and export.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    // ---- driver: submit path -------------------------------------------
    /// A command SQE was written into a submission-queue slot.
    SqeInsert {
        method: &'static str,
        opcode: u8,
        len: usize,
    },
    /// A ByteExpress chunk train was written into the SQ behind its command.
    ChunkTrainWrite { chunks: u16, bytes: usize },
    /// The SQ tail doorbell was rung.
    DoorbellRing { tail: u16 },
    /// A coalesced doorbell flush: one SQ tail write covering `cmds`
    /// staged commands (and their chunk trains).
    BatchFlush { cmds: u16, tail: u16 },
    /// The driver consumed a CQE for this command (phase-matched poll).
    CompletionConsumed { status: u16 },

    // ---- driver: recovery ladder ---------------------------------------
    /// The command's deadline lapsed; the driver reaped it with a synthetic
    /// aborted status.
    TimeoutReap,
    /// The command is being retried after a backoff wait.
    Retry { attempt: u32, backoff: Nanos },
    /// The queue's ByteExpress path was degraded to PRP.
    QueueDegraded,
    /// A probe succeeded and the queue was re-promoted to ByteExpress.
    QueueRepromoted,
    /// This command doubles as a ByteExpress probe on a degraded queue.
    ProbeIssued,

    // ---- PCIe link ------------------------------------------------------
    /// One logical transfer on the link (possibly several TLPs).
    Tlp {
        class: &'static str,
        dir: Dir,
        wire_bytes: u64,
        payload_bytes: u64,
        tlps: u64,
    },

    // ---- controller -----------------------------------------------------
    /// The controller fetched and parsed a command SQE.
    SqeFetch { opcode: u8 },
    /// The controller gathered an inline chunk train from SQ slots.
    InlineGather { chunks: u16, bytes: usize },
    /// A reassembly-mode chunk was accepted into device SRAM.
    ReassemblyAccept { seq: u16 },
    /// A stalled reassembly payload was evicted and its command failed.
    ReassemblyEvict,
    /// The controller moved payload data via a descriptor walk
    /// (`kind` is `"prp"`, `"sgl"`, `"bandslim"` or `"mmio"`).
    DataFetch { kind: &'static str, bytes: usize },
    /// The SQ arbiter granted one queue a turn: `served` scheduling units
    /// (commands or reassembly chunk fetches) were consumed from `qid`.
    ArbiterGrant { qid: u16, served: u16 },
    /// A CQE was posted to the host (includes the interrupt).
    CqePost { status: u16 },
    /// Pipelined execution deferred this command's completion: firmware
    /// dispatch returned immediately and the CQE is scheduled for `until`
    /// (the controller is free to fetch the next SQE in the meantime).
    CqeDeferred { until: Nanos },

    // ---- FTL / NAND -----------------------------------------------------
    /// A NAND array operation (`op` is `"program"`, `"read"` or `"erase"`).
    /// The die is occupied over the absolute span `[start, start + busy]` —
    /// `start` may lie past the emission timestamp when the op queued
    /// behind earlier work on the same die.
    NandOp {
        op: &'static str,
        channel: u32,
        die: u32,
        start: Nanos,
        busy: Nanos,
    },
    /// A foreground garbage-collection cycle inside the FTL.
    GcCycle {
        moved_pages: u32,
        erased_blocks: u32,
    },

    // ---- power / recovery ----------------------------------------------
    /// A whole-system power cut froze the device: `torn_pages` NAND programs
    /// were in flight (their data is lost), `dropped_trains` partial inline
    /// chunk trains were discarded from reassembly SRAM.
    PowerCut {
        torn_pages: u32,
        dropped_trains: u32,
    },
    /// FTL journal replay during restart: `replayed` records applied on top
    /// of the checkpoint, `torn_mappings` of them redirected to the previous
    /// PPA because the target page never finished programming.
    JournalReplay { replayed: u32, torn_mappings: u32 },

    // ---- reactor --------------------------------------------------------
    /// The reactor's completion dispatcher routed a sweep of completions
    /// (ring CQEs and byte-interface status words alike) to the waiters of
    /// one shard's queue.
    ReactorDispatch { shard: u16, completions: u16 },
    /// The reactor found no runnable task and no ready completion while
    /// commands were still in flight, and advanced virtual time to let the
    /// device (or the timeout reaper) make progress.
    ReactorIdleAdvance { step: Nanos },

    // ---- telemetry ------------------------------------------------------
    /// An instantaneous utilization sample taken at a processing edge.
    /// `gauge` names the series; `scope` disambiguates instances (a queue
    /// id, `(channel << 16) | die`, or 0 for a device-global gauge). Only
    /// emitted when the sink's gauge sampling is switched on
    /// ([`crate::TraceSink::enable_gauges`]), so plain traced runs keep
    /// their exact event stream.
    GaugeSample {
        gauge: &'static str,
        scope: u32,
        value: u64,
    },
}

impl EventKind {
    /// The layer that emits this event, for grouping in exports.
    pub fn layer(&self) -> &'static str {
        use EventKind::*;
        match self {
            SqeInsert { .. }
            | ChunkTrainWrite { .. }
            | DoorbellRing { .. }
            | BatchFlush { .. }
            | CompletionConsumed { .. } => "driver",
            TimeoutReap | Retry { .. } | QueueDegraded | QueueRepromoted | ProbeIssued => {
                "recovery"
            }
            Tlp { .. } => "link",
            SqeFetch { .. }
            | InlineGather { .. }
            | ReassemblyAccept { .. }
            | ReassemblyEvict
            | DataFetch { .. }
            | ArbiterGrant { .. }
            | CqePost { .. }
            | CqeDeferred { .. } => "controller",
            NandOp { .. } | GcCycle { .. } => "nand",
            PowerCut { .. } => "controller",
            JournalReplay { .. } => "nand",
            ReactorDispatch { .. } | ReactorIdleAdvance { .. } => "reactor",
            GaugeSample { .. } => "gauge",
        }
    }

    /// Short stable name, used as the Chrome-trace event name.
    pub fn name(&self) -> &'static str {
        use EventKind::*;
        match self {
            SqeInsert { .. } => "sqe_insert",
            ChunkTrainWrite { .. } => "chunk_train_write",
            DoorbellRing { .. } => "doorbell_ring",
            BatchFlush { .. } => "batch_flush",
            CompletionConsumed { .. } => "completion_consumed",
            TimeoutReap => "timeout_reap",
            Retry { .. } => "retry",
            QueueDegraded => "queue_degraded",
            QueueRepromoted => "queue_repromoted",
            ProbeIssued => "probe_issued",
            Tlp { .. } => "tlp",
            SqeFetch { .. } => "sqe_fetch",
            InlineGather { .. } => "inline_gather",
            ReassemblyAccept { .. } => "reassembly_accept",
            ReassemblyEvict => "reassembly_evict",
            DataFetch { .. } => "data_fetch",
            ArbiterGrant { .. } => "arbiter_grant",
            CqePost { .. } => "cqe_post",
            CqeDeferred { .. } => "cqe_deferred",
            NandOp { .. } => "nand_op",
            GcCycle { .. } => "gc_cycle",
            PowerCut { .. } => "power_cut",
            JournalReplay { .. } => "journal_replay",
            ReactorDispatch { .. } => "reactor_dispatch",
            ReactorIdleAdvance { .. } => "reactor_idle_advance",
            GaugeSample { .. } => "gauge_sample",
        }
    }

    /// Event payload as a serialization tree (Chrome-trace `args`).
    pub fn args(&self) -> Value {
        use EventKind::*;
        match self {
            SqeInsert {
                method,
                opcode,
                len,
            } => Value::object([
                ("method", method.to_value()),
                ("opcode", opcode.to_value()),
                ("len", len.to_value()),
            ]),
            ChunkTrainWrite { chunks, bytes } => {
                Value::object([("chunks", chunks.to_value()), ("bytes", bytes.to_value())])
            }
            DoorbellRing { tail } => Value::object([("tail", tail.to_value())]),
            BatchFlush { cmds, tail } => {
                Value::object([("cmds", cmds.to_value()), ("tail", tail.to_value())])
            }
            CompletionConsumed { status } => Value::object([("status", status.to_value())]),
            TimeoutReap | QueueDegraded | QueueRepromoted | ProbeIssued => {
                Value::object(Vec::<(&str, Value)>::new())
            }
            Retry { attempt, backoff } => Value::object([
                ("attempt", attempt.to_value()),
                ("backoff_ns", backoff.as_ns().to_value()),
            ]),
            Tlp {
                class,
                dir,
                wire_bytes,
                payload_bytes,
                tlps,
            } => Value::object([
                ("class", class.to_value()),
                ("dir", dir.label().to_value()),
                ("wire_bytes", wire_bytes.to_value()),
                ("payload_bytes", payload_bytes.to_value()),
                ("tlps", tlps.to_value()),
            ]),
            SqeFetch { opcode } => Value::object([("opcode", opcode.to_value())]),
            InlineGather { chunks, bytes } => {
                Value::object([("chunks", chunks.to_value()), ("bytes", bytes.to_value())])
            }
            ReassemblyAccept { seq } => Value::object([("seq", seq.to_value())]),
            ReassemblyEvict => Value::object(Vec::<(&str, Value)>::new()),
            DataFetch { kind, bytes } => {
                Value::object([("kind", kind.to_value()), ("bytes", bytes.to_value())])
            }
            ArbiterGrant { qid, served } => {
                Value::object([("qid", qid.to_value()), ("served", served.to_value())])
            }
            CqePost { status } => Value::object([("status", status.to_value())]),
            CqeDeferred { until } => Value::object([("until_ns", until.as_ns().to_value())]),
            NandOp {
                op,
                channel,
                die,
                start,
                busy,
            } => Value::object([
                ("op", op.to_value()),
                ("channel", channel.to_value()),
                ("die", die.to_value()),
                ("start_ns", start.as_ns().to_value()),
                ("busy_ns", busy.as_ns().to_value()),
            ]),
            GcCycle {
                moved_pages,
                erased_blocks,
            } => Value::object([
                ("moved_pages", moved_pages.to_value()),
                ("erased_blocks", erased_blocks.to_value()),
            ]),
            PowerCut {
                torn_pages,
                dropped_trains,
            } => Value::object([
                ("torn_pages", torn_pages.to_value()),
                ("dropped_trains", dropped_trains.to_value()),
            ]),
            JournalReplay {
                replayed,
                torn_mappings,
            } => Value::object([
                ("replayed", replayed.to_value()),
                ("torn_mappings", torn_mappings.to_value()),
            ]),
            ReactorDispatch { shard, completions } => Value::object([
                ("shard", shard.to_value()),
                ("completions", completions.to_value()),
            ]),
            ReactorIdleAdvance { step } => Value::object([("step_ns", step.as_ns().to_value())]),
            GaugeSample {
                gauge,
                scope,
                value,
            } => Value::object([
                ("gauge", gauge.to_value()),
                ("scope", scope.to_value()),
                ("value", value.to_value()),
            ]),
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EventKind::*;
        match self {
            SqeInsert {
                method,
                opcode,
                len,
            } => {
                write!(f, "sqe-insert {method} op={opcode:#04x} len={len}")
            }
            ChunkTrainWrite { chunks, bytes } => {
                write!(f, "chunk-train {chunks} chunks / {bytes} B")
            }
            DoorbellRing { tail } => write!(f, "doorbell tail={tail}"),
            BatchFlush { cmds, tail } => write!(f, "batch-flush {cmds} cmds tail={tail}"),
            CompletionConsumed { status } => write!(f, "completion status={status:#06x}"),
            TimeoutReap => write!(f, "timeout reap"),
            Retry { attempt, backoff } => write!(f, "retry #{attempt} after {backoff}"),
            QueueDegraded => write!(f, "queue degraded to PRP"),
            QueueRepromoted => write!(f, "queue re-promoted to ByteExpress"),
            ProbeIssued => write!(f, "ByteExpress probe"),
            Tlp {
                class,
                dir,
                wire_bytes,
                payload_bytes,
                tlps,
            } => write!(
                f,
                "{class} {dir} wire={wire_bytes}B payload={payload_bytes}B tlps={tlps}",
                dir = dir.label()
            ),
            SqeFetch { opcode } => write!(f, "sqe-fetch op={opcode:#04x}"),
            InlineGather { chunks, bytes } => {
                write!(f, "inline-gather {chunks} chunks / {bytes} B")
            }
            ReassemblyAccept { seq } => write!(f, "reassembly-accept seq={seq}"),
            ReassemblyEvict => write!(f, "reassembly-evict"),
            DataFetch { kind, bytes } => write!(f, "data-fetch {kind} {bytes} B"),
            ArbiterGrant { qid, served } => write!(f, "arbiter-grant q{qid} served={served}"),
            CqePost { status } => write!(f, "cqe-post status={status:#06x}"),
            CqeDeferred { until } => write!(f, "cqe-deferred until={until}"),
            NandOp {
                op,
                channel,
                die,
                start,
                busy,
            } => write!(
                f,
                "nand-{op} ch{channel}/die{die} start={start} busy={busy}"
            ),
            GcCycle {
                moved_pages,
                erased_blocks,
            } => write!(f, "gc moved={moved_pages}p erased={erased_blocks}blk"),
            PowerCut {
                torn_pages,
                dropped_trains,
            } => write!(
                f,
                "power-cut torn={torn_pages}p dropped-trains={dropped_trains}"
            ),
            JournalReplay {
                replayed,
                torn_mappings,
            } => write!(f, "journal-replay {replayed} records torn={torn_mappings}"),
            ReactorDispatch { shard, completions } => write!(
                f,
                "reactor-dispatch shard={shard} completions={completions}"
            ),
            ReactorIdleAdvance { step } => write!(f, "reactor-idle-advance step={step}"),
            GaugeSample {
                gauge,
                scope,
                value,
            } => write!(f, "gauge {gauge}[{scope}]={value}"),
        }
    }
}

/// One recorded event: a virtual-time stamp, an optional command tag, and
/// what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub at: Nanos,
    pub cmd: Option<CmdKey>,
    pub kind: EventKind,
}

impl Event {
    /// Serialization tree for the raw event stream dump.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("ts_ns".to_string(), self.at.as_ns().to_value()),
            ("layer".to_string(), self.kind.layer().to_value()),
            ("name".to_string(), self.kind.name().to_value()),
        ];
        if let Some(cmd) = self.cmd {
            pairs.push(("qid".to_string(), cmd.qid.to_value()));
            pairs.push(("cid".to_string(), cmd.cid.to_value()));
        }
        pairs.push(("args".to_string(), self.kind.args()));
        Value::Object(pairs)
    }
}
