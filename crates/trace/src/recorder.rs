//! The event sink and its zero-overhead disabled path.

use crate::event::{CmdKey, Event, EventKind};
use bx_hostsim::{Nanos, SimClock};
use std::cell::RefCell;
use std::rc::Rc;

struct Recorder {
    clock: SimClock,
    events: Vec<Event>,
}

/// A cheaply cloneable handle to the flight recorder.
///
/// The sink is either **disabled** — the default, and the state every
/// component is built with — or **recording**, bound to the simulation's
/// shared [`SimClock`] so events stamp themselves with virtual time.
///
/// The disabled path is the whole point: [`TraceSink::emit`] takes a closure
/// so that when the sink is off, *nothing* happens — the closure is never
/// called, no event is constructed, nothing allocates, and neither the clock
/// nor any counter is touched. A traced run and an untraced run therefore
/// put byte-identical traffic on the wire in identical virtual time
/// (asserted by the chaos suite).
///
/// Clones share the same event buffer, mirroring how [`SimClock`] clones
/// share one timeline.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl TraceSink {
    /// A sink that drops everything at zero cost. This is `Default`.
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording sink stamping events from `clock`.
    pub fn recording(clock: SimClock) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Recorder {
                clock,
                events: Vec::new(),
            }))),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event. `f` is only invoked when the sink is recording;
    /// build the [`EventKind`] (and any formatting it needs) inside the
    /// closure so the disabled path stays free.
    #[inline]
    pub fn emit(&self, cmd: Option<CmdKey>, f: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.borrow_mut();
            let at = rec.clock.now();
            let kind = f();
            rec.events.push(Event { at, cmd, kind });
        }
    }

    /// Records a command-tagged event.
    #[inline]
    pub fn emit_cmd(&self, cmd: CmdKey, f: impl FnOnce() -> EventKind) {
        self.emit(Some(cmd), f);
    }

    /// Snapshot of all recorded events, in emission order. Empty when
    /// disabled.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.borrow().events.clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().events.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events, keeping the sink recording.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().events.clear();
        }
    }

    /// Virtual time of the recorder's clock, if recording.
    pub fn now(&self) -> Option<Nanos> {
        self.inner.as_ref().map(|inner| inner.borrow().clock.now())
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_never_runs_the_closure() {
        let sink = TraceSink::disabled();
        let mut ran = false;
        sink.emit(None, || {
            ran = true;
            EventKind::TimeoutReap
        });
        assert!(!ran, "disabled sink must not evaluate the event closure");
        assert!(sink.is_empty());
        assert_eq!(sink.events(), Vec::new());
        assert!(sink.now().is_none());
    }

    #[test]
    fn recording_sink_stamps_virtual_time() {
        let clock = SimClock::new();
        let sink = TraceSink::recording(clock.clone());
        sink.emit(None, || EventKind::TimeoutReap);
        clock.advance(Nanos::from_ns(250));
        sink.emit_cmd(CmdKey::new(1, 7), || EventKind::DoorbellRing { tail: 3 });

        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, Nanos::ZERO);
        assert_eq!(events[1].at, Nanos::from_ns(250));
        assert_eq!(events[1].cmd, Some(CmdKey::new(1, 7)));
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::recording(SimClock::new());
        let clone = sink.clone();
        clone.emit(None, || EventKind::TimeoutReap);
        assert_eq!(sink.len(), 1);
        sink.clear();
        assert!(clone.is_empty());
    }
}
