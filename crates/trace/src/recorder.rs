//! The event sink and its zero-overhead disabled path.

use crate::event::{CmdKey, Event, EventKind};
use bx_hostsim::{Nanos, SimClock};
use std::cell::RefCell;
use std::rc::Rc;

struct Recorder {
    clock: SimClock,
    events: Vec<Event>,
    /// Whether [`TraceSink::emit_gauge`] records. Off by default so a plain
    /// traced run's event stream (and anything fingerprinting it) is
    /// unchanged by the existence of gauge instrumentation.
    gauges: bool,
}

/// A cheaply cloneable handle to the flight recorder.
///
/// The sink is either **disabled** — the default, and the state every
/// component is built with — or **recording**, bound to the simulation's
/// shared [`SimClock`] so events stamp themselves with virtual time.
///
/// The disabled path is the whole point: [`TraceSink::emit`] takes a closure
/// so that when the sink is off, *nothing* happens — the closure is never
/// called, no event is constructed, nothing allocates, and neither the clock
/// nor any counter is touched. A traced run and an untraced run therefore
/// put byte-identical traffic on the wire in identical virtual time
/// (asserted by the chaos suite).
///
/// Clones share the same event buffer, mirroring how [`SimClock`] clones
/// share one timeline.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl TraceSink {
    /// A sink that drops everything at zero cost. This is `Default`.
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording sink stamping events from `clock`. Gauge sampling starts
    /// off; see [`TraceSink::enable_gauges`].
    pub fn recording(clock: SimClock) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Recorder {
                clock,
                events: Vec::new(),
                gauges: false,
            }))),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Switches gauge sampling on for this recorder (shared by all clones).
    /// No-op on a disabled sink. Separate from plain recording so the
    /// default traced event stream — which golden fingerprints pin — is
    /// byte-identical whether or not gauge instrumentation exists.
    pub fn enable_gauges(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().gauges = true;
        }
    }

    /// Whether [`TraceSink::emit_gauge`] currently records.
    pub fn gauges_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.borrow().gauges)
    }

    /// Records one event. `f` is only invoked when the sink is recording;
    /// build the [`EventKind`] (and any formatting it needs) inside the
    /// closure so the disabled path stays free.
    #[inline]
    pub fn emit(&self, cmd: Option<CmdKey>, f: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.borrow_mut();
            let at = rec.clock.now();
            let kind = f();
            rec.events.push(Event { at, cmd, kind });
        }
    }

    /// Records a command-tagged event.
    #[inline]
    pub fn emit_cmd(&self, cmd: CmdKey, f: impl FnOnce() -> EventKind) {
        self.emit(Some(cmd), f);
    }

    /// Records a gauge sample, but only when gauge sampling is enabled
    /// (see [`TraceSink::enable_gauges`]); otherwise the closure is never
    /// evaluated — same inertness contract as [`TraceSink::emit`], with one
    /// extra gate so ordinary traced runs skip gauge events entirely.
    #[inline]
    pub fn emit_gauge(&self, f: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.borrow_mut();
            if !rec.gauges {
                return;
            }
            let at = rec.clock.now();
            let kind = f();
            rec.events.push(Event {
                at,
                cmd: None,
                kind,
            });
        }
    }

    /// Snapshot of all recorded events, in emission order. Empty when
    /// disabled.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.borrow().events.clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().events.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events, keeping the sink recording.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().events.clear();
        }
    }

    /// Virtual time of the recorder's clock, if recording.
    pub fn now(&self) -> Option<Nanos> {
        self.inner.as_ref().map(|inner| inner.borrow().clock.now())
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_never_runs_the_closure() {
        let sink = TraceSink::disabled();
        let mut ran = false;
        sink.emit(None, || {
            ran = true;
            EventKind::TimeoutReap
        });
        assert!(!ran, "disabled sink must not evaluate the event closure");
        assert!(sink.is_empty());
        assert_eq!(sink.events(), Vec::new());
        assert!(sink.now().is_none());
    }

    #[test]
    fn recording_sink_stamps_virtual_time() {
        let clock = SimClock::new();
        let sink = TraceSink::recording(clock.clone());
        sink.emit(None, || EventKind::TimeoutReap);
        clock.advance(Nanos::from_ns(250));
        sink.emit_cmd(CmdKey::new(1, 7), || EventKind::DoorbellRing { tail: 3 });

        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, Nanos::ZERO);
        assert_eq!(events[1].at, Nanos::from_ns(250));
        assert_eq!(events[1].cmd, Some(CmdKey::new(1, 7)));
    }

    #[test]
    fn gauge_emission_requires_explicit_opt_in() {
        let sink = TraceSink::recording(SimClock::new());
        let mut ran = false;
        sink.emit_gauge(|| {
            ran = true;
            EventKind::GaugeSample {
                gauge: "sq_backlog",
                scope: 1,
                value: 3,
            }
        });
        assert!(!ran, "gauge closure must not run before enable_gauges");
        assert!(sink.is_empty());
        assert!(!sink.gauges_enabled());

        sink.enable_gauges();
        assert!(sink.gauges_enabled());
        sink.emit_gauge(|| EventKind::GaugeSample {
            gauge: "sq_backlog",
            scope: 1,
            value: 3,
        });
        assert_eq!(sink.len(), 1);

        // The flag is shared by clones, like the buffer.
        let clone = sink.clone();
        assert!(clone.gauges_enabled());
    }

    #[test]
    fn disabled_sink_ignores_gauge_opt_in() {
        let sink = TraceSink::disabled();
        sink.enable_gauges();
        assert!(!sink.gauges_enabled());
        sink.emit_gauge(|| EventKind::GaugeSample {
            gauge: "x",
            scope: 0,
            value: 0,
        });
        assert!(sink.is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::recording(SimClock::new());
        let clone = sink.clone();
        clone.emit(None, || EventKind::TimeoutReap);
        assert_eq!(sink.len(), 1);
        sink.clear();
        assert!(clone.is_empty());
    }
}
