//! Label-aware metrics: counters and log2-bucketed histograms keyed by
//! `{queue, method, opcode}`.

use crate::event::{Event, EventKind};
use crate::span::reconstruct_spans;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Bucket `i` holds samples whose value `v` satisfies `floor(log2(v)) == i`
/// (`v == 0` lands in bucket 0), i.e. `v` in `[2^i, 2^(i+1))`. 64 buckets
/// cover the whole `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    pub fn record(&mut self, value: u64) {
        // Saturating like `sum`: a counter pinned at u64::MAX beats a
        // panic (or a wrapped-to-zero lie) in release-mode accounting.
        let b = &mut self.buckets[Self::bucket_of(value)];
        *b = b.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(lower_bound, upper_bound_inclusive, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                (lo, hi, n)
            })
    }

    /// Upper bound of the bucket containing the `p`-th percentile sample;
    /// `None` when empty. Resolution is a factor of 2 — good enough for
    /// dashboards, not for paper tables.
    ///
    /// Uses the same 1-based nearest-rank definition as
    /// `LatencySamples::percentile` (`rank = ⌈p/100 · n⌉`, clamped to
    /// `[1, n]`), so the histogram bound always brackets the exact sample
    /// percentile from above.
    pub fn percentile_upper_bound(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if n > 0 && seen >= rank {
                return Some(if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                });
            }
        }
        Some(u64::MAX)
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as cumulative `(le, count_at_or_below)` pairs —
    /// the OpenMetrics `_bucket` series shape. `le` is this bucket's
    /// inclusive upper bound; the final pair's count equals
    /// [`Histogram::count`] (the exporter adds the `+Inf` line).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (_, hi, n) in self.buckets() {
            cum = cum.saturating_add(n);
            out.push((hi, cum));
        }
        out
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        Value::object([
            ("count", self.count.to_value()),
            ("sum", self.sum.to_value()),
            ("min", self.min().to_value()),
            ("max", self.max().to_value()),
            ("mean", self.mean().to_value()),
            (
                "buckets",
                Value::array(self.buckets().map(|(lo, hi, n)| {
                    Value::object([
                        ("lo", lo.to_value()),
                        ("hi", hi.to_value()),
                        ("count", n.to_value()),
                    ])
                })),
            ),
        ])
    }
}

/// The label triple every metric is keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabelSet {
    pub queue: u16,
    pub method: &'static str,
    pub opcode: u8,
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{queue={}, method={}, opcode={:#04x}}}",
            self.queue, self.method, self.opcode
        )
    }
}

impl Serialize for LabelSet {
    fn to_value(&self) -> Value {
        Value::object([
            ("queue", self.queue.to_value()),
            ("method", self.method.to_value()),
            ("opcode", self.opcode.to_value()),
        ])
    }
}

/// A registry of named counters and histograms, each keyed by a [`LabelSet`].
///
/// Built offline from a recorded event stream ([`MetricsRegistry::from_events`])
/// so the recording hot path stays a plain `Vec` push.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<(&'static str, LabelSet), u64>,
    histograms: BTreeMap<(&'static str, LabelSet), Histogram>,
    /// Last-sampled gauge values, keyed by `(gauge name, scope)` — the
    /// scope is the [`crate::EventKind::GaugeSample`] disambiguator (queue
    /// id, packed channel/die, or 0).
    gauges: BTreeMap<(&'static str, u32), u64>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&mut self, name: &'static str, labels: LabelSet, by: u64) {
        let c = self.counters.entry((name, labels)).or_insert(0);
        *c = c.saturating_add(by);
    }

    /// Sets an instantaneous gauge value (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, scope: u32, value: u64) {
        self.gauges.insert((name, scope), value);
    }

    /// The last-sampled value of a gauge, if any sample was recorded.
    pub fn gauge(&self, name: &'static str, scope: u32) -> Option<u64> {
        self.gauges.get(&(name, scope)).copied()
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u32, u64)> + '_ {
        self.gauges.iter().map(|(&(n, s), &v)| (n, s, v))
    }

    pub fn observe(&mut self, name: &'static str, labels: LabelSet, value: u64) {
        self.histograms
            .entry((name, labels))
            .or_default()
            .record(value);
    }

    pub fn counter(&self, name: &'static str, labels: LabelSet) -> u64 {
        self.counters
            .get(&(name, labels))
            .copied()
            .unwrap_or_default()
    }

    /// Sum of a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| v)
            .sum()
    }

    pub fn histogram(&self, name: &'static str, labels: LabelSet) -> Option<&Histogram> {
        self.histograms.get(&(name, labels))
    }

    pub fn counters(&self) -> impl Iterator<Item = (&'static str, LabelSet, u64)> + '_ {
        self.counters.iter().map(|(&(n, l), &v)| (n, l, v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, LabelSet, &Histogram)> + '_ {
        self.histograms.iter().map(|(&(n, l), h)| (n, l, h))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.gauges.is_empty()
    }

    /// Derives the standard command metrics from an event stream:
    ///
    /// - `commands_submitted` / `commands_completed` / `commands_reaped`
    /// - `retries`, `payload_bytes`
    /// - `cmd_latency_ns` histogram (submit → driver-consume, complete spans)
    pub fn from_events(events: &[Event]) -> Self {
        let mut reg = Self::new();
        let spans = reconstruct_spans(events);
        // Retry events attach to a span via the open-span walk inside
        // reconstruct_spans; recount them here against each span's labels.
        for span in &spans {
            let labels = LabelSet {
                queue: span.key.qid,
                method: span.method,
                opcode: span.opcode,
            };
            reg.inc("commands_submitted", labels, 1);
            reg.inc("payload_bytes", labels, span.len as u64);
            if span.reaped {
                reg.inc("commands_reaped", labels, 1);
            }
            if span.is_complete() {
                reg.inc("commands_completed", labels, 1);
                if let Some(lat) = span.latency() {
                    reg.observe("cmd_latency_ns", labels, lat.as_ns());
                }
            }
        }
        // Retries are not span-terminal, so count them straight off the
        // stream against the most recent submit for their key.
        let mut last_labels: BTreeMap<crate::CmdKey, LabelSet> = BTreeMap::new();
        for event in events {
            let Some(key) = event.cmd else { continue };
            match event.kind {
                EventKind::SqeInsert { method, opcode, .. } => {
                    last_labels.insert(
                        key,
                        LabelSet {
                            queue: key.qid,
                            method,
                            opcode,
                        },
                    );
                }
                EventKind::Retry { .. } => {
                    if let Some(&labels) = last_labels.get(&key) {
                        reg.inc("retries", labels, 1);
                    }
                }
                _ => {}
            }
        }
        // Gauges ride untagged; the last sample per (gauge, scope) wins —
        // the registry's gauge view is the state at end of stream.
        for event in events {
            if let EventKind::GaugeSample {
                gauge,
                scope,
                value,
            } = event.kind
            {
                reg.set_gauge(gauge, scope, value);
            }
        }
        reg
    }
}

impl Serialize for MetricsRegistry {
    fn to_value(&self) -> Value {
        Value::object([
            (
                "counters",
                Value::array(self.counters().map(|(name, labels, value)| {
                    Value::object([
                        ("name", name.to_value()),
                        ("labels", labels.to_value()),
                        ("value", value.to_value()),
                    ])
                })),
            ),
            (
                "histograms",
                Value::array(self.histograms().map(|(name, labels, hist)| {
                    Value::object([
                        ("name", name.to_value()),
                        ("labels", labels.to_value()),
                        ("histogram", hist.to_value()),
                    ])
                })),
            ),
            (
                "gauges",
                Value::array(self.gauges().map(|(name, scope, value)| {
                    Value::object([
                        ("name", name.to_value()),
                        ("scope", scope.to_value()),
                        ("value", value.to_value()),
                    ])
                })),
            ),
        ])
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, labels, value) in self.counters() {
            writeln!(f, "{name}{labels} = {value}")?;
        }
        for (name, labels, hist) in self.histograms() {
            writeln!(
                f,
                "{name}{labels}: n={} mean={:.0} p50<={} p99<={}",
                hist.count(),
                hist.mean(),
                hist.percentile_upper_bound(50.0).unwrap_or(0),
                hist.percentile_upper_bound(99.0).unwrap_or(0),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CmdKey;
    use bx_hostsim::Nanos;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        // 0,1 → bucket 0 ([0,1]); 2,3 → [2,3]; 4 → [4,7]; 1023 → [512,1023];
        // 1024 → [1024,2047].
        assert_eq!(
            buckets,
            vec![
                (0, 1, 2),
                (2, 3, 2),
                (4, 7, 1),
                (512, 1023, 1),
                (1024, 2047, 1)
            ]
        );
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
    }

    #[test]
    fn percentile_bound_walks_cumulative_counts() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8,15]
        }
        h.record(1 << 20); // one outlier
        assert_eq!(h.percentile_upper_bound(50.0), Some(15));
        assert_eq!(h.percentile_upper_bound(99.9), Some((1 << 21) - 1));
        assert_eq!(Histogram::new().percentile_upper_bound(50.0), None);
    }

    #[test]
    fn percentile_rank_matches_nearest_rank_at_small_n() {
        // The definition must agree with LatencySamples::percentile:
        // rank = ceil(p/100 * n), 1-based, clamped to [1, n]. Expectations
        // are the log2-bucket upper bounds of the exact nearest-rank sample.
        let of = |values: &[u64], p: f64| {
            let mut h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.percentile_upper_bound(p).unwrap()
        };
        // n = 1: every percentile is the lone sample's bucket.
        for p in [50.0, 99.0, 99.9] {
            assert_eq!(of(&[10], p), 15);
        }
        // n = 2: p50 → rank 1 (10 → [8,15]); p99/p99.9 → rank 2 (100 → [64,127]).
        assert_eq!(of(&[10, 100], 50.0), 15);
        assert_eq!(of(&[10, 100], 99.0), 127);
        assert_eq!(of(&[10, 100], 99.9), 127);
        // n = 3: p50 → rank 2 (100); p99/p99.9 → rank 3 (1000 → [512,1023]).
        assert_eq!(of(&[10, 100, 1000], 50.0), 127);
        assert_eq!(of(&[10, 100, 1000], 99.0), 1023);
        assert_eq!(of(&[10, 100, 1000], 99.9), 1023);
        // n = 100 over 1..=100: p50 → rank 50 (50 → [32,63]); p99 → rank 99
        // (99 → [64,127]); p99.9 → rank 100 (100 → [64,127]).
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(of(&hundred, 50.0), 63);
        assert_eq!(of(&hundred, 99.0), 127);
        assert_eq!(of(&hundred, 99.9), 127);
    }

    #[test]
    fn counter_arithmetic_saturates_at_u64_max() {
        let labels = LabelSet {
            queue: 0,
            method: "prp",
            opcode: 0,
        };
        let mut reg = MetricsRegistry::new();
        reg.inc("c", labels, u64::MAX);
        reg.inc("c", labels, u64::MAX);
        assert_eq!(reg.counter("c", labels), u64::MAX);

        let mut h = Histogram::new();
        h.record(u64::MAX); // sample at the top of the range: bucket 63
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX); // saturated, not wrapped
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.percentile_upper_bound(99.0), Some(u64::MAX));
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn cumulative_buckets_are_nondecreasing_and_total() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100, 5000] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert_eq!(cum.last().unwrap().1, h.count());
    }

    #[test]
    fn gauges_keep_last_sample_per_scope() {
        let mk = |at: u64, gauge, scope, value| Event {
            at: Nanos::from_ns(at),
            cmd: None,
            kind: EventKind::GaugeSample {
                gauge,
                scope,
                value,
            },
        };
        let events = vec![
            mk(0, "sq_backlog", 1, 5),
            mk(10, "sq_backlog", 2, 9),
            mk(20, "sq_backlog", 1, 2),
        ];
        let reg = MetricsRegistry::from_events(&events);
        assert_eq!(reg.gauge("sq_backlog", 1), Some(2));
        assert_eq!(reg.gauge("sq_backlog", 2), Some(9));
        assert_eq!(reg.gauge("sq_backlog", 3), None);
        assert_eq!(reg.gauges().count(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn from_events_builds_labelled_metrics() {
        let key = CmdKey::new(1, 0);
        let mk = |at: u64, kind: EventKind| Event {
            at: Nanos::from_ns(at),
            cmd: Some(key),
            kind,
        };
        let events = vec![
            mk(
                0,
                EventKind::SqeInsert {
                    method: "ByteExpress",
                    opcode: 0x01,
                    len: 64,
                },
            ),
            mk(10, EventKind::SqeFetch { opcode: 0x01 }),
            mk(
                20,
                EventKind::Retry {
                    attempt: 1,
                    backoff: Nanos::from_ns(50),
                },
            ),
            mk(900, EventKind::CqePost { status: 0 }),
            mk(1000, EventKind::CompletionConsumed { status: 0 }),
        ];
        let reg = MetricsRegistry::from_events(&events);
        let labels = LabelSet {
            queue: 1,
            method: "ByteExpress",
            opcode: 0x01,
        };
        assert_eq!(reg.counter("commands_submitted", labels), 1);
        assert_eq!(reg.counter("commands_completed", labels), 1);
        assert_eq!(reg.counter("retries", labels), 1);
        assert_eq!(reg.counter("payload_bytes", labels), 64);
        let h = reg.histogram("cmd_latency_ns", labels).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1000);
    }
}
