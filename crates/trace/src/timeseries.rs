//! Fixed-interval virtual-time series derived from the recorded event
//! stream — the continuous-telemetry half of the flight recorder.
//!
//! Everything here is offline analysis over `&[Event]`: derivation never
//! touches a clock or a sink, so it cannot perturb virtual time or the wire
//! (pinned by the `telemetry_inertness` integration tests). Three series
//! shapes cover the stack:
//!
//! - **Rate** — per-interval totals (wire bytes, doorbells, submits,
//!   completions, retries, timeouts, evictions, GC cycles).
//! - **Level** — instantaneous values sampled at each bucket's end,
//!   carried forward between changes: per-queue SQ backlog / CQ occupancy /
//!   in-flight commands reconstructed from paired events, plus every
//!   [`EventKind::GaugeSample`] series the instrumented layers emit
//!   (reassembly SRAM, FTL journal depth, driver in-flight, …).
//! - **Fraction** — per-die NAND busy fraction: the overlap of each
//!   `[start, start + busy)` window with each bucket, over the interval.

use crate::event::{Event, EventKind};
use bx_hostsim::Nanos;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// How a series' bucket values are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Sum of contributions inside each interval.
    Rate,
    /// Value at each interval's end, last-change carried forward.
    Level,
    /// Busy time inside each interval divided by the interval (0..=1).
    Fraction,
}

impl SeriesKind {
    /// Stable lowercase label, used in serialization.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Rate => "rate",
            SeriesKind::Level => "level",
            SeriesKind::Fraction => "fraction",
        }
    }
}

/// One derived metric over the run's bucket grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Metric name (`wire_bytes`, `sq_backlog_cmds`, `nand_busy`, a gauge
    /// name, …).
    pub metric: String,
    /// Instance disambiguator: `""` for global series, a queue id (`"1"`),
    /// or `"ch0/d2"` for a die.
    pub scope: String,
    /// Bucket semantics.
    pub kind: SeriesKind,
    /// One value per interval, aligned to the set's bucket grid.
    pub points: Vec<f64>,
}

impl TimeSeries {
    /// Largest bucket value (0.0 for an empty series).
    pub fn peak(&self) -> f64 {
        self.points.iter().copied().fold(0.0, f64::max)
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.points.iter().sum()
    }
}

impl Serialize for TimeSeries {
    fn to_value(&self) -> Value {
        Value::object([
            ("metric", self.metric.to_value()),
            ("scope", self.scope.to_value()),
            ("kind", self.kind.label().to_value()),
            (
                "points",
                Value::array(self.points.iter().map(|p| p.to_value())),
            ),
        ])
    }
}

/// Every series derived from one event stream, on one shared bucket grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSet {
    /// Bucket width in virtual time.
    pub interval: Nanos,
    /// Number of buckets (`horizon / interval`, rounded up, ≥ 1 for a
    /// non-empty stream).
    pub buckets: usize,
    /// The series, ordered (metric, scope).
    pub series: Vec<TimeSeries>,
}

impl TimeSeriesSet {
    /// Finds a series by metric + scope.
    pub fn get(&self, metric: &str, scope: &str) -> Option<&TimeSeries> {
        self.series
            .iter()
            .find(|s| s.metric == metric && s.scope == scope)
    }

    /// All series for one metric (every scope).
    pub fn metric(&self, metric: &str) -> impl Iterator<Item = &TimeSeries> + '_ {
        let metric = metric.to_string();
        self.series.iter().filter(move |s| s.metric == metric)
    }
}

impl Serialize for TimeSeriesSet {
    fn to_value(&self) -> Value {
        Value::object([
            ("interval_ns", self.interval.as_ns().to_value()),
            ("buckets", (self.buckets as u64).to_value()),
            (
                "series",
                Value::array(self.series.iter().map(|s| s.to_value())),
            ),
        ])
    }
}

/// Accumulates (metric, scope) → per-bucket values during derivation.
struct Builder {
    buckets: usize,
    interval_ns: u64,
    rate: BTreeMap<(String, String), Vec<f64>>,
    /// Level transitions: (t, delta) per series; folded into
    /// end-of-bucket values at the end.
    steps: BTreeMap<(String, String), Vec<(u64, i64)>>,
    /// Gauge samples: (t, absolute value) per series.
    samples: BTreeMap<(String, String), Vec<(u64, u64)>>,
    fraction: BTreeMap<(String, String), Vec<f64>>,
}

impl Builder {
    fn bucket(&self, at: u64) -> usize {
        ((at / self.interval_ns) as usize).min(self.buckets - 1)
    }

    fn rate(&mut self, metric: &str, scope: String, at: u64, by: f64) {
        let i = self.bucket(at);
        self.rate
            .entry((metric.to_string(), scope))
            .or_insert_with(|| vec![0.0; self.buckets])[i] += by;
    }

    fn step(&mut self, metric: &str, scope: String, at: u64, delta: i64) {
        self.steps
            .entry((metric.to_string(), scope))
            .or_default()
            .push((at, delta));
    }

    fn sample(&mut self, metric: &str, scope: String, at: u64, value: u64) {
        self.samples
            .entry((metric.to_string(), scope))
            .or_default()
            .push((at, value));
    }

    /// Adds the overlap of `[start, end)` with each bucket as a fraction of
    /// the interval.
    fn busy(&mut self, metric: &str, scope: String, start: u64, end: u64) {
        let w = self.interval_ns;
        let points = self
            .fraction
            .entry((metric.to_string(), scope))
            .or_insert_with(|| vec![0.0; self.buckets]);
        let mut t = start;
        while t < end {
            let i = ((t / w) as usize).min(self.buckets - 1);
            let bucket_end = if i + 1 == self.buckets {
                end
            } else {
                ((i as u64 + 1) * w).min(end)
            };
            let slice = bucket_end.saturating_sub(t).max(1);
            points[i] += slice as f64 / w as f64;
            if bucket_end <= t {
                break;
            }
            t = bucket_end;
        }
    }

    fn finish(self, interval: Nanos) -> TimeSeriesSet {
        let mut series = Vec::new();
        for ((metric, scope), points) in self.rate {
            series.push(TimeSeries {
                metric,
                scope,
                kind: SeriesKind::Rate,
                points,
            });
        }
        for ((metric, scope), mut transitions) in self.steps {
            // Emission order already gives nondecreasing stamps, but the
            // derivation must not depend on that.
            transitions.sort_by_key(|&(t, _)| t);
            let mut points = vec![0.0; self.buckets];
            let mut level = 0i64;
            let mut it = transitions.into_iter().peekable();
            for (i, p) in points.iter_mut().enumerate() {
                let end = (i as u64 + 1) * self.interval_ns;
                while it
                    .peek()
                    .is_some_and(|&(t, _)| t < end || i + 1 == self.buckets)
                {
                    // bx-lint: allow(panic-freedom, reason = "peek() just confirmed a next element")
                    let (_, d) = it.next().expect("peeked");
                    level += d;
                }
                *p = level.max(0) as f64;
            }
            series.push(TimeSeries {
                metric,
                scope,
                kind: SeriesKind::Level,
                points,
            });
        }
        for ((metric, scope), mut samples) in self.samples {
            samples.sort_by_key(|&(t, _)| t);
            let mut points = vec![0.0; self.buckets];
            let mut level = 0.0;
            let mut it = samples.into_iter().peekable();
            for (i, p) in points.iter_mut().enumerate() {
                let end = (i as u64 + 1) * self.interval_ns;
                while it
                    .peek()
                    .is_some_and(|&(t, _)| t < end || i + 1 == self.buckets)
                {
                    // bx-lint: allow(panic-freedom, reason = "peek() just confirmed a next element")
                    let (_, v) = it.next().expect("peeked");
                    level = v as f64;
                }
                *p = level;
            }
            series.push(TimeSeries {
                metric,
                scope,
                kind: SeriesKind::Level,
                points,
            });
        }
        for ((metric, scope), points) in self.fraction {
            series.push(TimeSeries {
                metric,
                scope,
                kind: SeriesKind::Fraction,
                points,
            });
        }
        series.sort_by(|a, b| (&a.metric, &a.scope).cmp(&(&b.metric, &b.scope)));
        TimeSeriesSet {
            interval,
            buckets: self.buckets,
            series,
        }
    }
}

/// The virtual-time horizon the bucket grid must cover: the last emission
/// stamp, extended by any NAND busy window that outruns it.
fn horizon(events: &[Event]) -> u64 {
    let mut h = 0u64;
    for e in events {
        h = h.max(e.at.as_ns());
        if let EventKind::NandOp { start, busy, .. } = e.kind {
            h = h.max(start.as_ns().saturating_add(busy.as_ns()));
        }
    }
    h
}

/// Derives the full time-series set from one recorded stream at the given
/// bucket width. Pure: reads the slice, touches no clock or sink. An empty
/// stream yields an empty set (0 buckets, no series).
pub fn derive_timeseries(events: &[Event], interval: Nanos) -> TimeSeriesSet {
    let interval_ns = interval.as_ns().max(1);
    let interval = Nanos::from_ns(interval_ns);
    if events.is_empty() {
        return TimeSeriesSet {
            interval,
            buckets: 0,
            series: Vec::new(),
        };
    }
    let buckets = (horizon(events) / interval_ns) as usize + 1;
    let mut b = Builder {
        buckets,
        interval_ns,
        rate: BTreeMap::new(),
        steps: BTreeMap::new(),
        samples: BTreeMap::new(),
        fraction: BTreeMap::new(),
    };
    let global = String::new;
    let queue = |e: &Event| e.cmd.map(|c| c.qid.to_string()).unwrap_or_default();
    for e in events {
        let at = e.at.as_ns();
        match &e.kind {
            EventKind::Tlp {
                class,
                wire_bytes,
                tlps,
                ..
            } => {
                b.rate("wire_bytes", global(), at, *wire_bytes as f64);
                if *class == "doorbell" {
                    b.rate("doorbells", global(), at, *tlps as f64);
                }
            }
            EventKind::SqeInsert { .. } => {
                b.rate("submits", global(), at, 1.0);
                b.step("sq_backlog_cmds", queue(e), at, 1);
                b.step("inflight_cmds", queue(e), at, 1);
            }
            EventKind::SqeFetch { .. } => {
                b.step("sq_backlog_cmds", queue(e), at, -1);
            }
            EventKind::CqePost { .. } => {
                b.rate("completions", global(), at, 1.0);
                b.step("cq_occupancy", queue(e), at, 1);
            }
            EventKind::CompletionConsumed { .. } => {
                b.step("cq_occupancy", queue(e), at, -1);
                b.step("inflight_cmds", queue(e), at, -1);
            }
            EventKind::TimeoutReap => {
                b.rate("timeouts", global(), at, 1.0);
                b.step("inflight_cmds", queue(e), at, -1);
            }
            EventKind::Retry { .. } => b.rate("retries", global(), at, 1.0),
            EventKind::ReassemblyEvict => b.rate("evictions", global(), at, 1.0),
            EventKind::GcCycle { .. } => b.rate("gc_cycles", global(), at, 1.0),
            EventKind::PowerCut { .. } => b.rate("power_cuts", global(), at, 1.0),
            EventKind::NandOp {
                channel,
                die,
                start,
                busy,
                ..
            } => {
                let s = start.as_ns();
                b.busy(
                    "nand_busy",
                    format!("ch{channel}/d{die}"),
                    s,
                    s.saturating_add(busy.as_ns()),
                );
            }
            EventKind::GaugeSample {
                gauge,
                scope,
                value,
            } => {
                b.sample(gauge, scope.to_string(), at, *value);
            }
            _ => {}
        }
    }
    b.finish(interval)
}

/// Renders a series as a one-line unicode sparkline, normalized to its own
/// peak (a flat-zero series renders as all-blank).
pub fn sparkline(points: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = points.iter().copied().fold(0.0, f64::max);
    points
        .iter()
        .map(|&p| {
            if peak <= 0.0 || p <= 0.0 {
                ' '
            } else {
                let i = ((p / peak) * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[i.min(GLYPHS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CmdKey;

    fn ev(at: u64, cmd: Option<CmdKey>, kind: EventKind) -> Event {
        Event {
            at: Nanos::from_ns(at),
            cmd,
            kind,
        }
    }

    #[test]
    fn empty_stream_yields_empty_set() {
        let set = derive_timeseries(&[], Nanos::from_us(1));
        assert_eq!(set.buckets, 0);
        assert!(set.series.is_empty());
    }

    #[test]
    fn rates_land_in_their_interval() {
        let tlp = |wire| EventKind::Tlp {
            class: "doorbell",
            dir: crate::Dir::HostToDevice,
            wire_bytes: wire,
            payload_bytes: 4,
            tlps: 1,
        };
        let events = vec![
            ev(100, None, tlp(28)),
            ev(900, None, tlp(28)),
            ev(1500, None, tlp(28)),
        ];
        let set = derive_timeseries(&events, Nanos::from_ns(1000));
        assert_eq!(set.buckets, 2);
        let wire = set.get("wire_bytes", "").unwrap();
        assert_eq!(wire.kind, SeriesKind::Rate);
        assert_eq!(wire.points, vec![56.0, 28.0]);
        let bells = set.get("doorbells", "").unwrap();
        assert_eq!(bells.points, vec![2.0, 1.0]);
        assert_eq!(bells.total(), 3.0);
    }

    #[test]
    fn backlog_level_reflects_insert_fetch_pairs() {
        let key = CmdKey::new(1, 0);
        let key2 = CmdKey::new(1, 1);
        let insert = || EventKind::SqeInsert {
            method: "ByteExpress",
            opcode: 1,
            len: 64,
        };
        let events = vec![
            ev(0, Some(key), insert()),
            ev(100, Some(key2), insert()),
            // First command fetched in bucket 0; second stays pending
            // through bucket 1 and is fetched in bucket 2.
            ev(500, Some(key), EventKind::SqeFetch { opcode: 1 }),
            ev(2500, Some(key2), EventKind::SqeFetch { opcode: 1 }),
        ];
        let set = derive_timeseries(&events, Nanos::from_ns(1000));
        let backlog = set.get("sq_backlog_cmds", "1").unwrap();
        assert_eq!(backlog.kind, SeriesKind::Level);
        assert_eq!(backlog.points, vec![1.0, 1.0, 0.0]);
        assert_eq!(backlog.peak(), 1.0);
    }

    #[test]
    fn nand_busy_fraction_splits_across_buckets() {
        let events = vec![ev(
            0,
            None,
            EventKind::NandOp {
                op: "program",
                channel: 0,
                die: 2,
                start: Nanos::from_ns(500),
                busy: Nanos::from_ns(1000),
            },
        )];
        let set = derive_timeseries(&events, Nanos::from_ns(1000));
        // Horizon extends to 1500 even though the only emission is at 0.
        assert_eq!(set.buckets, 2);
        let busy = set.get("nand_busy", "ch0/d2").unwrap();
        assert_eq!(busy.kind, SeriesKind::Fraction);
        assert!((busy.points[0] - 0.5).abs() < 1e-9, "{:?}", busy.points);
        assert!((busy.points[1] - 0.5).abs() < 1e-9, "{:?}", busy.points);
    }

    #[test]
    fn gauge_samples_carry_forward() {
        let g = |v| EventKind::GaugeSample {
            gauge: "ftl_journal_depth",
            scope: 0,
            value: v,
        };
        let events = vec![ev(100, None, g(3)), ev(3500, None, g(7))];
        let set = derive_timeseries(&events, Nanos::from_ns(1000));
        let depth = set.get("ftl_journal_depth", "0").unwrap();
        assert_eq!(depth.points, vec![3.0, 3.0, 3.0, 7.0]);
    }

    #[test]
    fn sparkline_normalizes_to_peak() {
        let s = sparkline(&[0.0, 1.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[0.0, 0.0]), "  ");
    }
}
