//! OpenMetrics / Prometheus text exposition for a [`MetricsRegistry`].
//!
//! One renderer, one validator. The renderer maps the registry onto the
//! OpenMetrics text format: counters become `<name>_total` sample lines
//! labelled `{queue,method,opcode}`, gauges become `{scope}`-labelled
//! samples, and the log2 histograms become cumulative `_bucket{le}` series
//! with the standard `+Inf`/`_sum`/`_count` trailer. The validator
//! re-parses that text from scratch — shared state with the renderer would
//! let one bug hide the other — and checks the structural invariants CI
//! gates on (`# TYPE`/`# HELP` before first sample, cumulative
//! nondecreasing buckets, `+Inf == _count`), returning per-family totals so
//! callers can cross-check the exposition against the registry's own JSON
//! serialization.

use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;

/// Prefix for every exported metric family, namespacing the simulator in a
/// shared Prometheus scrape.
const PREFIX: &str = "bx_";

fn counter_labels(queue: u16, method: &str, opcode: u8) -> String {
    format!("{{queue=\"{queue}\",method=\"{method}\",opcode=\"{opcode}\"}}")
}

/// Renders the registry in OpenMetrics text format, `# EOF`-terminated.
/// Families are emitted in registry (BTreeMap) order, so output for a
/// fixed run is byte-stable — golden-file friendly.
pub fn openmetrics(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_family = "";

    for (name, labels, value) in reg.counters() {
        if name != last_family {
            out.push_str(&format!(
                "# HELP {PREFIX}{name} Event-stream counter {name}.\n\
                 # TYPE {PREFIX}{name} counter\n"
            ));
            last_family = name;
        }
        let l = counter_labels(labels.queue, labels.method, labels.opcode);
        out.push_str(&format!("{PREFIX}{name}_total{l} {value}\n"));
    }

    last_family = "";
    for (name, scope, value) in reg.gauges() {
        if name != last_family {
            out.push_str(&format!(
                "# HELP {PREFIX}{name} Instantaneous gauge {name}, last sample per scope.\n\
                 # TYPE {PREFIX}{name} gauge\n"
            ));
            last_family = name;
        }
        out.push_str(&format!("{PREFIX}{name}{{scope=\"{scope}\"}} {value}\n"));
    }

    last_family = "";
    for (name, labels, hist) in reg.histograms() {
        if name != last_family {
            out.push_str(&format!(
                "# HELP {PREFIX}{name} Log2-bucketed histogram {name}.\n\
                 # TYPE {PREFIX}{name} histogram\n"
            ));
            last_family = name;
        }
        let base = counter_labels(labels.queue, labels.method, labels.opcode);
        let with_le = |le: &str| {
            let mut l = base.clone();
            l.truncate(l.len() - 1);
            l.push_str(&format!(",le=\"{le}\"}}"));
            l
        };
        for (le, cum) in hist.cumulative_buckets() {
            out.push_str(&format!(
                "{PREFIX}{name}_bucket{} {cum}\n",
                with_le(&le.to_string())
            ));
        }
        out.push_str(&format!(
            "{PREFIX}{name}_bucket{} {}\n",
            with_le("+Inf"),
            hist.count()
        ));
        out.push_str(&format!("{PREFIX}{name}_sum{base} {}\n", hist.sum()));
        out.push_str(&format!("{PREFIX}{name}_count{base} {}\n", hist.count()));
    }

    out.push_str("# EOF\n");
    out
}

/// What [`validate_openmetrics`] extracted, for cross-checking against the
/// registry the text was rendered from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpenMetricsSummary {
    /// Per counter family (name without the `bx_` prefix or `_total`
    /// suffix): sum over all label sets.
    pub counter_totals: BTreeMap<String, u64>,
    /// Per histogram family (name without prefix): total `_count` over all
    /// label sets.
    pub histogram_counts: BTreeMap<String, u64>,
    /// Per gauge family (name without prefix): number of scoped samples.
    pub gauge_scopes: BTreeMap<String, u64>,
}

/// One parsed sample line: family base name, label pairs, value.
type Sample = (String, Vec<(String, String)>, u64);

/// Splits a sample line into `(family base name, labels, value)`, where the
/// family base strips the `bx_` prefix but keeps any `_total`/`_bucket`/…
/// suffix for the caller to classify.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample line without value: {line:?}"))?;
    let value: u64 = value
        .parse()
        .map_err(|_| format!("non-integer sample value in {line:?}"))?;
    let (name, labels) = match name_labels.split_once('{') {
        Some((n, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
            let mut pairs = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("malformed label {pair:?} in {line:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value {v:?} in {line:?}"))?;
                pairs.push((k.to_string(), v.to_string()));
            }
            (n, pairs)
        }
        None => (name_labels, Vec::new()),
    };
    let name = name
        .strip_prefix(PREFIX)
        .ok_or_else(|| format!("metric {name:?} missing the {PREFIX:?} prefix"))?;
    Ok((name.to_string(), labels, value))
}

/// Validates OpenMetrics text structurally and returns the totals it
/// carries. Checks, in order of likely breakage:
///
/// - every sample's family was declared with both `# TYPE` and `# HELP`
///   before its first sample line;
/// - histogram `_bucket` series are cumulative (nondecreasing in `le`
///   order, which matches emission order) and end in `le="+Inf"` whose
///   value equals the family's `_count` for the same label set;
/// - the text is terminated by `# EOF`.
pub fn validate_openmetrics(text: &str) -> Result<OpenMetricsSummary, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeMap<String, bool> = BTreeMap::new();
    let mut summary = OpenMetricsSummary::default();
    // (family, non-le labels) → (last cumulative value, +Inf value)
    let mut buckets: BTreeMap<(String, String), (u64, Option<u64>)> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut saw_eof = false;

    for line in text.lines() {
        if saw_eof {
            return Err(format!("content after # EOF: {line:?}"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed TYPE line: {line:?}"))?;
            let name = name
                .strip_prefix(PREFIX)
                .ok_or_else(|| format!("TYPE for unprefixed metric: {line:?}"))?;
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed HELP line: {line:?}"))?;
            let name = name
                .strip_prefix(PREFIX)
                .ok_or_else(|| format!("HELP for unprefixed metric: {line:?}"))?;
            helped.insert(name.to_string(), true);
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }

        let (name, labels, value) = parse_sample(line)?;
        let (family, suffix) = ["_total", "_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s).map(|f| (f.to_string(), *s)))
            .filter(|(f, _)| types.contains_key(f))
            .unwrap_or((name.clone(), ""));
        let declared = types
            .get(&family)
            .ok_or_else(|| format!("sample for undeclared family {family:?}: {line:?}"))?;
        if !helped.get(&family).copied().unwrap_or(false) {
            return Err(format!("family {family:?} has # TYPE but no # HELP"));
        }

        match (declared.as_str(), suffix) {
            ("counter", "_total") => {
                *summary.counter_totals.entry(family).or_insert(0) += value;
            }
            ("gauge", "") => {
                *summary.gauge_scopes.entry(family).or_insert(0) += 1;
            }
            ("histogram", "_bucket") => {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("histogram bucket without le: {line:?}"))?;
                let others: String = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v},"))
                    .collect();
                let entry = buckets.entry((family, others)).or_insert((0, None));
                if value < entry.0 {
                    return Err(format!("non-cumulative bucket series at {line:?}"));
                }
                entry.0 = value;
                if le == "+Inf" {
                    entry.1 = Some(value);
                }
            }
            ("histogram", "_count") => {
                let others: String = labels.iter().map(|(k, v)| format!("{k}={v},")).collect();
                *summary.histogram_counts.entry(family.clone()).or_insert(0) += value;
                counts.insert((family, others), value);
            }
            ("histogram", "_sum") => {}
            (kind, suffix) => {
                return Err(format!(
                    "sample suffix {suffix:?} does not fit TYPE {kind:?}: {line:?}"
                ));
            }
        }
    }

    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    for (key, (_, inf)) in &buckets {
        let inf = inf.ok_or_else(|| format!("histogram {key:?} missing le=\"+Inf\" bucket"))?;
        let count = counts
            .get(key)
            .ok_or_else(|| format!("histogram {key:?} has buckets but no _count"))?;
        if inf != *count {
            return Err(format!(
                "histogram {key:?}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LabelSet;

    fn labels(queue: u16) -> LabelSet {
        LabelSet {
            queue,
            method: "ByteExpress",
            opcode: 0x01,
        }
    }

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc("commands_submitted", labels(1), 5);
        reg.inc("commands_submitted", labels(2), 3);
        reg.inc("payload_bytes", labels(1), 320);
        reg.set_gauge("sq_backlog_cmds", 1, 4);
        reg.set_gauge("sq_backlog_cmds", 2, 0);
        for v in [100, 200, 5000] {
            reg.observe("cmd_latency_ns", labels(1), v);
        }
        reg
    }

    #[test]
    fn rendered_text_round_trips_through_the_validator() {
        let reg = sample_registry();
        let text = openmetrics(&reg);
        let summary = validate_openmetrics(&text).expect("rendered text must validate");
        assert_eq!(summary.counter_totals["commands_submitted"], 8);
        assert_eq!(summary.counter_totals["payload_bytes"], 320);
        assert_eq!(
            summary.counter_totals["commands_submitted"],
            reg.counter_total("commands_submitted")
        );
        assert_eq!(summary.gauge_scopes["sq_backlog_cmds"], 2);
        assert_eq!(summary.histogram_counts["cmd_latency_ns"], 3);
    }

    #[test]
    fn rendered_text_has_structural_markers() {
        let text = openmetrics(&sample_registry());
        assert!(text.contains("# TYPE bx_commands_submitted counter"));
        assert!(text.contains("# HELP bx_commands_submitted "));
        assert!(text.contains("# TYPE bx_sq_backlog_cmds gauge"));
        assert!(text.contains("# TYPE bx_cmd_latency_ns histogram"));
        assert!(text.contains(
            "bx_commands_submitted_total{queue=\"1\",method=\"ByteExpress\",opcode=\"1\"} 5"
        ));
        assert!(text.contains("bx_sq_backlog_cmds{scope=\"1\"} 4"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn buckets_are_cumulative_in_rendered_text() {
        let text = openmetrics(&sample_registry());
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if line.starts_with("bx_cmd_latency_ns_bucket") {
                let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(v >= last, "bucket series must be nondecreasing: {line}");
                last = v;
                bucket_lines += 1;
            }
        }
        // Three distinct log2 buckets plus +Inf.
        assert_eq!(bucket_lines, 4);
    }

    #[test]
    fn validator_rejects_broken_text() {
        assert!(validate_openmetrics("bx_x_total{} 1\n# EOF\n")
            .unwrap_err()
            .contains("undeclared"));
        assert!(
            validate_openmetrics("# TYPE bx_x counter\nbx_x_total 1\n# EOF\n")
                .unwrap_err()
                .contains("no # HELP")
        );
        assert!(validate_openmetrics("# EOF\nbx_x_total 1\n")
            .unwrap_err()
            .contains("after # EOF"));
        assert!(
            validate_openmetrics("# HELP bx_x h\n# TYPE bx_x counter\nbx_x_total 1\n")
                .unwrap_err()
                .contains("missing # EOF")
        );
        let non_cumulative = "# HELP bx_h h\n# TYPE bx_h histogram\n\
             bx_h_bucket{le=\"10\"} 5\nbx_h_bucket{le=\"20\"} 3\n\
             bx_h_bucket{le=\"+Inf\"} 5\nbx_h_count 5\n# EOF\n";
        assert!(validate_openmetrics(non_cumulative)
            .unwrap_err()
            .contains("non-cumulative"));
        let inf_mismatch = "# HELP bx_h h\n# TYPE bx_h histogram\n\
             bx_h_bucket{le=\"+Inf\"} 4\nbx_h_count 5\n# EOF\n";
        assert!(validate_openmetrics(inf_mismatch)
            .unwrap_err()
            .contains("!= _count"));
    }

    #[test]
    fn empty_registry_renders_bare_eof() {
        let text = openmetrics(&MetricsRegistry::new());
        assert_eq!(text, "# EOF\n");
        let summary = validate_openmetrics(&text).unwrap();
        assert!(summary.counter_totals.is_empty());
    }
}
