//! # bx-trace — the cross-layer flight recorder
//!
//! A zero-overhead-when-disabled, virtual-time event sink threaded through
//! every layer of the ByteExpress stack: driver submit paths, the PCIe link,
//! the controller's fetch/reassembly/completion machinery, the FTL/NAND
//! backend, and the recovery ladder.
//!
//! The design splits hot path from analysis:
//!
//! - **Recording** ([`TraceSink`]) is a clock-stamped `Vec` push behind an
//!   `Option<Rc<...>>`. Disabled (the default) it is inert: the event
//!   closure is never evaluated, nothing allocates, and wire traffic +
//!   virtual time are byte-identical to an untraced run.
//! - **Analysis** is offline over the recorded stream: span reconstruction
//!   ([`reconstruct_spans`]), a label-aware [`MetricsRegistry`] with
//!   log2-bucketed [`Histogram`]s, and exporters ([`chrome_trace_json`] for
//!   `chrome://tracing`/Perfetto, [`timeline`] for terminals).
//!
//! See DESIGN.md §8 for the event taxonomy and span model.

#![forbid(unsafe_code)]

mod event;
mod export;
mod metrics;
mod recorder;
mod span;

pub use event::{CmdKey, Dir, Event, EventKind};
pub use export::{chrome_trace, chrome_trace_json, timeline};
pub use metrics::{Histogram, LabelSet, MetricsRegistry};
pub use recorder::TraceSink;
pub use span::{reconstruct_spans, Span};
