//! # bx-trace — the cross-layer flight recorder
//!
//! A zero-overhead-when-disabled, virtual-time event sink threaded through
//! every layer of the ByteExpress stack: driver submit paths, the PCIe link,
//! the controller's fetch/reassembly/completion machinery, the FTL/NAND
//! backend, and the recovery ladder.
//!
//! The design splits hot path from analysis:
//!
//! - **Recording** ([`TraceSink`]) is a clock-stamped `Vec` push behind an
//!   `Option<Rc<...>>`. Disabled (the default) it is inert: the event
//!   closure is never evaluated, nothing allocates, and wire traffic +
//!   virtual time are byte-identical to an untraced run.
//! - **Analysis** is offline over the recorded stream: span reconstruction
//!   ([`reconstruct_spans`]), a label-aware [`MetricsRegistry`] with
//!   log2-bucketed [`Histogram`]s, fixed-interval virtual-time series
//!   ([`derive_timeseries`]), and exporters ([`chrome_trace_json`] for
//!   `chrome://tracing`/Perfetto, [`timeline`] for terminals,
//!   [`openmetrics`] for Prometheus-style scrapes).
//!
//! See DESIGN.md §8 for the event taxonomy and span model, §13 for the
//! telemetry plane (gauges, time series, OpenMetrics mapping).

#![forbid(unsafe_code)]

mod event;
mod export;
mod metrics;
mod openmetrics;
mod recorder;
mod span;
mod timeseries;

pub use event::{CmdKey, Dir, Event, EventKind};
pub use export::{chrome_trace, chrome_trace_json, timeline};
pub use metrics::{Histogram, LabelSet, MetricsRegistry};
pub use openmetrics::{openmetrics, validate_openmetrics, OpenMetricsSummary};
pub use recorder::TraceSink;
pub use span::{reconstruct_spans, Span};
pub use timeseries::{derive_timeseries, sparkline, SeriesKind, TimeSeries, TimeSeriesSet};
